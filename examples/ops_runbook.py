#!/usr/bin/env python3
"""Operations runbook: a day in the life of the serving fleet.

Walks the operational features a production deployment leans on, in the
order an operator meets them: health monitoring, a replica failure with
alerting, resync, the periodic offline S reload, a traffic spike handled
by admission control, and a D checkpoint for fast replica bootstrap.

Run:  python examples/ops_runbook.py
"""

import tempfile
from pathlib import Path

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.core.checkpoint import load_dynamic_index, save_dynamic_index
from repro.gen import TwitterGraphConfig, generate_follow_graph, \
    StreamConfig, generate_event_stream
from repro.ops import AdmissionController, AdmissionPolicy, ClusterMonitor


def main() -> None:
    num_users = 2_000
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=12.0, seed=21)
    )
    events = generate_event_stream(
        StreamConfig(num_users=num_users, duration=600.0, background_rate=5.0, seed=21)
    )
    cluster = Cluster.build(
        snapshot,
        DetectionParams(k=2, tau=900.0),
        ClusterConfig(num_partitions=3, replication_factor=2),
    )
    monitor = ClusterMonitor(cluster)
    third = len(events) // 3

    print("== steady state ==")
    for event in events[:third]:
        cluster.process_event(event)
    print(f"alerts: {monitor.alerts() or 'none'}")

    print("\n== replica p0/r1 dies ==")
    cluster.replica_sets[0].mark_down(1)
    for event in events[third : 2 * third]:
        cluster.process_event(event)
    for alert in monitor.alerts():
        print(f"  ALERT: {alert}")

    print("\n== resync and rejoin ==")
    cluster.replica_sets[0].resync(1)
    print(f"alerts after resync: {monitor.alerts() or 'none'}")

    print("\n== periodic offline S reload (no downtime) ==")
    fresh_snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=12.0, seed=22)
    )
    cluster.reload_snapshot(fresh_snapshot, influencer_limit=100)
    for event in events[2 * third :]:
        cluster.process_event(event)
    print("stream kept flowing through the reload; "
          f"alerts: {monitor.alerts() or 'none'}")

    print("\n== traffic spike with admission control ==")
    controller = AdmissionController(
        rate=50.0, burst=100.0, policy=AdmissionPolicy.SAMPLE, sample_one_in=20
    )
    admitted = sum(controller.admit(now=0.0) for _ in range(2_000))
    print(f"spike of 2000 events at one instant: {admitted} admitted, "
          f"shed fraction {controller.shed_fraction():.1%} (sampled 1-in-20)")

    print("\n== D checkpoint for replica bootstrap ==")
    source = cluster.replica_sets[0].replicas[0].engine.dynamic_index
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "d-checkpoint.npz"
        written = save_dynamic_index(source, path)
        restored = load_dynamic_index(path)
        print(f"checkpointed {written} recent edges "
              f"({path.stat().st_size / 1024:.0f} KB on disk); "
              f"restored index holds {restored.num_edges} edges")
        assert restored.num_edges == source.num_edges

    print("\nops runbook complete. ✓")


if __name__ == "__main__":
    main()
