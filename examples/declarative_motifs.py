#!/usr/bin/env python3
"""The generalized framework of the paper's conclusion, demonstrated.

"we envision the development of a generalized framework where one can
declaratively specify a motif, which would yield an optimized query plan
against an online graph database."

This example (1) writes a motif as a declarative pattern graph, (2) shows
the compiled, cost-annotated query plan, (3) runs four catalog motifs side
by side on one shared infrastructure, and (4) shows the planner *refusing*
a motif outside the executable fragment with a useful error.

Run:  python examples/declarative_motifs.py
"""

from repro.core import EdgeEvent, MotifEngine
from repro.core.events import ActionType
from repro.gen import TwitterGraphConfig, generate_follow_graph
from repro.graph import DynamicEdgeIndex, build_follower_snapshot
from repro.motif import (
    DeclarativeDetector,
    EdgeKind,
    MotifSpec,
    PatternEdge,
    UnsupportedMotifError,
    compile_motif,
)
from repro.motif.catalog import MOTIF_CATALOG


def main() -> None:
    # 1. A motif as data: the paper's diamond, written out longhand.
    diamond = MotifSpec(
        name="diamond",
        vertices=("a", "b", "c"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("b", "c", EdgeKind.DYNAMIC, within=3600.0,
                        action=ActionType.FOLLOW),
        ),
        count_at_least={"b": 3},
        emit=("a", "c"),
        forbid=(PatternEdge("a", "c", EdgeKind.STATIC),),
    )
    print("== the declarative spec ==")
    print(diamond.describe())

    # 2. Compile it and inspect the optimized plan.
    snapshot = generate_follow_graph(TwitterGraphConfig(num_users=3_000, seed=1))
    static_index = build_follower_snapshot(snapshot)
    dynamic_index = DynamicEdgeIndex(retention=3600.0)
    detector = DeclarativeDetector(
        diamond, static_index, dynamic_index, inserts_edges=False
    )
    print("\n== the compiled plan ==")
    print(detector.explain())

    # 3. Several motif programs sharing one graph infrastructure.
    programs = [
        MOTIF_CATALOG[name]() for name in ("diamond", "wedge", "co-retweet")
    ]
    detectors = [
        DeclarativeDetector(spec, static_index, dynamic_index, inserts_edges=False)
        for spec in programs
    ]
    engine = MotifEngine(static_index, dynamic_index, detectors)
    events = [
        EdgeEvent(0.0, 10, 2500),
        EdgeEvent(5.0, 11, 2500),
        EdgeEvent(9.0, 12, 2500),
        EdgeEvent(12.0, 10, 777, ActionType.RETWEET),
        EdgeEvent(13.0, 11, 777, ActionType.RETWEET),
        EdgeEvent(14.0, 12, 777, ActionType.RETWEET),
    ]
    per_motif: dict[str, int] = {}
    for event in events:
        for rec in engine.process(event):
            per_motif[rec.motif] = per_motif.get(rec.motif, 0) + 1
    print("\n== three programs, one infrastructure ==")
    for name, count in sorted(per_motif.items()):
        print(f"  {name:<12} emitted {count} raw candidates")

    # 4. The planner rejects what the infrastructure cannot serve.
    print("\n== a motif outside the fragment ==")
    reverse = MotifSpec(
        name="follow-back-burst",
        vertices=("a", "b", "c"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("c", "b", EdgeKind.DYNAMIC, within=600.0),
        ),
        count_at_least={"c": 2},
        emit=("a", "b"),
    )
    try:
        compile_motif(reverse)
    except UnsupportedMotifError as error:
        print(f"  planner said no: {error}")
    print("\ndeclarative motifs demo complete. ✓")


if __name__ == "__main__":
    main()
