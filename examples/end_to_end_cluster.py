#!/usr/bin/env python3
"""The full production stack, end to end, with the paper's latency shape.

Everything at once: edge events replayed through simulated message queues
(calibrated to the paper's 7 s median / 15 s p99), a broker fanning out to
a partitioned + replicated cluster, per-event graph queries measured in
real milliseconds, and the delivery funnel (dedup, waking hours, fatigue)
deciding which candidates become push notifications.

Run:  python examples/end_to_end_cluster.py
"""

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.delivery import DeliveryPipeline
from repro.gen import BurstSpec, StreamConfig, TwitterGraphConfig, \
    generate_event_stream, generate_follow_graph
from repro.streaming import StreamingTopology


def main() -> None:
    num_users = 3_000
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=15.0, seed=42)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=1_800.0,
            background_rate=5.0,
            bursts=(
                BurstSpec(target=2_900, start=100.0, duration=900.0, num_actors=150),
                BurstSpec(target=2_950, start=600.0, duration=600.0, num_actors=120),
            ),
            seed=42,
        )
    )
    print(f"graph: {num_users} users / {snapshot.num_edges} edges; "
          f"stream: {len(events)} events over 30 simulated minutes\n")

    cluster = Cluster.build(
        snapshot,
        DetectionParams(k=3, tau=3600.0),
        ClusterConfig(num_partitions=4, replication_factor=2),
    )
    topology = StreamingTopology(cluster, delivery=DeliveryPipeline(), seed=7)
    report = topology.run(events)

    print(f"events ingested      : {report.events_ingested}")
    print(f"raw candidates       : {report.candidates_detected}")
    print(f"push notifications   : {len(report.notifications)}")
    funnel = topology.delivery.funnel
    for stage, count in funnel.as_rows():
        print(f"    {stage:<22} {count}")

    summary = report.breakdown.summary()
    total = summary["total"]
    detection = summary["detection"]
    print("\nend-to-end latency (edge creation -> push):")
    print(f"  median = {total['p50']:.1f}s   p99 = {total['p99']:.1f}s "
          "(paper: ~7s median, ~15s p99)")
    print(f"graph queries: p50 = {detection['p50'] * 1e3:.2f}ms, "
          f"p99 = {detection['p99'] * 1e3:.2f}ms "
          "(paper: 'a few milliseconds')")
    print(f"queue share of total latency     : {report.queue_share():.1%}")
    print(f"detection share of total latency : {report.detection_share():.3%}")
    print("\n'Nearly all the latency comes from event propagation delays in "
          "various message queues.' ✓")


if __name__ == "__main__":
    main()
