#!/usr/bin/env python3
"""Who-to-follow recommendations on a synthetic Twitter-like graph.

Scenario: a notable account joins Twitter and popular users follow it over
the next hour (the `celebrity_join` canned workload).  A full partitioned
cluster (paper production shape: partitioned by A, D replicated
everywhere) serves diamond recommendations in real time, and the delivery
funnel trims raw candidates down to actual pushes.

Run:  python examples/who_to_follow.py
"""

from collections import Counter

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.delivery import DedupFilter, DeliveryPipeline, FatigueFilter
from repro.gen import celebrity_join


def main() -> None:
    scenario = celebrity_join(num_users=4_000, followers_in_first_hour=300)
    newcomer = scenario.snapshot.num_users - 1
    print(scenario.description)
    print(f"graph: {scenario.snapshot.num_users} users, "
          f"{scenario.snapshot.num_edges} follow edges; "
          f"stream: {len(scenario.events)} live events\n")

    # Production-shaped cluster, scaled down: 4 partitions, k=3.
    cluster = Cluster.build(
        scenario.snapshot,
        DetectionParams(k=3, tau=3600.0),
        ClusterConfig(num_partitions=4, influencer_limit=200),
    )
    # Delivery funnel without the waking-hours filter so the demo is
    # deterministic (the full trio appears in end_to_end_cluster.py).
    delivery = DeliveryPipeline(filters=[DedupFilter(), FatigueFilter(max_per_window=3)])

    pushed = 0
    for event in scenario.events:
        for rec in cluster.process_event(event):
            if delivery.offer(rec, now=event.created_at):
                pushed += 1

    funnel = delivery.funnel
    print("candidate funnel:")
    print(f"  raw candidates : {funnel.get('raw'):>8}")
    print(f"  after dedup    : {funnel.get('passed:dedup'):>8}")
    print(f"  delivered      : {funnel.get('delivered'):>8}")
    print(f"  reduction      : {delivery.reduction_ratio():>8.1f} : 1\n")

    recipients = Counter(
        n.recommendation.candidate for n in delivery.notifier.notifications
    )
    top_candidate, top_count = recipients.most_common(1)[0]
    print(f"most-recommended account: {top_candidate} "
          f"({top_count} pushes) — the newcomer is {newcomer}")
    assert top_candidate == newcomer, "the joining celebrity should dominate"
    print("the burst toward the newcomer dominates recommendations. ✓")


if __name__ == "__main__":
    main()
