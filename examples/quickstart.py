#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1, exactly as §2 narrates it.

We build the 8-vertex sample graph fragment, feed the two live edges, and
watch the diamond motif complete: "when the edge B2 -> C2 is created ...
we want to push C2 to A2 as a recommendation" (with k = 2 as in the
worked example).

Run:  python examples/quickstart.py
"""

from repro import DetectionParams, EdgeEvent, GraphSnapshot, MotifEngine

# Name the Figure 1 vertices.  A's receive recommendations, B's are the
# accounts the A's follow, C's are the accounts the B's follow.
A1, A2, A3 = 0, 1, 2
B1, B2 = 3, 4
C1, C2, C3 = 5, 6, 7
NAMES = {A1: "A1", A2: "A2", A3: "A3", B1: "B1", B2: "B2",
         C1: "C1", C2: "C2", C3: "C3"}


def main() -> None:
    # The static A -> B follows visible in Figure 1 (computed offline and
    # bulk-loaded in production).
    follows = [(A1, B1), (A2, B1), (A2, B2), (A3, B2)]
    snapshot = GraphSnapshot.from_edges(follows, num_nodes=8)

    # k = 2 as in the running example (production uses k = 3); tau = 10
    # minutes of freshness.
    engine = MotifEngine.from_snapshot(
        snapshot, DetectionParams(k=2, tau=600.0)
    )

    print("Static graph loaded:")
    for a, b in follows:
        print(f"  {NAMES[a]} follows {NAMES[b]}")
    print()

    # The live stream delivers B1 -> C2 first.  Only one fresh B points at
    # C2, so nothing fires yet.
    first = engine.process(EdgeEvent(created_at=0.0, actor=B1, target=C2))
    print(f"edge {NAMES[B1]} -> {NAMES[C2]} arrives: "
          f"{len(first)} recommendations (top half incomplete)")

    # Then B2 -> C2 completes the diamond: A2 follows both B1 and B2.
    second = engine.process(EdgeEvent(created_at=10.0, actor=B2, target=C2))
    print(f"edge {NAMES[B2]} -> {NAMES[C2]} arrives: "
          f"{len(second)} recommendation(s)")
    for rec in second:
        via = " and ".join(NAMES[b] for b in rec.via)
        print(f"  -> recommend {NAMES[rec.candidate]} to "
              f"{NAMES[rec.recipient]} (because {via} both just followed "
              f"{NAMES[rec.candidate]})")

    assert [r.recipient for r in second] == [A2], "expected exactly A2"
    print("\nMatches the paper: C2 is pushed to A2. ✓")


if __name__ == "__main__":
    main()
