#!/usr/bin/env python3
"""Content recommendation: pushing a viral tweet while it is still hot.

The paper notes the idea "applies to recommending content as well, based
on user actions such as retweets, favorites, etc."  Here a news tweet goes
viral (the `breaking_news` canned workload) and the **declarative**
co-retweet motif — built on the same graph infrastructure via the motif
catalog — pushes the tweet to users several of whose followings retweeted
it.

Run:  python examples/breaking_news.py
"""

from repro.core import MotifEngine
from repro.gen import breaking_news
from repro.graph import DynamicEdgeIndex, build_follower_snapshot
from repro.motif import build_detector


def main() -> None:
    scenario = breaking_news(num_users=4_000, retweeters=250)
    tweet = scenario.snapshot.num_users - 2
    print(scenario.description)
    print(f"viral tweet id: {tweet}; stream: {len(scenario.events)} events\n")

    # Build the serving infrastructure once...
    static_index = build_follower_snapshot(scenario.snapshot)
    dynamic_index = DynamicEdgeIndex(retention=1800.0)

    # ...and register a *declarative* motif program on it.
    detector = build_detector(
        "co-retweet",
        static_index,
        dynamic_index,
        inserts_edges=False,
        k=3,
        tau=1800.0,
    )
    print("compiled query plan:")
    print(detector.explain())
    print()

    engine = MotifEngine(static_index, dynamic_index, [detector])
    recommendations = engine.process_stream(scenario.events)

    tweet_recs = [r for r in recommendations if r.candidate == tweet]
    unique_users = {r.recipient for r in tweet_recs}
    first = min((r.created_at for r in tweet_recs), default=None)
    print(f"raw candidates for the viral tweet: {len(tweet_recs)}")
    print(f"distinct users reached: {len(unique_users)}")
    if first is not None:
        print(f"first push candidate at t={first:.0f}s after stream start "
              "(while the burst is still running)")
    latency = engine.stats.query_latency.snapshot()
    print(f"\nper-event graph query latency: "
          f"p50={latency['p50'] * 1e3:.2f}ms p99={latency['p99'] * 1e3:.2f}ms "
          "(the paper: 'a few milliseconds')")
    assert tweet_recs, "the viral tweet should generate recommendations"
    print("content recommendation via the declarative engine works. ✓")


if __name__ == "__main__":
    main()
