"""Executor tests: declarative motifs vs the hand-coded diamond detector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diamond import DiamondDetector
from repro.core.engine import MotifEngine
from repro.core.events import ActionType, EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex
from repro.motif.catalog import (
    MOTIF_CATALOG,
    build_detector,
    co_retweet_spec,
    diamond_spec,
    favorite_burst_spec,
    wedge_spec,
)
from repro.motif.executor import DeclarativeDetector

from tests.conftest import A1, A2, B1, B2, C2, FIGURE1_FOLLOWS


def make_indexes(follows=FIGURE1_FOLLOWS, retention=3600.0):
    s = StaticFollowerIndex.from_follow_edges(follows)
    d = DynamicEdgeIndex(retention=retention)
    return s, d


class TestDeclarativeDiamond:
    def test_figure1(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(diamond_spec(k=2, tau=600.0), s, d)
        assert detector.on_edge(EdgeEvent(0.0, B1, C2)) == []
        recs = detector.on_edge(EdgeEvent(10.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]
        assert recs[0].motif == "diamond"
        assert recs[0].via == (B1, B2)

    def test_explain_is_informative(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(diamond_spec(k=2, tau=600.0), s, d)
        explain = detector.explain()
        assert "plan for motif 'diamond'" in explain
        assert "cost:" in explain

    def test_operator_stats_accumulate(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(diamond_spec(k=2, tau=600.0), s, d)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        detector.on_edge(EdgeEvent(10.0, B2, C2))
        stats = dict(
            (name.split("(")[0], (inv, rej))
            for name, inv, rej in detector.plan.operator_stats()
        )
        assert stats["FetchFreshWitnesses"] == (2, 0)
        assert stats["RequireCount"] == (2, 1)  # first edge below threshold

    def test_works_inside_engine(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(
            diamond_spec(k=2, tau=600.0), s, d, inserts_edges=False
        )
        engine = MotifEngine(s, d, [detector])
        engine.process(EdgeEvent(0.0, B1, C2))
        recs = engine.process(EdgeEvent(10.0, B2, C2))
        assert [r.recipient for r in recs] == [A2]


class TestEquivalenceWithHandCoded:
    """Declarative diamond == hand-coded diamond, event for event."""

    follow_edges = st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    )
    event_streams = st.lists(
        st.tuples(st.floats(0, 100), st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[1] != e[2]
        ),
        max_size=40,
    )

    @settings(max_examples=50, deadline=None)
    @given(follows=follow_edges, raw_events=event_streams, k=st.integers(1, 3))
    def test_equivalence(self, follows, raw_events, k):
        tau = 20.0
        events = sorted(
            (EdgeEvent(t, b, c) for t, b, c in raw_events),
            key=lambda e: e.created_at,
        )

        s1, d1 = make_indexes(follows, retention=tau)
        hand_coded = DiamondDetector(s1, d1, DetectionParams(k=k, tau=tau))
        s2, d2 = make_indexes(follows, retention=tau)
        declarative = DeclarativeDetector(
            diamond_spec(k=k, tau=tau), s2, d2, collect_statistics=False
        )

        for event in events:
            expected = sorted(
                (r.recipient, r.candidate) for r in hand_coded.on_edge(event)
            )
            got = sorted(
                (r.recipient, r.candidate) for r in declarative.on_edge(event)
            )
            assert got == expected

    def test_equivalence_with_statistics_enabled(self):
        """The cost-based plan must not change semantics, only speed."""
        follows = FIGURE1_FOLLOWS + [(A1, B2)]
        events = [
            EdgeEvent(0.0, B1, C2),
            EdgeEvent(1.0, B2, C2),
            EdgeEvent(2.0, B1, 7),
            EdgeEvent(3.0, B2, 7),
        ]
        s1, d1 = make_indexes(follows)
        hand_coded = DiamondDetector(s1, d1, DetectionParams(k=2, tau=600.0))
        s2, d2 = make_indexes(follows)
        declarative = DeclarativeDetector(diamond_spec(k=2, tau=600.0), s2, d2)
        for event in events:
            expected = {(r.recipient, r.candidate) for r in hand_coded.on_edge(event)}
            got = {(r.recipient, r.candidate) for r in declarative.on_edge(event)}
            assert got == expected


class TestOtherCatalogMotifs:
    def test_wedge_fires_on_single_witness(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(wedge_spec(tau=600.0), s, d)
        recs = detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert {(r.recipient, r.candidate) for r in recs} == {(A1, C2), (A2, C2)}
        assert recs[0].motif == "wedge"

    def test_co_retweet_ignores_follows(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(co_retweet_spec(k=2, tau=600.0), s, d)
        # Two FOLLOW events toward the same target: filtered by action.
        detector.on_edge(EdgeEvent(0.0, B1, C2, ActionType.FOLLOW))
        assert detector.on_edge(EdgeEvent(1.0, B2, C2, ActionType.FOLLOW)) == []

    def test_co_retweet_fires_on_retweets(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(co_retweet_spec(k=2, tau=600.0), s, d)
        tweet = 999
        detector.on_edge(EdgeEvent(0.0, B1, tweet, ActionType.RETWEET))
        recs = detector.on_edge(EdgeEvent(1.0, B2, tweet, ActionType.RETWEET))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, tweet)]
        assert recs[0].action is ActionType.RETWEET

    def test_favorite_burst(self):
        s, d = make_indexes()
        detector = DeclarativeDetector(favorite_burst_spec(k=2, tau=600.0), s, d)
        tweet = 500
        detector.on_edge(EdgeEvent(0.0, B1, tweet, ActionType.FAVORITE))
        recs = detector.on_edge(EdgeEvent(1.0, B2, tweet, ActionType.FAVORITE))
        assert [r.recipient for r in recs] == [A2]

    def test_mixed_action_streams_kept_separate(self):
        """A retweet and a favorite toward the same tweet must not combine
        for an action-filtered motif."""
        s, d = make_indexes()
        detector = DeclarativeDetector(co_retweet_spec(k=2, tau=600.0), s, d)
        tweet = 999
        detector.on_edge(EdgeEvent(0.0, B1, tweet, ActionType.RETWEET))
        recs = detector.on_edge(EdgeEvent(1.0, B2, tweet, ActionType.FAVORITE))
        assert recs == []


class TestCatalogRegistry:
    def test_build_detector_by_name(self):
        s, d = make_indexes()
        detector = build_detector("diamond", s, d, k=2, tau=600.0)
        assert detector.name == "diamond"
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert detector.on_edge(EdgeEvent(1.0, B2, C2)) != []

    def test_unknown_name_lists_catalog(self):
        s, d = make_indexes()
        with pytest.raises(KeyError, match="co-retweet"):
            build_detector("nonsense", s, d)

    def test_all_catalog_entries_compile(self):
        s, d = make_indexes()
        for name in MOTIF_CATALOG:
            detector = build_detector(name, s, d)
            assert detector.plan.operators
