"""Tests for the serving query surfaces: TCP front-end + DES query load."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serving import QueryLoadGenerator, ServingCache, ServingFrontend
from repro.serving.frontend import READ_STAGE
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown


def seeded_cache(k=2):
    cache = ServingCache(k=k)
    cache.update_columns(
        np.array([1, 1, 2], dtype=np.int64),
        np.array([10, 11, 20], dtype=np.int64),
        np.array([3.0, 2.0, 1.0]),
        np.array([0.0, 0.0, 5.0]),
    )
    return cache


class TestDispatch:
    def test_get_returns_user_row_as_json(self):
        frontend = ServingFrontend(seeded_cache())
        reply = json.loads(frontend._dispatch("GET 1"))
        assert reply == {
            "user": 1,
            "recommendations": [[10, 3.0, 0.0], [11, 2.0, 0.0]],
        }

    def test_get_with_k_truncates(self):
        frontend = ServingFrontend(seeded_cache())
        reply = json.loads(frontend._dispatch("GET 1 1"))
        assert reply["recommendations"] == [[10, 3.0, 0.0]]

    def test_get_miss_returns_empty_row(self):
        frontend = ServingFrontend(seeded_cache())
        reply = json.loads(frontend._dispatch("GET 999"))
        assert reply == {"user": 999, "recommendations": []}

    def test_get_counts_queries_and_verbs_are_case_insensitive(self):
        frontend = ServingFrontend(seeded_cache())
        frontend._dispatch("get 1")
        frontend._dispatch("GET 2")
        assert frontend.queries_served == 2

    def test_stats_reports_cache_gauges(self):
        frontend = ServingFrontend(seeded_cache())
        frontend._dispatch("GET 1")
        stats = json.loads(frontend._dispatch("STATS"))
        assert stats["users_cached"] == 2.0
        assert stats["hit_rate"] == 1.0
        assert stats["queries_served"] == 1.0
        assert stats["bytes_per_user"] > 0

    def test_quit_closes_connection(self):
        frontend = ServingFrontend(seeded_cache())
        assert frontend._dispatch("QUIT") is None

    def test_bad_get_arguments_keep_connection_open(self):
        frontend = ServingFrontend(seeded_cache())
        assert "error" in json.loads(frontend._dispatch("GET abc"))
        assert "error" in json.loads(frontend._dispatch("GET"))
        assert "error" in json.loads(frontend._dispatch("FROB 1"))
        assert "error" in json.loads(frontend._dispatch(""))


class TestTcpRoundTrip:
    def test_protocol_over_a_real_socket(self):
        frontend = ServingFrontend(seeded_cache())

        async def scenario():
            host, port = await frontend.start(port=0)
            assert port > 0
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET 1\nSTATS\nQUIT\n")
                await writer.drain()
                get_reply = json.loads(await reader.readline())
                stats_reply = json.loads(await reader.readline())
                assert await reader.readline() == b""  # QUIT closed it
                writer.close()
                await writer.wait_closed()
                return get_reply, stats_reply
            finally:
                await frontend.stop()

        get_reply, stats_reply = asyncio.run(scenario())
        assert get_reply["user"] == 1
        assert [rec[0] for rec in get_reply["recommendations"]] == [10, 11]
        assert stats_reply["queries_served"] == 1.0

    def test_stop_is_idempotent(self):
        frontend = ServingFrontend(seeded_cache())

        async def scenario():
            await frontend.start(port=0)
            await frontend.stop()
            await frontend.stop()

        asyncio.run(scenario())

    def test_async_get_counts_queries(self):
        frontend = ServingFrontend(seeded_cache())
        served = asyncio.run(frontend.get_recommendations(1))
        assert [rec.candidate for rec in served] == [10, 11]
        assert frontend.queries_served == 1


class TestQueryLoadGenerator:
    def make_rig(self, qps=10.0, num_users=50, k=None):
        sim = DiscreteEventSimulator()
        breakdown = LatencyBreakdown()
        cache = seeded_cache()
        load = QueryLoadGenerator(
            sim, cache, num_users, qps, breakdown, k=k, seed=3
        )
        return sim, breakdown, cache, load

    def test_schedules_fixed_timeline_up_to_horizon(self):
        # qps=4 -> an exact binary interval (0.25s), so the timeline's
        # endpoint lands on the horizon without float drift.
        sim, _, _, load = self.make_rig(qps=4.0)
        count = load.schedule_until(2.0)
        assert count == 8  # 0.25s .. 2.0s inclusive
        assert sim.pending() == 8
        sim.run()
        assert load.queries_issued == 8
        assert sim.pending() == 0  # fixed horizon: nothing re-armed

    def test_reads_recorded_into_breakdown_stage(self):
        sim, breakdown, _, load = self.make_rig(qps=4.0)
        load.schedule_until(1.0)
        sim.run()
        assert READ_STAGE in breakdown.stages()
        assert len(breakdown.stage(READ_STAGE)) == load.queries_issued

    def test_hit_rate_tracks_materialized_users(self):
        # Only users 1 and 2 are materialized out of 50: with zipf skew
        # some queries hit, some miss, and the ledger adds up.
        sim, _, cache, load = self.make_rig(qps=64.0)
        load.schedule_until(4.0)
        sim.run()
        assert load.queries_issued == 256
        assert load.queries_hit == cache.hits
        assert 0.0 < load.hit_rate < 1.0

    def test_empty_horizon_schedules_nothing(self):
        sim, _, _, load = self.make_rig(qps=1.0)
        assert load.schedule_until(0.5) == 0
        assert load.hit_rate == 0.0

    def test_validation(self):
        sim = DiscreteEventSimulator()
        breakdown = LatencyBreakdown()
        cache = seeded_cache()
        with pytest.raises(ValueError):
            QueryLoadGenerator(sim, cache, 0, 1.0, breakdown)
        with pytest.raises(ValueError):
            QueryLoadGenerator(sim, cache, 10, 0.0, breakdown)
