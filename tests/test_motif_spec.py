"""Unit tests for motif specs and the planner's fragment validation."""

import pytest

from repro.core.events import ActionType
from repro.motif.optimizer import IndexStatistics, choose_algorithm, estimate_cost
from repro.motif.planner import compile_motif
from repro.motif.spec import (
    EdgeKind,
    MotifSpec,
    PatternEdge,
    UnsupportedMotifError,
)
from repro.motif.catalog import diamond_spec, wedge_spec


class TestPatternEdge:
    def test_dynamic_requires_window(self):
        with pytest.raises(ValueError, match="within"):
            PatternEdge("b", "c", EdgeKind.DYNAMIC)

    def test_static_rejects_window_and_action(self):
        with pytest.raises(ValueError):
            PatternEdge("a", "b", EdgeKind.STATIC, within=10.0)
        with pytest.raises(ValueError):
            PatternEdge("a", "b", EdgeKind.STATIC, action=ActionType.FOLLOW)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            PatternEdge("a", "a")

    def test_describe(self):
        edge = PatternEdge("b", "c", EdgeKind.DYNAMIC, within=60.0, action=ActionType.RETWEET)
        assert "dynamic" in edge.describe()
        assert "retweet" in edge.describe()
        assert "static" in PatternEdge("a", "b").describe()


class TestMotifSpecValidation:
    def test_diamond_spec_well_formed(self):
        spec = diamond_spec(k=3, tau=3600.0)
        assert spec.count_at_least == {"b": 3}
        assert len(spec.dynamic_edges()) == 1
        assert len(spec.static_edges()) == 1
        text = spec.describe()
        assert "motif diamond" in text and "notify a about c" in text

    def test_unknown_vertex_in_edge(self):
        with pytest.raises(ValueError, match="not a declared vertex"):
            MotifSpec(
                name="bad",
                vertices=("a", "b"),
                edges=(PatternEdge("a", "z"),),
            )

    def test_unknown_count_vertex(self):
        with pytest.raises(ValueError, match="unknown vertex"):
            MotifSpec(
                name="bad",
                vertices=("a", "b"),
                edges=(PatternEdge("a", "b"),),
                count_at_least={"z": 2},
            )

    def test_dynamic_forbid_rejected(self):
        with pytest.raises(ValueError, match="static edges only"):
            MotifSpec(
                name="bad",
                vertices=("a", "b", "c"),
                edges=(
                    PatternEdge("a", "b"),
                    PatternEdge("b", "c", EdgeKind.DYNAMIC, within=60.0),
                ),
                count_at_least={"b": 2},
                forbid=(PatternEdge("a", "c", EdgeKind.DYNAMIC, within=60.0),),
            )

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MotifSpec(
                name="bad",
                vertices=("a", "a"),
                edges=(PatternEdge("a", "c"),),
            )


class TestPlannerFragment:
    def base_spec(self, **overrides):
        fields = dict(
            name="m",
            vertices=("a", "b", "c"),
            edges=(
                PatternEdge("a", "b"),
                PatternEdge("b", "c", EdgeKind.DYNAMIC, within=60.0),
            ),
            count_at_least={"b": 2},
            emit=("a", "c"),
        )
        fields.update(overrides)
        return MotifSpec(**fields)

    def test_diamond_compiles(self):
        plan = compile_motif(diamond_spec())
        explain = plan.explain()
        assert "FetchFreshWitnesses" in explain
        assert "KOverlap" in explain
        assert "Emit" in explain

    def test_two_dynamic_edges_rejected(self):
        spec = self.base_spec(
            vertices=("a", "b", "c", "d"),
            edges=(
                PatternEdge("a", "b"),
                PatternEdge("b", "c", EdgeKind.DYNAMIC, within=60.0),
                PatternEdge("b", "d", EdgeKind.DYNAMIC, within=60.0),
            ),
        )
        with pytest.raises(UnsupportedMotifError, match="dynamic edges"):
            compile_motif(spec)

    def test_missing_threshold_rejected(self):
        spec = self.base_spec(count_at_least={})
        with pytest.raises(UnsupportedMotifError, match="count threshold"):
            compile_motif(spec)

    def test_threshold_on_wrong_vertex_rejected(self):
        spec = self.base_spec(count_at_least={"a": 2})
        with pytest.raises(UnsupportedMotifError, match="count threshold"):
            compile_motif(spec)

    def test_emitting_non_target_rejected(self):
        spec = self.base_spec(emit=("a", "b"), count_at_least={"b": 2})
        with pytest.raises(UnsupportedMotifError, match="reverse lookup"):
            compile_motif(spec)

    def test_notifying_witness_rejected(self):
        spec = self.base_spec(emit=("b", "c"))
        with pytest.raises(UnsupportedMotifError, match="broadcast"):
            compile_motif(spec)

    def test_long_static_chain_rejected(self):
        spec = self.base_spec(
            vertices=("a", "x", "b", "c"),
            edges=(
                PatternEdge("a", "x"),
                PatternEdge("x", "b"),
                PatternEdge("b", "c", EdgeKind.DYNAMIC, within=60.0),
            ),
        )
        with pytest.raises(UnsupportedMotifError, match="exactly one static edge"):
            compile_motif(spec)

    def test_unsupported_forbid_rejected(self):
        spec = self.base_spec(forbid=(PatternEdge("b", "a"),))
        with pytest.raises(UnsupportedMotifError, match="forbid"):
            compile_motif(spec)

    def test_cap_below_k_rejected(self):
        with pytest.raises(UnsupportedMotifError, match="never complete"):
            compile_motif(diamond_spec(k=3), max_witnesses=2)

    def test_cap_adds_operator(self):
        plan = compile_motif(diamond_spec(k=2), max_witnesses=10)
        assert "CapWitnesses" in plan.explain()


class TestOptimizer:
    def test_choose_algorithm_shapes(self):
        assert choose_algorithm(3, expected_lists=3.0, expected_list_length=100) == "intersect"
        assert choose_algorithm(2, expected_lists=10.0, expected_list_length=10) == "scancount"
        assert choose_algorithm(2, expected_lists=10.0, expected_list_length=10_000) == "numpy"

    def test_estimate_cost_describe(self):
        stats = IndexStatistics(
            mean_followers=50.0, p99_followers=900.0, mean_fresh_sources=4.0
        )
        cost = estimate_cost(3, stats)
        assert cost.expected_lists == 4.0
        assert cost.expected_work == 200.0
        assert "lists" in cost.describe()

    def test_collect_statistics(self):
        from repro.graph.dynamic_index import DynamicEdgeIndex
        from repro.graph.static_index import StaticFollowerIndex

        s = StaticFollowerIndex.from_follow_edges(
            [(a, 0) for a in range(10)] + [(1, 1), (2, 1)]
        )
        d = DynamicEdgeIndex(retention=100.0)
        d.insert(1, 5, 0.0)
        d.insert(2, 5, 1.0)
        stats = IndexStatistics.collect(s, d)
        assert stats.mean_followers == pytest.approx(6.0)
        assert stats.mean_fresh_sources == pytest.approx(2.0)

    def test_collect_empty_indexes(self):
        from repro.graph.dynamic_index import DynamicEdgeIndex
        from repro.graph.static_index import StaticFollowerIndex

        stats = IndexStatistics.collect(
            StaticFollowerIndex.from_follow_edges([]),
            DynamicEdgeIndex(retention=10.0),
        )
        assert stats.mean_followers == 0.0
        assert stats.mean_fresh_sources == 0.0

    def test_wedge_uses_union_friendly_algorithm(self):
        plan = compile_motif(wedge_spec())
        # k=1 with a single expected list compiles to the intersect fast
        # path, which degrades gracefully to scancount at runtime.
        assert "KOverlap(k=1" in plan.explain()
