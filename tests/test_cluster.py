"""Integration tests for the partitioned / replicated cluster.

The load-bearing property: for any partition count, the cluster's gathered
output must equal the single-machine engine's output, because partitioning
by A makes every intersection local (paper §2).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    AllReplicasDown,
    Cluster,
    ClusterConfig,
    ModuloPartitioner,
)
from repro.cluster.cluster import fault_injecting_channel_factory
from repro.core import DetectionParams, EdgeEvent, MotifEngine
from repro.gen import StreamConfig, TwitterGraphConfig, generate_event_stream, generate_follow_graph

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


def small_workload(seed=0, num_users=300, rate=4.0, duration=200.0):
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=10.0, seed=seed)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=duration,
            background_rate=rate,
            seed=seed,
        )
    )
    return snapshot, events


class TestClusterBasics:
    def test_figure1_through_cluster(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3),
        )
        assert cluster.process_event(EdgeEvent(0.0, B1, C2)) == []
        recs = cluster.process_event(EdgeEvent(10.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]

    def test_default_config_is_production_shape(self, figure1_snapshot):
        cluster = Cluster.build(figure1_snapshot)
        assert cluster.broker.num_partitions == 20
        assert cluster.params.k == 3

    def test_every_partition_sees_every_event(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=4)
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        for replica_set in cluster.replica_sets:
            assert replica_set.replicas[0].events_processed() == 1

    def test_recipients_disjoint_across_partitions(self):
        snapshot, events = small_workload(seed=3)
        cluster = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=5),
            partitioner=ModuloPartitioner(5),
        )
        for event in events:
            for rec in cluster.process_event(event):
                assert rec.recipient % 5 == cluster.partitioner.partition_of(
                    rec.recipient
                )

    def test_query_audience_merges_partitions(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=3)
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert cluster.query_audience(C2, now=2.0) == [A2]

    def test_prune_sweeps_fleet(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        removed = cluster.prune(now=10_000.0)
        assert removed == 2  # one stale edge per partition's D copy


class TestPartitionEquivalence:
    """Cluster output == single-machine output, for every partition count."""

    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 5, 8])
    def test_equivalence_on_synthetic_workload(self, num_partitions):
        snapshot, events = small_workload(seed=1)
        single = MotifEngine.from_snapshot(snapshot, PARAMS)
        expected = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in single.process_stream(events)
        )
        cluster = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=num_partitions)
        )
        got = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in cluster.process_stream(events)
        )
        assert got == expected
        assert len(got) > 0, "workload produced no motifs; test is vacuous"

    @settings(max_examples=10, deadline=None)
    @given(num_partitions=st.integers(1, 6), seed=st.integers(0, 5))
    def test_equivalence_property(self, num_partitions, seed):
        snapshot, events = small_workload(
            seed=seed, num_users=120, rate=3.0, duration=120.0
        )
        single = MotifEngine.from_snapshot(snapshot, PARAMS)
        expected = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in single.process_stream(events)
        )
        cluster = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=num_partitions)
        )
        got = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in cluster.process_stream(events)
        )
        assert got == expected


class TestReplication:
    def build_replicated(self, snapshot, replicas=2, partitions=2):
        return Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=partitions, replication_factor=replicas),
        )

    def test_replicas_stay_identical(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        for replica_set in cluster.replica_sets:
            first, second = replica_set.replicas
            assert (
                first.engine.dynamic_index.num_edges
                == second.engine.dynamic_index.num_edges
            )

    def test_no_duplicate_output_with_replicas(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        recs = cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert len(recs) == 1  # primary only, not once per replica

    def test_failover_on_dead_replica(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot)
        for replica_set in cluster.replica_sets:
            replica_set.mark_down(0)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        recs = cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]

    def test_all_replicas_down_loses_events_but_serves(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot, replicas=1, partitions=2)
        owner = cluster.partitioner.partition_of(A2)
        cluster.replica_sets[owner].mark_down(0)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        recs = cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert recs == []  # A2's shard was down; no crash, event lost there
        assert cluster.broker.stats.partitions_lost_events == 2

    def test_resync_repairs_stale_replica(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot, partitions=1)
        replica_set = cluster.replica_sets[0]
        replica_set.mark_down(1)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        assert replica_set.missed_events[1] == 1
        replica_set.resync(1)
        assert replica_set.missed_events[1] == 0
        stale, healthy = replica_set.replicas[1], replica_set.replicas[0]
        assert (
            stale.engine.dynamic_index.num_edges
            == healthy.engine.dynamic_index.num_edges
        )
        # After resync the repaired replica answers reads correctly.
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        audience, _ = replica_set.query_audience(C2, now=2.0)
        assert audience == [A2]

    def test_resync_without_healthy_source_raises(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot, partitions=1)
        replica_set = cluster.replica_sets[0]
        replica_set.mark_down(0)
        replica_set.mark_down(1)
        with pytest.raises(AllReplicasDown):
            replica_set.resync(0)

    def test_reads_round_robin_across_replicas(self, figure1_snapshot):
        cluster = self.build_replicated(figure1_snapshot, partitions=1, replicas=3)
        replica_set = cluster.replica_sets[0]
        for _ in range(9):
            replica_set.query_audience(C2, now=0.0)
        calls = [ch.stats.calls for ch in replica_set.channels]
        assert calls == [3, 3, 3]

    def test_chaos_channels_do_not_crash_cluster(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, replication_factor=2),
            channel_factory=fault_injecting_channel_factory(0.2, seed=1),
        )
        for i in range(50):
            cluster.process_event(EdgeEvent(float(i), B1, C2))


class TestMemoryAccounting:
    def test_d_memory_grows_with_partitions_s_does_not(self):
        snapshot, events = small_workload(seed=2)
        reports = {}
        for p in (1, 4):
            cluster = Cluster.build(
                snapshot, PARAMS, ClusterConfig(num_partitions=p)
            )
            cluster.process_stream(events)
            reports[p] = cluster.memory_report()
        # D is fully replicated per partition: ~P times the single copy.
        assert reports[4]["dynamic_index"] == pytest.approx(
            4 * reports[1]["dynamic_index"], rel=0.05
        )
        # S shards hold disjoint edges, so S grows sublinearly in P: only
        # the per-B dict/bookkeeping overhead is duplicated, never payload.
        assert reports[4]["static_index"] < 0.8 * 4 * reports[1]["static_index"]

    def test_s_edges_partition_exactly(self):
        snapshot, _events = small_workload(seed=2)
        single_edges = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=1)
        ).replica_sets[0].replicas[0].engine.static_index.num_edges
        cluster = Cluster.build(snapshot, PARAMS, ClusterConfig(num_partitions=4))
        sharded = sum(
            rs.replicas[0].engine.static_index.num_edges
            for rs in cluster.replica_sets
        )
        assert sharded == single_edges
