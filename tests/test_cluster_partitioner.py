"""Unit tests for partitioners and the simulated RPC layer."""

import pytest

from repro.cluster.partitioner import HashPartitioner, ModuloPartitioner
from repro.cluster.rpc import RpcError, SimulatedChannel
from repro.util.rng import make_rng


class TestPartitioners:
    @pytest.mark.parametrize("cls", [HashPartitioner, ModuloPartitioner])
    def test_in_range_and_deterministic(self, cls):
        partitioner = cls(7)
        for a in range(500):
            p = partitioner.partition_of(a)
            assert 0 <= p < 7
            assert p == partitioner.partition_of(a)

    def test_hash_partitioner_balanced(self):
        partitioner = HashPartitioner(10)
        counts = [0] * 10
        for a in range(20_000):
            counts[partitioner.partition_of(a)] += 1
        assert min(counts) > 0.8 * max(counts)

    def test_hash_partitioner_stable_values(self):
        """Assignments are frozen constants — replicas must always agree."""
        partitioner = HashPartitioner(20)
        sample = {a: partitioner.partition_of(a) for a in (0, 1, 42, 10_000)}
        assert sample == {
            a: HashPartitioner(20).partition_of(a) for a in sample
        }

    def test_modulo_partitioner_transparent(self):
        partitioner = ModuloPartitioner(4)
        assert [partitioner.partition_of(a) for a in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    @pytest.mark.parametrize("cls", [HashPartitioner, ModuloPartitioner])
    def test_zero_partitions_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(0)


class TestSimulatedChannel:
    def test_call_returns_value_and_latency(self):
        channel = SimulatedChannel("test", latency_model=lambda: 0.005)
        result = channel.call(lambda x: x * 2, 21)
        assert result.value == 42
        assert result.latency == 0.005
        assert channel.stats.calls == 1
        assert channel.stats.virtual_latency_total == 0.005

    def test_zero_latency_default(self):
        channel = SimulatedChannel("test")
        assert channel.call(len, [1, 2]).latency == 0.0

    def test_down_channel_raises(self):
        channel = SimulatedChannel("test")
        channel.mark_down()
        with pytest.raises(RpcError, match="down"):
            channel.call(lambda: 1)
        assert channel.stats.failures == 1
        channel.mark_up()
        assert channel.call(lambda: 1).value == 1

    def test_injected_faults_fire_at_configured_rate(self):
        channel = SimulatedChannel(
            "flaky", failure_rate=0.3, rng=make_rng(5, "rpc")
        )
        failures = 0
        for _ in range(2_000):
            try:
                channel.call(lambda: None)
            except RpcError:
                failures += 1
        assert failures == pytest.approx(600, rel=0.25)

    def test_failure_injection_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            SimulatedChannel("bad", failure_rate=0.5)

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            SimulatedChannel("bad", failure_rate=1.5, rng=make_rng(0))
