"""Unit tests for the two-hop Bloom baseline (ruled-out approach #2)."""

import pytest

from repro.baselines.twohop import (
    TwoHopBloomDetector,
    TwoHopMemoryModel,
    measure_two_hop_sizes,
)
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.static_index import StaticFollowerIndex

from tests.conftest import A2, B1, B2, C2, FIGURE1_FOLLOWS

PARAMS = DetectionParams(k=2, tau=600.0)


def make_detector(follows=FIGURE1_FOLLOWS, **kwargs):
    s = StaticFollowerIndex.from_follow_edges(follows)
    return TwoHopBloomDetector(s, num_users=8, params=PARAMS, **kwargs)


class TestDetection:
    def test_figure1_equivalent_result(self):
        detector = make_detector()
        assert detector.on_edge(EdgeEvent(0.0, B1, C2)) == []
        recs = detector.on_edge(EdgeEvent(10.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]
        assert recs[0].motif == "twohop-bloom"

    def test_fires_once_per_threshold_crossing(self):
        follows = FIGURE1_FOLLOWS + [(A2, 20)]
        detector = make_detector(follows=follows)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        first = detector.on_edge(EdgeEvent(1.0, B2, C2))
        second = detector.on_edge(EdgeEvent(2.0, 20, C2))
        assert len(first) == 1
        assert second == []  # count moved past k, no re-fire

    def test_existing_follower_excluded(self):
        follows = FIGURE1_FOLLOWS + [(A2, C2)]
        s = StaticFollowerIndex.from_follow_edges(follows)
        detector = TwoHopBloomDetector(s, num_users=8, params=PARAMS)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert detector.on_edge(EdgeEvent(1.0, B2, C2)) == []


class TestCosts:
    def test_write_amplification_equals_follower_count(self):
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C2))  # B1 has 2 followers
        assert detector.updates_performed == 2
        detector.on_edge(EdgeEvent(1.0, B2, C2))  # B2 has 2 followers
        assert detector.updates_performed == 4

    def test_memory_grows_with_touched_users(self):
        detector = make_detector()
        assert detector.memory_bytes() == 0
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert detector.allocated_filters() == 2  # A1 and A2
        first = detector.memory_bytes()
        detector.on_edge(EdgeEvent(1.0, B2, C2))
        assert detector.allocated_filters() == 3  # + A3
        assert detector.memory_bytes() > first

    def test_filter_bytes_are_substantial_per_user(self):
        detector = make_detector(filter_capacity=1024, fp_rate=0.01)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        per_user = detector.memory_bytes() / detector.allocated_filters()
        # Counting bloom at 1% FP and 1k capacity: ~9.6 KB per user.
        assert per_user > 8_000


class TestMemoryModel:
    def test_rough_calculation_is_impractical_at_twitter_scale(self):
        # Realistic assumptions: following ~100 accounts that each follow
        # hundreds more yields ~10^5 distinct two-hop targets per user.
        model = TwoHopMemoryModel(mean_two_hop_size=1e5, bytes_per_element=9.6)
        total = model.total_bytes(1e8)
        assert total > 5e13  # tens of terabytes of RAM: impractical in 2014

    def test_report_mentions_units(self):
        model = TwoHopMemoryModel(mean_two_hop_size=1e5, bytes_per_element=10.0)
        text = model.report(1e8)
        assert "PiB" in text or "TiB" in text

    def test_as_estimate_roundtrip(self):
        model = TwoHopMemoryModel(mean_two_hop_size=100, bytes_per_element=10.0)
        estimate = model.as_estimate(measured_users=1_000)
        assert estimate.extrapolate(1e6) == pytest.approx(
            model.total_bytes(1e6)
        )


class TestMeasureTwoHop:
    def test_exact_two_hop_sizes(self):
        followings = {0: [1, 2], 1: [3, 4], 2: [4, 5], 3: []}
        sizes = measure_two_hop_sizes(followings, [0, 1, 3])
        assert sizes == [3, 0, 0]  # 0 reaches {3,4,5}; 1 reaches {}; 3 too

    def test_missing_user_counts_zero(self):
        assert measure_two_hop_sizes({}, [7]) == [0]
