"""Tests for the source-keyed index and the spree motif program."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import ActionType, EdgeEvent
from repro.core.params import DetectionParams
from repro.core.spree import SpreeDetector
from repro.graph.dynamic_index import DynamicSourceIndex


class TestDynamicSourceIndex:
    def test_fresh_targets_basic(self):
        index = DynamicSourceIndex(retention=100.0)
        index.insert(1, 10, 5.0)
        index.insert(1, 11, 6.0)
        index.insert(2, 12, 7.0)
        fresh = index.fresh_targets(1, now=10.0, tau=50.0)
        assert [(e.source, e.timestamp) for e in fresh] == [(10, 5.0), (11, 6.0)]

    def test_distinct_targets_counted_once(self):
        index = DynamicSourceIndex(retention=100.0)
        index.insert(1, 10, 5.0)
        index.insert(1, 10, 8.0)  # re-follow of the same target
        fresh = index.fresh_targets(1, now=10.0, tau=50.0)
        assert len(fresh) == 1
        assert fresh[0].timestamp == 8.0

    def test_window_and_cap_pruning(self):
        index = DynamicSourceIndex(retention=10.0, max_edges_per_source=3)
        for i in range(5):
            index.insert(1, 100 + i, float(i))
        assert index.num_edges == 3
        index.insert(1, 200, 50.0)  # everything else stale
        assert [e.source for e in index.fresh_targets(1, now=50.0, tau=10.0)] == [200]

    def test_action_filter(self):
        index = DynamicSourceIndex(retention=100.0)
        index.insert(1, 10, 1.0, action=ActionType.FOLLOW)
        index.insert(1, 11, 2.0, action=ActionType.RETWEET)
        follows = index.fresh_targets(1, now=5.0, tau=50.0, action=ActionType.FOLLOW)
        assert [e.source for e in follows] == [10]

    def test_tau_beyond_retention_rejected(self):
        index = DynamicSourceIndex(retention=10.0)
        with pytest.raises(ValueError, match="retention"):
            index.fresh_targets(1, now=0.0, tau=20.0)

    def test_accounting(self):
        index = DynamicSourceIndex(retention=100.0)
        index.insert(1, 10, 0.0)
        index.insert(2, 11, 0.0)
        assert index.num_edges == 2
        assert index.num_sources == 2
        assert index.memory_bytes() > 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 20), st.floats(0, 100)),
            max_size=50,
        )
    )
    def test_fresh_targets_matches_naive_replay(self, inserts):
        index = DynamicSourceIndex(retention=1_000.0)
        for b, c, t in inserts:
            index.insert(b, c, t)
        if not inserts:
            return
        now = max(t for _, _, t in inserts)
        for b in {b for b, _, _ in inserts}:
            expected = {}
            for b2, c, t in inserts:
                if b2 == b and now - 1_000.0 <= t <= now:
                    expected[c] = max(expected.get(c, t), t)
            got = index.fresh_targets(b, now=now, tau=1_000.0)
            assert {e.source: e.timestamp for e in got} == expected


class TestSpreeDetector:
    def make(self, k=5, tau=60.0, **kwargs):
        index = DynamicSourceIndex(retention=tau)
        return SpreeDetector(index, DetectionParams(k=k, tau=tau), **kwargs)

    def test_fires_at_threshold(self):
        detector = self.make(k=5)
        alerts = []
        for i in range(5):
            alerts = detector.on_edge(EdgeEvent(float(i), 1, 100 + i))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.actor == 1
        assert alert.distinct_targets == 5
        assert alert.first_edge_at == 0.0
        assert alert.detected_at == 4.0
        assert alert.span == 4.0

    def test_slow_follower_never_flagged(self):
        detector = self.make(k=5, tau=60.0)
        for i in range(20):
            assert detector.on_edge(EdgeEvent(i * 100.0, 1, 100 + i)) == []

    def test_refollowing_same_target_not_a_spree(self):
        detector = self.make(k=3)
        for i in range(10):
            assert detector.on_edge(EdgeEvent(float(i), 1, 99)) == []

    def test_realert_suppression(self):
        detector = self.make(k=3, tau=60.0, realert_after=60.0)
        for i in range(3):
            detector.on_edge(EdgeEvent(float(i), 1, 100 + i))
        assert detector.alerts_emitted == 1
        # Continuing the spree inside the suppression window: no re-alert.
        detector.on_edge(EdgeEvent(3.0, 1, 200))
        assert detector.alerts_emitted == 1
        # Well past the suppression window with a fresh spree: re-alert.
        for i in range(3):
            detector.on_edge(EdgeEvent(100.0 + i, 1, 300 + i))
        assert detector.alerts_emitted == 2

    def test_actors_independent(self):
        detector = self.make(k=3)
        for actor in (1, 2):
            for i in range(3):
                detector.on_edge(EdgeEvent(float(i), actor, 100 + i))
        assert detector.alerts_emitted == 2

    def test_tau_exceeding_retention_rejected(self):
        index = DynamicSourceIndex(retention=10.0)
        with pytest.raises(ValueError, match="retention"):
            SpreeDetector(index, DetectionParams(k=3, tau=20.0))

    def test_shared_index_with_external_inserts(self):
        index = DynamicSourceIndex(retention=60.0)
        detector = SpreeDetector(
            index, DetectionParams(k=3, tau=60.0), inserts_edges=False
        )
        for i in range(3):
            event = EdgeEvent(float(i), 1, 100 + i)
            index.insert(event.actor, event.target, event.created_at)
            alerts = detector.on_edge(event)
        assert len(alerts) == 1
        assert index.num_edges == 3  # no double inserts
