"""Unit tests for the heavy-tail sampling primitives."""

import pytest

from repro.gen.zipf import ZipfSampler, power_law_out_degrees
from repro.util.rng import make_rng


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, 1.0, make_rng(1))
        draws = sampler.sample_many(1_000)
        assert all(0 <= d < 100 for d in draws)

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(1_000, 1.2, make_rng(2))
        draws = sampler.sample_many(5_000)
        top_decile = sum(1 for d in draws if d < 100)
        # With exponent 1.2 the top 10% of ranks should take well over
        # half the mass.
        assert top_decile > 0.5 * len(draws)

    def test_zero_exponent_is_roughly_uniform(self):
        sampler = ZipfSampler(10, 0.0, make_rng(3))
        draws = sampler.sample_many(10_000)
        for rank in range(10):
            share = draws.count(rank) / len(draws)
            assert 0.05 < share < 0.15

    def test_deterministic_given_rng(self):
        a = ZipfSampler(50, 1.0, make_rng(42)).sample_many(20)
        b = ZipfSampler(50, 1.0, make_rng(42)).sample_many(20)
        assert a == b

    def test_sample_distinct_no_duplicates_or_excluded(self):
        sampler = ZipfSampler(100, 1.0, make_rng(4))
        chosen = sampler.sample_distinct(30, exclude={0, 1, 2})
        assert len(chosen) == len(set(chosen)) == 30
        assert not {0, 1, 2} & set(chosen)

    def test_sample_distinct_can_exhaust_population(self):
        sampler = ZipfSampler(10, 2.0, make_rng(5))
        chosen = sampler.sample_distinct(9, exclude={3})
        assert sorted(chosen) == [0, 1, 2, 4, 5, 6, 7, 8, 9]

    def test_sample_distinct_overdraw_rejected(self):
        sampler = ZipfSampler(5, 1.0, make_rng(6))
        with pytest.raises(ValueError):
            sampler.sample_distinct(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, make_rng(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, make_rng(0))


class TestPowerLawOutDegrees:
    def test_length_and_bounds(self):
        degrees = power_law_out_degrees(1_000, 20.0, 2.2, 500, make_rng(7))
        assert len(degrees) == 1_000
        assert all(1 <= d <= 500 for d in degrees)

    def test_mean_approximates_target(self):
        degrees = power_law_out_degrees(5_000, 20.0, 2.2, 1_000, make_rng(8))
        mean = sum(degrees) / len(degrees)
        assert mean == pytest.approx(20.0, rel=0.3)

    def test_heavy_tail_exists(self):
        degrees = power_law_out_degrees(5_000, 20.0, 2.2, 1_000, make_rng(9))
        assert max(degrees) > 5 * (sum(degrees) / len(degrees))

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_out_degrees(0, 10.0, 2.0, 100, make_rng(0))
        with pytest.raises(ValueError):
            power_law_out_degrees(10, 10.0, 1.0, 100, make_rng(0))
