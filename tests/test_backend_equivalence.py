"""Storage-backend equivalence: representation changes nothing observable.

The columnar backends — ``csr`` for S (single int64 arena + offsets) and
``ring`` for D (circular numpy columns for hot targets) — exist purely for
speed and memory.  This module is the property-style guarantee that they
are drop-in: on randomized follow graphs and event streams, every backend
combination must produce identical recommendations, identical index
contents, identical eviction counters, and identical checkpoint/snapshot
round-trips as the reference ``packed``/``list`` pair, including across
ring promotion and demotion boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionType, DetectionParams, MotifEngine
from repro.core.checkpoint import load_dynamic_index, save_dynamic_index
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)
from repro.graph import (
    CsrFollowerIndex,
    DynamicEdgeIndex,
    StaticFollowerIndex,
    build_follower_snapshot,
)

BACKEND_MATRIX = [
    ("packed", "list"),
    ("csr", "list"),
    ("packed", "ring"),
    ("csr", "ring"),
]

follow_edges = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    max_size=120,
)

event_rows = st.lists(
    st.tuples(
        st.integers(0, 8),  # actor
        st.integers(0, 4),  # target (tiny space forces hot targets)
        st.floats(0.0, 100.0, allow_nan=False),  # timestamp offset
        st.sampled_from([None, ActionType.FOLLOW, ActionType.RETWEET]),
    ),
    max_size=80,
)


# ----------------------------------------------------------------------
# S: csr vs packed
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(edges=follow_edges, limit=st.one_of(st.none(), st.integers(1, 4)))
def test_s_backends_agree_on_random_graphs(edges, limit):
    """Identical queries and accounting from both S layouts."""
    packed = StaticFollowerIndex.from_follow_edges(edges, influencer_limit=limit)
    csr = CsrFollowerIndex.from_follow_edges(edges, influencer_limit=limit)
    assert csr.num_edges == packed.num_edges
    assert csr.num_targets == packed.num_targets
    assert sorted(csr.sources()) == sorted(packed.sources())
    assert csr.degree_histogram() == packed.degree_histogram()
    for b in range(32):
        assert list(csr.followers_of(b)) == list(packed.followers_of(b))
        assert (b in csr) == (b in packed)
        packed_array = packed.follower_array(b)
        csr_array = csr.follower_array(b)
        assert (packed_array is None) == (csr_array is None)
        if packed_array is not None:
            assert list(csr_array) == list(packed_array)
        for a in range(32):
            assert csr.has_edge(a, b) == packed.has_edge(a, b)


@settings(max_examples=40, deadline=None)
@given(base=follow_edges, appended=follow_edges)
def test_csr_append_matches_bulk_build(base, appended):
    """Append-and-compact lands on the same index as one bulk load.

    Appended edges must be queryable immediately (overlay), after an
    explicit compact, and count correctly against dedup in both the arena
    and the overlay.
    """
    incremental = CsrFollowerIndex.from_follow_edges(base)
    added = incremental.append_follow_edges(appended)
    rebuilt = CsrFollowerIndex.from_follow_edges(list(base) + list(appended))
    assert incremental.num_edges == rebuilt.num_edges
    assert added == rebuilt.num_edges - CsrFollowerIndex.from_follow_edges(base).num_edges
    for stage in ("overlay", "compacted"):
        assert sorted(incremental.sources()) == sorted(rebuilt.sources())
        assert incremental.num_targets == rebuilt.num_targets
        for b in range(32):
            assert list(incremental.followers_of(b)) == list(rebuilt.followers_of(b))
            for a in range(32):
                assert incremental.has_edge(a, b) == rebuilt.has_edge(a, b)
        if stage == "overlay":
            incremental.compact()
            assert incremental.pending_edges == 0


def test_csr_auto_compacts_at_threshold():
    index = CsrFollowerIndex.from_follow_edges([(0, 1)])
    index.compact_threshold = 4
    index.append_follow_edges([(a, 1) for a in range(1, 4)])
    assert index.pending_edges == 3
    index.append_follow_edges([(9, 2)])
    assert index.pending_edges == 0  # threshold reached -> folded into arena
    assert list(index.followers_of(1)) == [0, 1, 2, 3]
    assert list(index.followers_of(2)) == [9]


# ----------------------------------------------------------------------
# D: ring vs list
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    rows=event_rows,
    cap=st.one_of(st.none(), st.integers(1, 6)),
    threshold=st.integers(1, 12),
    retention=st.sampled_from([5.0, 30.0, 200.0]),
)
def test_d_backends_agree_on_random_streams(rows, cap, threshold, retention):
    """Ring and list D's stay bit-identical through promote/demote churn.

    A tiny ``promote_threshold`` forces promotion early; interleaved
    ``prune_expired`` sweeps force demotion (and re-promotion on later
    inserts); tiny caps exercise eviction inside both representations.
    """
    reference = DynamicEdgeIndex(retention, max_edges_per_target=cap, backend="list")
    ring = DynamicEdgeIndex(
        retention,
        max_edges_per_target=cap,
        backend="ring",
        promote_threshold=threshold,
    )
    clock = 0.0
    for i, (actor, target, offset, action) in enumerate(rows):
        clock += offset / 10.0
        for index in (reference, ring):
            index.insert(actor, target, clock, action=action)
        if i % 7 == 6:
            assert reference.prune_expired(clock) == ring.prune_expired(clock)
        if i % 3 == 2:
            tau = min(retention, 10.0)
            act = action if i % 2 else None
            for c in range(5):
                assert ring.fresh_sources(c, now=clock, tau=tau, action=act) == (
                    reference.fresh_sources(c, now=clock, tau=tau, action=act)
                )
            targets = list(range(5))
            nows = [clock] * 5
            for raw in (False, True):
                got = ring.fresh_sources_multi(
                    targets, nows, tau=tau, action=act, min_count=2, raw=raw
                )
                expected = reference.fresh_sources_multi(
                    targets, nows, tau=tau, action=act, min_count=2, raw=raw
                )
                # FreshColumns compares equal to the list-backend tuples.
                assert list(map(list, got)) == list(map(list, expected))
    assert ring.num_edges == reference.num_edges
    assert ring.inserted_total == reference.inserted_total
    assert ring.evicted_total == reference.evicted_total
    assert ring.num_targets == reference.num_targets
    for c in reference.targets():
        assert ring.entries(c) == reference.entries(c)


def test_ring_promotes_and_demotes_at_boundaries():
    index = DynamicEdgeIndex(retention=100.0, backend="ring", promote_threshold=4)
    for i in range(3):
        index.insert(i, 7, float(i))
    assert index.num_hot_targets == 0
    index.insert(3, 7, 3.0)  # crosses the threshold
    assert index.num_hot_targets == 1
    # Pruning below half the threshold demotes back to the deque.
    index.prune_expired(102.5)  # cutoff 2.5 -> one entry survives
    assert index.num_hot_targets == 0
    assert [e[1] for e in index.entries(7)] == [3]
    # And the survivor re-promotes once it heats back up.
    for i in range(10, 14):
        index.insert(i, 7, 50.0 + i)
    assert index.num_hot_targets == 1
    assert index.num_edges == 5


@settings(max_examples=25, deadline=None)
@given(rows=event_rows, threshold=st.integers(1, 8))
def test_clone_state_from_repacks_into_own_backend(rows, threshold):
    source = DynamicEdgeIndex(50.0, backend="list")
    clock = 0.0
    for actor, target, offset, action in rows:
        clock += offset / 20.0
        source.insert(actor, target, clock, action=action)
    clone = DynamicEdgeIndex(
        50.0, backend="ring", promote_threshold=threshold
    )
    clone.clone_state_from(source)
    assert clone.num_edges == source.num_edges
    assert clone._edges == source._edges
    for c in source.targets():
        assert clone.entries(c) == source.entries(c)


# ----------------------------------------------------------------------
# Snapshot / checkpoint round-trips
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(rows=event_rows, threshold=st.integers(1, 8))
def test_checkpoint_roundtrip_preserves_ring_backend(tmp_path_factory, rows, threshold):
    index = DynamicEdgeIndex(
        retention=1000.0,
        max_edges_per_target=8,
        backend="ring",
        promote_threshold=threshold,
    )
    clock = 0.0
    for actor, target, offset, action in rows:
        clock += offset / 10.0
        index.insert(actor, target, clock, action=action)
    path = tmp_path_factory.mktemp("ckpt") / "d.npz"
    save_dynamic_index(index, path)
    restored = load_dynamic_index(path)
    assert restored.backend == "ring"
    assert restored.promote_threshold == threshold
    assert restored.num_edges == index.num_edges
    for c in index.targets():
        assert restored.entries(c) == index.entries(c)
    # An explicit override restores into the list representation instead,
    # with identical contents.
    as_list = load_dynamic_index(path, backend="list")
    assert as_list.backend == "list"
    assert as_list.num_hot_targets == 0
    for c in index.targets():
        assert as_list.entries(c) == index.entries(c)


def test_snapshot_roundtrip_feeds_both_s_backends(tmp_path):
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=300, mean_followings=6.0, seed=11)
    )
    path = tmp_path / "graph.npz"
    snapshot.save(path)
    reloaded = type(snapshot).load(path)
    packed = build_follower_snapshot(reloaded, backend="packed")
    csr = build_follower_snapshot(reloaded, backend="csr")
    assert isinstance(packed, StaticFollowerIndex)
    assert isinstance(csr, CsrFollowerIndex)
    assert csr.num_edges == packed.num_edges
    for b in packed.sources():
        assert list(csr.followers_of(b)) == list(packed.followers_of(b))


# ----------------------------------------------------------------------
# Full-engine matrix
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5_000), burst_actors=st.integers(10, 60))
def test_engine_matrix_identical_recommendations(seed, burst_actors):
    """All four S x D combinations emit byte-identical recommendations.

    A tiny promote threshold guarantees the burst target actually crosses
    the ring promotion boundary mid-stream.
    """
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=200, mean_followings=8.0, seed=seed)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=200,
            duration=300.0,
            background_rate=1.0,
            bursts=(
                BurstSpec(
                    target=199, start=30.0, duration=80.0, num_actors=burst_actors
                ),
            ),
            seed=seed,
        )
    )
    params = DetectionParams(k=2, tau=400.0, max_trigger_sources=8)
    reference = None
    for s_backend, d_backend in BACKEND_MATRIX:
        engine = MotifEngine.from_snapshot(
            snapshot,
            params,
            max_edges_per_target=12,
            track_latency=False,
            s_backend=s_backend,
            d_backend=d_backend,
        )
        engine.dynamic_index.promote_threshold = 5
        recs = []
        for batch_size in (1,):
            recs = engine.process_stream(events, batch_size=batch_size)
        batched = MotifEngine.from_snapshot(
            snapshot,
            params,
            max_edges_per_target=12,
            track_latency=False,
            s_backend=s_backend,
            d_backend=d_backend,
        )
        batched.dynamic_index.promote_threshold = 5
        batched_recs = batched.process_stream(events, batch_size=17)
        assert batched_recs == recs, (s_backend, d_backend)
        assert [(r.via, r.action) for r in batched_recs] == [
            (r.via, r.action) for r in recs
        ]
        if reference is None:
            reference = recs
        else:
            assert recs == reference, (s_backend, d_backend)
            assert [(r.via, r.action) for r in recs] == [
                (r.via, r.action) for r in reference
            ]
