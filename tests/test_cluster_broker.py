"""Unit tests for the broker's fan-out / gather coordination."""

import pytest

from repro.cluster import Broker, Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.core.batch import EventBatch

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


@pytest.fixture
def cluster(figure1_snapshot):
    return Cluster.build(
        figure1_snapshot,
        PARAMS,
        ClusterConfig(num_partitions=3, replication_factor=2),
    )


class TestBrokerStats:
    def test_fan_out_counts(self, cluster):
        broker = cluster.broker
        broker.process_event(EdgeEvent(0.0, B1, C2))
        broker.process_event(EdgeEvent(1.0, B2, C2))
        assert broker.stats.events_routed == 2
        assert broker.stats.fan_out_calls == 6  # 2 events x 3 partitions
        assert broker.stats.gather_results == 1  # the single A2 candidate

    def test_lost_partition_counted(self, cluster):
        broker = cluster.broker
        for replica_set in cluster.replica_sets[:1]:
            replica_set.mark_down(0)
            replica_set.mark_down(1)
        broker.process_event(EdgeEvent(0.0, B1, C2))
        assert broker.stats.partitions_lost_events == 1
        # The other two partitions still consumed the event.
        assert cluster.replica_sets[1].replicas[0].events_processed() == 1

    def test_empty_replica_sets_rejected(self):
        with pytest.raises(ValueError):
            Broker([])


class TestWorkerDeathMidStream:
    """A dead partition worker must cost exactly its events, nothing more.

    The broker's contract under the worker transport mirrors the
    all-replicas-down path: the dead partition's events are counted in
    ``partitions_lost_events`` and the topology keeps running on the
    healthy partitions.
    """

    @pytest.fixture
    def process_cluster(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, transport="process"),
        )
        yield cluster
        cluster.close()

    @staticmethod
    def _batch(start: float, n: int) -> EventBatch:
        events = [EdgeEvent(start + i, B1 if i % 2 else B2, C2) for i in range(n)]
        return EventBatch.from_events(events)

    def test_dead_worker_counts_lost_events_and_cluster_keeps_running(
        self, process_cluster
    ):
        broker = process_cluster.broker
        transport = process_cluster.transport
        broker.process_batch(self._batch(0.0, 4))
        assert broker.stats.partitions_lost_events == 0

        # Kill one worker outright (a crashed machine, not a clean stop).
        victim = transport._workers[0]
        victim.process.terminate()
        victim.process.join(timeout=5.0)

        grouped, _latency = broker.process_batch(self._batch(10.0, 6))
        assert len(grouped) == 6
        assert broker.stats.partitions_lost_events == 6
        assert transport.workers_alive() == 2

        # The healthy partitions keep serving subsequent batches, and the
        # dead one keeps being charged without being retried.
        broker.process_batch(self._batch(20.0, 5))
        assert broker.stats.partitions_lost_events == 11
        health = {p.partition_id: p for p in transport.health()}
        assert not health[victim.key].worker_alive
        alive = [p for p in health.values() if p.worker_alive]
        assert len(alive) == 2
        for partition in alive:
            assert partition.replicas[0].events_processed == 15

    def test_dead_worker_mid_pipeline_loses_only_its_partition(
        self, process_cluster
    ):
        broker = process_cluster.broker
        transport = process_cluster.transport
        # Two batches in flight, then the worker dies before the gathers.
        broker.submit_batch(self._batch(0.0, 3))
        broker.submit_batch(self._batch(5.0, 3))
        victim = transport._workers[1]
        victim.process.terminate()
        victim.process.join(timeout=5.0)
        broker.gather_batch()
        broker.gather_batch()
        # The victim may have processed 0, 1, or 2 of the in-flight batches
        # before dying; whatever it missed is charged, nothing else is.
        assert broker.stats.partitions_lost_events in (0, 3, 6)
        grouped, _ = broker.process_batch(self._batch(10.0, 2))
        assert len(grouped) == 2
        assert transport.workers_alive() == 2

    def test_recommendations_from_surviving_partitions_still_flow(
        self, figure1_snapshot
    ):
        with Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, transport="process"),
        ) as cluster:
            owner = cluster.partitioner.partition_of(A2)
            victim_id = (owner + 1) % 3  # does NOT own the only recipient
            victim = next(
                w
                for w in cluster.transport._workers
                if w.key == victim_id
            )
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            recs = cluster.process_stream(
                [EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)], batch_size=2
            )
            assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]


class TestBrokerQueries:
    def test_query_audience_skips_dead_partitions(self, cluster):
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        owner = cluster.partitioner.partition_of(A2)
        # Kill a partition that does NOT own A2.
        victim = (owner + 1) % 3
        cluster.replica_sets[victim].mark_down(0)
        cluster.replica_sets[victim].mark_down(1)
        audience, _latency = cluster.broker.query_audience(C2, now=2.0)
        assert audience == [A2]

    def test_query_audience_loses_dead_owner(self, cluster):
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        owner = cluster.partitioner.partition_of(A2)
        cluster.replica_sets[owner].mark_down(0)
        cluster.replica_sets[owner].mark_down(1)
        audience, _latency = cluster.broker.query_audience(C2, now=2.0)
        assert audience == []  # availability over completeness

    def test_gather_latency_is_slowest_partition(self, figure1_snapshot):
        from repro.cluster.rpc import SimulatedChannel

        def slow_channel(p, r):
            return SimulatedChannel(
                f"p{p}/r{r}", latency_model=lambda p=p: 0.001 * (p + 1)
            )

        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3),
            channel_factory=slow_channel,
        )
        _recs, latency = cluster.broker.process_event(EdgeEvent(0.0, B1, C2))
        assert latency == pytest.approx(0.003)  # partition 2 is slowest
