"""Unit tests for the broker's fan-out / gather coordination."""

import pytest

from repro.cluster import Broker, Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


@pytest.fixture
def cluster(figure1_snapshot):
    return Cluster.build(
        figure1_snapshot,
        PARAMS,
        ClusterConfig(num_partitions=3, replication_factor=2),
    )


class TestBrokerStats:
    def test_fan_out_counts(self, cluster):
        broker = cluster.broker
        broker.process_event(EdgeEvent(0.0, B1, C2))
        broker.process_event(EdgeEvent(1.0, B2, C2))
        assert broker.stats.events_routed == 2
        assert broker.stats.fan_out_calls == 6  # 2 events x 3 partitions
        assert broker.stats.gather_results == 1  # the single A2 candidate

    def test_lost_partition_counted(self, cluster):
        broker = cluster.broker
        for replica_set in cluster.replica_sets[:1]:
            replica_set.mark_down(0)
            replica_set.mark_down(1)
        broker.process_event(EdgeEvent(0.0, B1, C2))
        assert broker.stats.partitions_lost_events == 1
        # The other two partitions still consumed the event.
        assert cluster.replica_sets[1].replicas[0].events_processed() == 1

    def test_empty_replica_sets_rejected(self):
        with pytest.raises(ValueError):
            Broker([])


class TestBrokerQueries:
    def test_query_audience_skips_dead_partitions(self, cluster):
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        owner = cluster.partitioner.partition_of(A2)
        # Kill a partition that does NOT own A2.
        victim = (owner + 1) % 3
        cluster.replica_sets[victim].mark_down(0)
        cluster.replica_sets[victim].mark_down(1)
        audience, _latency = cluster.broker.query_audience(C2, now=2.0)
        assert audience == [A2]

    def test_query_audience_loses_dead_owner(self, cluster):
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B2, C2))
        owner = cluster.partitioner.partition_of(A2)
        cluster.replica_sets[owner].mark_down(0)
        cluster.replica_sets[owner].mark_down(1)
        audience, _latency = cluster.broker.query_audience(C2, now=2.0)
        assert audience == []  # availability over completeness

    def test_gather_latency_is_slowest_partition(self, figure1_snapshot):
        from repro.cluster.rpc import SimulatedChannel

        def slow_channel(p, r):
            return SimulatedChannel(
                f"p{p}/r{r}", latency_model=lambda p=p: 0.001 * (p + 1)
            )

        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3),
            channel_factory=slow_channel,
        )
        _recs, latency = cluster.broker.process_event(EdgeEvent(0.0, B1, C2))
        assert latency == pytest.approx(0.003)  # partition 2 is slowest
