"""Unit tests for latency breakdowns and funnel counters."""

import pytest

from repro.sim.metrics import FunnelCounter, LatencyBreakdown


class TestLatencyBreakdown:
    def test_stage_registration_lazy(self):
        breakdown = LatencyBreakdown()
        assert breakdown.stages() == []
        breakdown.record("queue:firehose", 2.0)
        breakdown.record("detection", 0.002)
        assert breakdown.stages() == ["queue:firehose", "detection"]

    def test_share_of_total(self):
        breakdown = LatencyBreakdown()
        for _ in range(10):
            breakdown.record("queue", 9.0)
            breakdown.record("detection", 1.0)
            breakdown.record_total(10.0)
        assert breakdown.share_of_total("queue") == pytest.approx(0.9)
        assert breakdown.share_of_total("detection") == pytest.approx(0.1)

    def test_share_requires_totals(self):
        breakdown = LatencyBreakdown()
        breakdown.record("queue", 1.0)
        with pytest.raises(ValueError):
            breakdown.share_of_total("queue")

    def test_summary_structure(self):
        breakdown = LatencyBreakdown()
        breakdown.record("queue", 1.0)
        breakdown.record_total(2.0)
        summary = breakdown.summary()
        assert set(summary) == {"total", "queue"}
        assert summary["queue"]["count"] == 1
        assert summary["total"]["p50"] == 2.0

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            LatencyBreakdown().stage("nope")


class TestRecentWindow:
    """The controller's tick-to-tick p99 signal over record_total."""

    def test_empty_window_is_none(self):
        # None (nothing delivered since the last tick) must be
        # distinguishable from 0.0 — it never counts as an SLO breach.
        breakdown = LatencyBreakdown()
        assert breakdown.recent_p99() is None

    def test_p99_over_samples_since_last_drain(self):
        breakdown = LatencyBreakdown()
        for value in (1.0, 2.0, 3.0, 4.0):
            breakdown.record_total(value)
        assert breakdown.recent_p99() == pytest.approx(4.0, rel=0.05)

    def test_drain_resets_the_window(self):
        breakdown = LatencyBreakdown()
        breakdown.record_total(10.0)
        assert breakdown.recent_p99() is not None
        assert breakdown.recent_p99() is None  # window consumed
        breakdown.record_total(2.0)
        assert breakdown.recent_p99() == pytest.approx(2.0)

    def test_window_is_bounded(self):
        breakdown = LatencyBreakdown()
        for _ in range(LatencyBreakdown.RECENT_WINDOW * 2):
            breakdown.record_total(1.0)
        assert len(breakdown.drain_recent_totals()) == LatencyBreakdown.RECENT_WINDOW

    def test_total_percentiles_unaffected_by_drain(self):
        breakdown = LatencyBreakdown()
        for value in (1.0, 2.0, 3.0):
            breakdown.record_total(value)
        breakdown.recent_p99()
        assert breakdown.total.percentile(50) == 2.0


class TestFunnelCounter:
    def test_counts_and_rows(self):
        funnel = FunnelCounter()
        funnel.count("raw", 1_000)
        funnel.count("passed:dedup", 100)
        funnel.count("delivered", 10)
        assert funnel.get("raw") == 1_000
        assert funnel.as_rows()[0] == ("raw", 1_000)

    def test_reduction_ratio(self):
        funnel = FunnelCounter()
        funnel.count("raw", 5_000)
        funnel.count("delivered", 5)
        assert funnel.reduction_ratio() == 1_000.0

    def test_reduction_ratio_no_survivors(self):
        funnel = FunnelCounter()
        funnel.count("raw", 10)
        assert funnel.reduction_ratio() == float("inf")

    def test_survival_rate(self):
        funnel = FunnelCounter()
        funnel.count("raw", 200)
        funnel.count("delivered", 50)
        assert funnel.survival_rate("raw", "delivered") == 0.25
        assert funnel.survival_rate("missing", "delivered") == 0.0

    def test_incremental_counting(self):
        funnel = FunnelCounter()
        for _ in range(5):
            funnel.count("raw")
        assert funnel.get("raw") == 5
