"""Unit tests for graph snapshots and the offline S bulk-load path."""

import pytest

from repro.graph.ids import Edge, TimestampedEdge
from repro.graph.snapshot import GraphSnapshot, build_follower_snapshot

EDGES = [(0, 10), (1, 10), (1, 11), (2, 11)]


class TestIds:
    def test_edge_validation(self):
        Edge(0, 1)
        with pytest.raises(ValueError):
            Edge(-1, 0)
        with pytest.raises(ValueError):
            TimestampedEdge(0.0, 0, -2)

    def test_edge_reversed(self):
        assert Edge(1, 2).reversed() == Edge(2, 1)

    def test_timestamped_edge_accessors(self):
        edge = TimestampedEdge(5.0, 1, 2)
        assert edge.edge == Edge(1, 2)
        assert edge.timestamp == 5.0

    def test_ordering_by_timestamp(self):
        early = TimestampedEdge(1.0, 9, 9)
        late = TimestampedEdge(2.0, 0, 0)
        assert early < late


class TestSnapshot:
    def test_views(self):
        snap = GraphSnapshot.from_edges(EDGES, num_nodes=12)
        assert snap.num_users == 12
        assert snap.num_edges == 4
        assert list(snap.followings_of(1)) == [10, 11]
        assert sorted(snap.follow_edges()) == sorted(EDGES)

    def test_weights_default_zero(self):
        snap = GraphSnapshot.from_edges(EDGES, edge_weights={(0, 10): 0.7})
        assert snap.weight_of(0, 10) == 0.7
        assert snap.weight_of(1, 10) == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        weights = {(0, 10): 0.5, (2, 11): 0.25}
        snap = GraphSnapshot.from_edges(EDGES, num_nodes=12, edge_weights=weights)
        path = tmp_path / "snapshot.npz"
        snap.save(path)
        loaded = GraphSnapshot.load(path)
        assert loaded.num_users == snap.num_users
        assert sorted(loaded.follow_edges()) == sorted(snap.follow_edges())
        assert loaded.edge_weights == weights

    def test_save_load_without_weights(self, tmp_path):
        snap = GraphSnapshot.from_edges(EDGES)
        path = tmp_path / "plain.npz"
        snap.save(path)
        loaded = GraphSnapshot.load(path)
        assert loaded.edge_weights == {}
        assert loaded.num_edges == 4


class TestBuildFollowerSnapshot:
    def test_inverts_to_s_structure(self):
        snap = GraphSnapshot.from_edges(EDGES)
        s = build_follower_snapshot(snap)
        assert list(s.followers_of(10)) == [0, 1]
        assert list(s.followers_of(11)) == [1, 2]

    def test_influencer_limit_uses_snapshot_weights(self):
        # User 1 follows 10 (weight .9) and 11 (weight .1); cap 1 keeps 10.
        weights = {(1, 10): 0.9, (1, 11): 0.1}
        snap = GraphSnapshot.from_edges(EDGES, edge_weights=weights)
        s = build_follower_snapshot(snap, influencer_limit=1)
        assert 1 in s.followers_of(10)
        assert 1 not in s.followers_of(11)

    def test_partition_predicate(self):
        snap = GraphSnapshot.from_edges(EDGES)
        s = build_follower_snapshot(snap, include_source=lambda a: a == 2)
        assert list(s.followers_of(11)) == [2]
        assert list(s.followers_of(10)) == []
