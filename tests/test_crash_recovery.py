"""Crash-kill-restart equivalence: SIGKILL mid-run, recover, compare.

The durable tier's headline guarantee, pinned end to end: a topology
running with a WAL (and periodic incremental snapshots) is SIGKILLed at
a randomized point mid-stream — whole process group, so worker-hosted
partitions die with their broker, like a machine failure — and recovery
must then reproduce the uninterrupted run's delivered multiset exactly
for every event the WAL retained (a crash may legitimately lose only
the un-flushed tail).  Runs use deterministic zero-delay queue hops
(``--hop-median 0``), the regime in which delivery is bit-for-bit
reproducible, and are parametrized over all three broker transports.

Warm-start (latest snapshot + WAL tail) and cold-start (full WAL
replay) must also agree with *each other* row for row — the proof that
snapshots are a pure replay accelerator, never a semantic input.
"""

import csv
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src")

SEED = 3
PARTITIONS = 2
SIM_ARGS = [
    "--partitions",
    str(PARTITIONS),
    "--batch-size",
    "4",
    "--hop-median",
    "0",
    "--seed",
    str(SEED),
]


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """Graph, stream, and the uninterrupted run's delivered ledger."""
    base = tmp_path_factory.mktemp("crash-workload")
    graph = base / "g.npz"
    stream = base / "s.csv"
    reference = base / "ref.csv"
    assert main(
        ["generate-graph", str(graph), "--users", "250", "--seed", str(SEED)]
    ) == 0
    assert main(
        [
            "generate-stream",
            str(stream),
            "--users",
            "250",
            "--duration",
            "100",
            "--rate",
            "5",
            "--seed",
            str(SEED),
        ]
    ) == 0
    assert main(
        ["simulate", str(graph), str(stream), *SIM_ARGS]
        + ["--dump-delivered", str(reference)]
    ) == 0
    return graph, stream, reference


def _wal_bytes(root: Path) -> int:
    wal = root / "wal"
    if not wal.exists():
        return 0
    return sum(p.stat().st_size for p in wal.glob("wal-*.log"))


def _read_rows(path: Path) -> list[tuple]:
    """Sorted (recipient, candidate, created_at) triples of a ledger CSV.

    ``delivered_at`` is deliberately excluded: it embeds *measured*
    detection wall-clock mapped into virtual time, so it legitimately
    differs run to run (and between live delivery and replay).  The
    equivalence contract is the triple multiset.
    """
    with open(path, newline="") as handle:
        return sorted(tuple(row[:3]) for row in csv.reader(handle))


def _run_and_kill(cmd: list[str], root: Path, kill_after_bytes: int) -> None:
    """Run *cmd* in its own process group; SIGKILL it once the WAL grows.

    Killing the group takes down worker-hosted partitions together with
    the broker — a whole-machine failure, the case recovery exists for.
    SIGKILL specifically: no handlers, no flushes, no atexit.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd,
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                # Finished before the kill landed: recovery must then
                # reproduce the complete run — still a valid (if easier)
                # equivalence check.
                return
            if _wal_bytes(root) >= kill_after_bytes:
                break
            time.sleep(0.005)
        else:
            pytest.fail("crash run neither produced WAL bytes nor exited")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test bugs
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)


@pytest.mark.parametrize("transport", ["inprocess", "process", "shm"])
def test_sigkill_recover_equivalence(workload, tmp_path, transport):
    graph, stream, reference = workload
    if transport == "shm" and not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm")
    root = tmp_path / f"root-{transport}"
    # Randomized (but reproducible) kill point, different per transport;
    # the reference run's WAL-free ledger has ~500 events -> the full
    # log lands around 70-80 KiB, so this spans early-to-late kills.
    kill_after = random.Random(f"{SEED}-{transport}").randrange(4_000, 45_000)
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "simulate",
        str(graph),
        str(stream),
        *SIM_ARGS,
        "--transport",
        transport,
        "--wal-dir",
        str(root),
        "--snapshot-interval",
        "15",
        "--no-wal-gc",
        "--wal-fsync-every",
        "8",
        "--wal-throttle",
        "0.004",
    ]
    _run_and_kill(cmd, root, kill_after)
    assert _wal_bytes(root) > 0

    # Warm-start recovery (snapshot + WAL tail) must match the
    # uninterrupted reference on every event the WAL retained.
    warm = tmp_path / f"warm-{transport}.csv"
    assert main(
        [
            "recover",
            str(root),
            "--verify-prefix",
            str(reference),
            "--dump-delivered",
            str(warm),
        ]
    ) == 0

    # Cold-start (pure replay, snapshots ignored) must match it too...
    cold = tmp_path / f"cold-{transport}.csv"
    assert main(
        [
            "recover",
            str(root),
            "--ignore-snapshots",
            "--verify-prefix",
            str(reference),
            "--dump-delivered",
            str(cold),
        ]
    ) == 0

    # ...and the two recovered ledgers must be identical row for row:
    # snapshots accelerate replay, they never change its result.
    assert _read_rows(warm) == _read_rows(cold)


def test_recovered_prefix_is_nonempty_and_bounded(workload, tmp_path):
    """Sanity on the fixture contract: the verifier's universe works.

    An uninterrupted WAL run recovers its complete ledger (the prefix
    restriction drops nothing), so equivalence checking is exact — the
    crash tests above then only ever weaken it by the lost tail.
    """
    graph, stream, reference = workload
    root = tmp_path / "root-full"
    assert main(
        [
            "simulate",
            str(graph),
            str(stream),
            *SIM_ARGS,
            "--wal-dir",
            str(root),
            "--snapshot-interval",
            "15",
            "--no-wal-gc",
        ]
    ) == 0
    recovered = tmp_path / "recovered.csv"
    assert main(
        [
            "recover",
            str(root),
            "--verify-prefix",
            str(reference),
            "--dump-delivered",
            str(recovered),
        ]
    ) == 0
    assert _read_rows(recovered) == _read_rows(reference)
