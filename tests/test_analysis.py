"""Unit tests for graph-structure analysis."""

import math

import numpy as np
import pytest

from repro.analysis import (
    analyze_structure,
    degree_histogram,
    estimate_power_law_exponent,
    reciprocity,
    two_hop_statistics,
)
from repro.gen import TwitterGraphConfig, generate_follow_graph
from repro.graph import CsrGraph, GraphSnapshot


class TestDegreeHistogram:
    def test_counts(self):
        histogram = degree_histogram(np.array([0, 1, 1, 3, 3, 3]))
        assert histogram == {0: 1, 1: 2, 3: 3}

    def test_empty(self):
        assert degree_histogram(np.array([], dtype=np.int64)) == {}


class TestPowerLawExponent:
    def test_recovers_known_exponent(self):
        # Sample from a discrete Pareto with alpha = 2.5.
        rng = np.random.default_rng(3)
        u = rng.random(50_000)
        degrees = np.floor(5 * (1 - u) ** (-1 / 1.5)).astype(np.int64)
        alpha = estimate_power_law_exponent(degrees, d_min=5)
        assert alpha == pytest.approx(2.5, abs=0.15)

    def test_insufficient_tail_is_nan(self):
        assert math.isnan(estimate_power_law_exponent(np.array([1, 2, 3])))

    def test_dmin_validation(self):
        with pytest.raises(ValueError):
            estimate_power_law_exponent(np.array([5, 6, 7]), d_min=0)


class TestReciprocity:
    def test_fully_mutual(self):
        g = CsrGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
        assert reciprocity(g) == 1.0

    def test_no_mutual(self):
        g = CsrGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert reciprocity(g) == 0.0

    def test_half_mutual(self):
        g = CsrGraph.from_edges([(0, 1), (1, 0), (0, 2), (0, 3)])
        assert reciprocity(g) == 0.5

    def test_empty_graph(self):
        assert reciprocity(CsrGraph.from_edges([], num_nodes=3)) == 0.0


class TestTwoHopStatistics:
    def test_exact_small_graph(self):
        # 0 -> {1, 2}; 1 -> {3}; 2 -> {3, 4} => two-hop(0) = {3, 4}.
        snap = GraphSnapshot.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)], num_nodes=5
        )
        stats = two_hop_statistics(snap)
        assert stats["count"] == 5
        assert stats["max"] == 2.0

    def test_sampling(self):
        snap = GraphSnapshot.from_edges([(i, (i + 1) % 10) for i in range(10)])
        stats = two_hop_statistics(snap, sample_every=2)
        assert stats["count"] == 5

    def test_invalid_sampling(self):
        snap = GraphSnapshot.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            two_hop_statistics(snap, sample_every=0)


class TestAnalyzeStructure:
    def test_synthetic_graph_fingerprint(self):
        snapshot = generate_follow_graph(
            TwitterGraphConfig(num_users=2_000, mean_followings=15.0, seed=11)
        )
        fingerprint = analyze_structure(snapshot)
        assert fingerprint.num_users == 2_000
        assert fingerprint.mean_out_degree == pytest.approx(15.0, rel=0.4)
        # Twitter-like skew: hubs exist on the in-degree side.
        assert fingerprint.max_in_degree > 20 * fingerprint.mean_out_degree
        # Heavy-tailed in-degree: a finite positive tail exponent.
        assert 1.2 < fingerprint.in_degree_exponent < 4.0
        # Zipf target choice without follow-backs: low reciprocity
        # (the "information network" end of ref [7]'s spectrum).
        assert fingerprint.reciprocity < 0.2
        assert fingerprint.two_hop_mean > fingerprint.mean_out_degree

    def test_describe_renders(self):
        snapshot = generate_follow_graph(
            TwitterGraphConfig(num_users=300, seed=2)
        )
        text = analyze_structure(snapshot).describe()
        assert "reciprocity" in text and "two-hop" in text
