"""Unit tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.5, "x")
        require_positive(3, "x")

    @pytest.mark.parametrize("value", [0, 0.0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        require_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_non_negative(-1e-9, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="probability"):
            require_probability(value, "p")


class TestRequireType:
    def test_accepts_instance(self):
        require_type(3, int, "n")
        require_type("s", (int, str), "n")

    def test_rejects_wrong_type_with_names(self):
        with pytest.raises(TypeError, match="n must be int, got str"):
            require_type("3", int, "n")

    def test_union_message_lists_alternatives(self):
        with pytest.raises(TypeError, match="int | float"):
            require_type("3", (int, float), "n")
