"""Sharded delivery equivalence: recipient-hash shards must deliver the
same multiset (and summed funnel counts) as one unsharded funnel.

Sharding is semantics-preserving because every stateful funnel stage is
recipient-keyed; these tests enforce it for both transports, across
shard counts, and across repeated windows (stateful dedup/fatigue carry
over between offers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recommendation import (
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.cluster import shm_available
from repro.delivery import (
    DedupFilter,
    DeliveryPipeline,
    FatigueFilter,
    ShardedDeliveryPipeline,
    WakingHoursFilter,
    split_batch_by_shard,
)
from repro.util.hashing import splitmix64

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this host"
)

#: Worker-hosted shard transports under fault-tolerance tests.
WORKER_TRANSPORTS = ["process", pytest.param("shm", marks=needs_shm)]


def _production_trio(_shard: int) -> DeliveryPipeline:
    return DeliveryPipeline(
        filters=[DedupFilter(), WakingHoursFilter(), FatigueFilter()]
    )


def _random_batches(seed: int, windows: int = 3) -> list[RecommendationBatch]:
    rng = np.random.default_rng(seed)
    batches = []
    for w in range(windows):
        groups = []
        for t in range(25):
            n = int(rng.integers(1, 40))
            groups.append(
                RecommendationGroup(
                    rng.integers(0, 60, n).astype(np.int64),
                    candidate=int(rng.integers(100, 112)),
                    created_at=float(w * 1000 + t),
                    via=tuple(rng.integers(0, 50, 3).tolist()),
                )
            )
        batches.append(RecommendationBatch(groups))
    return batches


def _pairs(notifications):
    return sorted(
        (n.recipient, n.recommendation.candidate, n.delivered_at)
        for n in notifications
    )


class TestSplitBatchByShard:
    def test_partition_is_exhaustive_and_hash_stable(self):
        batches = _random_batches(seed=1, windows=1)
        shards = split_batch_by_shard(batches[0], 4)
        assert sum(len(s) for s in shards) == len(batches[0])
        for shard_id, shard_batch in enumerate(shards):
            for rec in shard_batch:
                assert splitmix64(rec.recipient) % 4 == shard_id

    def test_single_shard_reuses_groups(self):
        batch = _random_batches(seed=2, windows=1)[0]
        [only] = split_batch_by_shard(batch, 1)
        assert only.groups == batch.groups

    def test_metadata_shared_not_copied(self):
        group = RecommendationGroup(
            np.arange(64, dtype=np.int64), candidate=7, created_at=1.0,
            via=(1, 2, 3),
        )
        shards = split_batch_by_shard(RecommendationBatch([group]), 2)
        for shard_batch in shards:
            for g in shard_batch.groups:
                assert g.candidate == 7
                assert g.via == (1, 2, 3)
                assert g.created_at == 1.0


@pytest.mark.parametrize(
    "transport",
    ["inprocess", "process", pytest.param("shm", marks=needs_shm)],
)
@pytest.mark.parametrize("num_shards", [1, 3, 8])
class TestShardedEquivalence:
    def test_multiset_and_funnel_match_unsharded(self, transport, num_shards):
        reference = _production_trio(0)
        sharded = ShardedDeliveryPipeline(
            num_shards, pipeline_factory=_production_trio, transport=transport
        )
        try:
            expected, got = [], []
            for w, batch in enumerate(_random_batches(seed=3)):
                now = 1_000.0 * w + 43_200.0  # midday: waking hours vary by tz
                expected.extend(reference.offer_batch(batch, now))
                got.extend(sharded.offer_batch(batch, now))
            assert _pairs(got) == _pairs(expected)
            assert sharded.funnel_totals() == reference.funnel.stages
            assert sharded.delivered_total() == reference.notifier.delivered_total
            assert sharded.reduction_ratio() == pytest.approx(
                reference.reduction_ratio()
            )
        finally:
            sharded.close()


class TestShardedScalarOffers:
    def test_offer_routes_to_owning_shard_state(self):
        sharded = ShardedDeliveryPipeline(
            4, pipeline_factory=lambda _s: DeliveryPipeline(filters=[DedupFilter()])
        )
        rec = Recommendation(recipient=5, candidate=9, created_at=0.0)
        assert sharded.offer(rec, now=0.0) is not None
        # Same pair inside the window: the owning shard remembers it.
        assert sharded.offer(rec, now=10.0) is None
        assert sharded.funnel_totals()["dropped:dedup"] == 1

    @pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
    def test_worker_transport_scalar_offer(self, transport):
        with ShardedDeliveryPipeline(
            2,
            pipeline_factory=lambda _s: DeliveryPipeline(filters=[DedupFilter()]),
            transport=transport,
        ) as sharded:
            rec = Recommendation(recipient=5, candidate=9, created_at=0.0)
            delivered = sharded.offer(rec, now=0.0)
            assert delivered is not None and delivered.recipient == 5
            assert sharded.offer(rec, now=10.0) is None

    def test_offer_all_matches_offer_batch(self):
        batch = _random_batches(seed=4, windows=1)[0]
        via_batch = ShardedDeliveryPipeline(3, pipeline_factory=_production_trio)
        via_boxed = ShardedDeliveryPipeline(3, pipeline_factory=_production_trio)
        now = 43_200.0
        a = via_batch.offer_batch(batch, now)
        b = via_boxed.offer_all(list(batch), now)
        assert _pairs(a) == _pairs(b)
        assert via_batch.funnel_totals() == via_boxed.funnel_totals()


class TestShardedFaultTolerance:
    @pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
    def test_dead_shard_worker_loses_only_its_recipients(self, transport):
        sharded = ShardedDeliveryPipeline(
            2,
            pipeline_factory=lambda _s: DeliveryPipeline(filters=[]),
            transport=transport,
        )
        try:
            victim = sharded._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            batch = _random_batches(seed=5, windows=1)[0]
            shards = split_batch_by_shard(batch, 2)
            delivered = sharded.offer_batch(batch, now=0.0)
            # Shard 1's recipients all delivered (no filters); shard 0 lost.
            assert len(delivered) == len(shards[1])
            assert sharded.notifications_lost_shards == len(shards[0])
            for notification in delivered:
                assert splitmix64(notification.recipient) % 2 == 1
        finally:
            sharded.close()

    @pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
    def test_dead_shard_history_stays_in_aggregates(self, transport):
        sharded = ShardedDeliveryPipeline(
            2,
            pipeline_factory=lambda _s: DeliveryPipeline(filters=[]),
            transport=transport,
        )
        try:
            batch = _random_batches(seed=6, windows=1)[0]
            delivered_before = len(sharded.offer_batch(batch, now=0.0))
            assert sharded.delivered_total() == delivered_before
            victim = sharded._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            # The dead shard's accumulated counts must not vanish from the
            # aggregates — they are served from the last reply's cache.
            assert sharded.delivered_total() == delivered_before
            assert sharded.funnel_totals().get("delivered") == delivered_before
        finally:
            sharded.close()

    @pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
    def test_close_is_idempotent(self, transport):
        sharded = ShardedDeliveryPipeline(2, transport=transport)
        sharded.close()
        sharded.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDeliveryPipeline(0)
        with pytest.raises(ValueError):
            ShardedDeliveryPipeline(2, transport="smoke-signals")


@needs_shm
class TestShardedShmWire:
    """shm-shard specifics: overflow fallback, telemetry, reclamation."""

    def test_slot_overflow_falls_back_to_pickle(self):
        reference = _production_trio(0)
        sharded = ShardedDeliveryPipeline(
            3,
            pipeline_factory=_production_trio,
            transport="shm",
            # 256-byte slots: recommendation/notification frames overflow
            # and ride the pickle lane — same multiset, counted fallback.
            shm_slot_bytes=256,
        )
        try:
            expected, got = [], []
            for w, batch in enumerate(_random_batches(seed=7)):
                now = 1_000.0 * w + 43_200.0
                expected.extend(reference.offer_batch(batch, now))
                got.extend(sharded.offer_batch(batch, now))
            assert _pairs(got) == _pairs(expected)
            stats = sharded.wire_stats()
            assert stats["frames_fallback"] > 0
            assert stats["fallback_rate"] > 0.0
        finally:
            sharded.close()

    def test_wire_stats_and_segment_reclamation(self):
        import os

        sharded = ShardedDeliveryPipeline(
            2, pipeline_factory=_production_trio, transport="shm"
        )
        names = list(sharded._segment_names)
        assert names and all(
            os.path.exists(f"/dev/shm/{name}") for name in names
        )
        batch = _random_batches(seed=8, windows=1)[0]
        sharded.offer_batch(batch, now=43_200.0)
        stats = sharded.wire_stats()
        assert stats["frames_shm"] > 0
        assert stats["frames_fallback"] == 0
        sharded.close()
        leaked = [
            name for name in names if os.path.exists(f"/dev/shm/{name}")
        ]
        assert leaked == []

    def test_serving_arena_segments_reclaimed_with_wire(self):
        import glob
        import os

        from repro.serving import ServingCacheConfig

        sharded = ShardedDeliveryPipeline(
            2,
            pipeline_factory=_production_trio,
            transport="shm",
            # Tiny capacity: the workers grow their tables, creating data
            # generations the parent never held a handle to.
            serving=ServingCacheConfig(k=2, capacity=8),
        )
        controls = [s.control_name for s in sharded.serving.specs]
        assert all(name in sharded._segment_names for name in controls)
        batch = _random_batches(seed=9, windows=1)[0]
        sharded.offer_batch(batch, now=43_200.0)
        # Replies gate on the worker's ingest, so the contents are there.
        assert sharded.serving.users_cached > 0
        sharded.close()
        leaked = [
            path
            for name in controls
            for path in glob.glob(f"/dev/shm/{name}*")
            if os.path.exists(path)
        ]
        assert leaked == []
