"""Unit tests for the CSR graph storage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import CsrGraph

EDGES = [(0, 1), (0, 2), (1, 2), (3, 0)]


class TestConstruction:
    def test_from_edges(self):
        g = CsrGraph.from_edges(EDGES)
        assert g.num_nodes == 4
        assert g.num_edges == 4
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []
        assert list(g.neighbors(3)) == [0]

    def test_duplicate_edges_collapsed(self):
        g = CsrGraph.from_edges([(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_neighbors_sorted_regardless_of_input_order(self):
        g = CsrGraph.from_edges([(0, 9), (0, 3), (0, 7)])
        assert list(g.neighbors(0)) == [3, 7, 9]

    def test_explicit_num_nodes_allows_isolated_tail(self):
        g = CsrGraph.from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10
        assert g.out_degree(9) == 0

    def test_num_nodes_too_small_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph.from_edges([(0, 5)], num_nodes=3)

    def test_empty_graph(self):
        g = CsrGraph.from_edges([], num_nodes=5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_malformed_csr_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 5], dtype=np.int64), np.array([1], np.int64))


class TestQueries:
    def test_out_degrees(self):
        g = CsrGraph.from_edges(EDGES)
        assert list(g.out_degrees()) == [2, 1, 0, 1]
        assert g.out_degree(0) == 2

    def test_has_edge(self):
        g = CsrGraph.from_edges(EDGES)
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)
        assert not g.has_edge(0, 3)

    def test_node_bounds_checked(self):
        g = CsrGraph.from_edges(EDGES)
        with pytest.raises(IndexError):
            g.neighbors(4)
        with pytest.raises(IndexError):
            g.out_degree(-1)

    def test_edges_iterates_in_order(self):
        g = CsrGraph.from_edges(EDGES)
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 2), (3, 0)]


class TestTranspose:
    def test_reverses_all_edges(self):
        g = CsrGraph.from_edges(EDGES)
        t = g.transposed()
        assert t.num_nodes == g.num_nodes
        assert t.num_edges == g.num_edges
        assert sorted(t.edges()) == sorted((b, a) for a, b in EDGES)

    def test_double_transpose_is_identity(self):
        g = CsrGraph.from_edges(EDGES)
        tt = g.transposed().transposed()
        assert list(tt.edges()) == list(g.edges())

    @given(
        st.sets(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60
        )
    )
    def test_transpose_edge_set_property(self, edge_set):
        g = CsrGraph.from_edges(edge_set, num_nodes=16)
        t = g.transposed()
        assert set(t.edges()) == {(b, a) for a, b in edge_set}
