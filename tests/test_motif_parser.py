"""Tests for the motif text syntax, including describe() round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import ActionType
from repro.motif import MOTIF_CATALOG, MotifParseError, parse_motif
from repro.motif.spec import EdgeKind

DIAMOND_TEXT = """
motif diamond:
  match  a -[static]-> b
  match  b -[dynamic, within 3600s, action=follow]-> c
  count  distinct b >= 3
  forbid a -[static]-> c
  emit   notify a about c
"""


class TestParsing:
    def test_diamond_text(self):
        spec = parse_motif(DIAMOND_TEXT)
        assert spec.name == "diamond"
        assert spec.vertices == ("a", "b", "c")
        assert spec.count_at_least == {"b": 3}
        assert spec.emit == ("a", "c")
        dynamic = spec.dynamic_edges()[0]
        assert dynamic.within == 3600.0
        assert dynamic.action is ActionType.FOLLOW
        assert len(spec.forbid) == 1

    def test_comments_and_blank_lines_ignored(self):
        text = "# the paper's motif\n\n" + DIAMOND_TEXT + "\n# trailing\n"
        assert parse_motif(text).name == "diamond"

    def test_action_optional(self):
        text = """
        motif any-action:
          match a -[static]-> b
          match b -[dynamic, within 60s]-> c
          count distinct b >= 2
          emit  notify a about c
        """
        spec = parse_motif(text)
        assert spec.dynamic_edges()[0].action is None

    def test_fractional_window(self):
        text = """
        motif quick:
          match a -[static]-> b
          match b -[dynamic, within 0.5s]-> c
          count distinct b >= 1
          emit  notify a about c
        """
        assert parse_motif(text).dynamic_edges()[0].within == 0.5

    def test_parsed_spec_compiles_and_runs(self):
        from repro.graph import DynamicEdgeIndex, StaticFollowerIndex
        from repro.motif import DeclarativeDetector
        from repro.core import EdgeEvent

        spec = parse_motif(DIAMOND_TEXT)  # k = 3
        follows = [(0, 3), (1, 3), (1, 4), (1, 7), (2, 4)]
        s = StaticFollowerIndex.from_follow_edges(follows)
        d = DynamicEdgeIndex(retention=3600.0)
        detector = DeclarativeDetector(spec, s, d, collect_statistics=False)
        detector.on_edge(EdgeEvent(0.0, 3, 6))
        detector.on_edge(EdgeEvent(1.0, 4, 6))
        recs = detector.on_edge(EdgeEvent(2.0, 7, 6))
        assert [r.recipient for r in recs] == [1]


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(MotifParseError, match="header"):
            parse_motif("match a -[static]-> b")

    def test_missing_emit(self):
        with pytest.raises(MotifParseError, match="emit"):
            parse_motif("motif m:\n  match a -[static]-> b")

    def test_bad_edge_syntax_reports_line(self):
        text = "motif m:\n  match a --> b\n  emit notify a about b"
        with pytest.raises(MotifParseError, match="line 2"):
            parse_motif(text)

    def test_unknown_clause(self):
        text = "motif m:\n  require a -[static]-> b\n  emit notify a about b"
        with pytest.raises(MotifParseError, match="unknown clause"):
            parse_motif(text)

    def test_unknown_action_lists_valid_ones(self):
        text = (
            "motif m:\n"
            "  match b -[dynamic, within 60s, action=like]-> c\n"
            "  emit notify b about c"
        )
        with pytest.raises(MotifParseError, match="retweet"):
            parse_motif(text)

    def test_bad_count_syntax(self):
        text = "motif m:\n  count b at least 3\n  emit notify a about b"
        with pytest.raises(MotifParseError, match="count"):
            parse_motif(text)

    def test_semantic_validation_still_applies(self):
        # Parses fine, but the emit recipient is undeclared -> MotifSpec
        # validation rejects it.
        text = "motif m:\n  match a -[static]-> b\n  emit notify z about b"
        with pytest.raises(ValueError, match="undeclared"):
            parse_motif(text)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(MOTIF_CATALOG))
    def test_catalog_specs_roundtrip(self, name):
        spec = MOTIF_CATALOG[name]()
        assert parse_motif(spec.describe()) == spec

    @given(
        k=st.integers(1, 5),
        tau=st.floats(1.0, 10_000.0),
        action=st.sampled_from(list(ActionType)),
    )
    def test_parameterised_diamond_roundtrips(self, k, tau, action):
        from repro.motif.spec import MotifSpec, PatternEdge

        spec = MotifSpec(
            name="prop",
            vertices=("a", "b", "c"),
            edges=(
                PatternEdge("a", "b", EdgeKind.STATIC),
                PatternEdge(
                    "b", "c", EdgeKind.DYNAMIC, within=tau, action=action
                ),
            ),
            count_at_least={"b": k},
            emit=("a", "c"),
        )
        reparsed = parse_motif(spec.describe())
        assert reparsed.count_at_least == spec.count_at_least
        assert reparsed.emit == spec.emit
        got = reparsed.dynamic_edges()[0]
        assert got.action is action
        assert got.within == pytest.approx(tau, rel=1e-5)
