"""Tests for D checkpointing and S hot-reload (periodic offline load)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.core import ActionType, DetectionParams, EdgeEvent, MotifEngine
from repro.core.checkpoint import load_dynamic_index, save_dynamic_index
from repro.graph import DynamicEdgeIndex, GraphSnapshot

from tests.conftest import A1, A2, A3, B1, B2, C2, FIGURE1_FOLLOWS

PARAMS = DetectionParams(k=2, tau=600.0)


class TestDynamicIndexCheckpoint:
    def test_roundtrip_preserves_queries(self, tmp_path):
        index = DynamicEdgeIndex(retention=100.0, max_edges_per_target=5)
        index.insert(1, 10, 5.0, action=ActionType.FOLLOW)
        index.insert(2, 10, 6.0, action=ActionType.RETWEET)
        index.insert(3, 11, 7.0)
        path = tmp_path / "d.npz"
        written = save_dynamic_index(index, path)
        assert written == 3

        restored = load_dynamic_index(path)
        assert restored.retention == 100.0
        assert restored.max_edges_per_target == 5
        assert restored.num_edges == 3
        got = restored.fresh_sources(10, now=10.0, tau=50.0)
        assert [(e.source, e.timestamp, e.action) for e in got] == [
            (1, 5.0, ActionType.FOLLOW),
            (2, 6.0, ActionType.RETWEET),
        ]

    def test_action_filter_survives_roundtrip(self, tmp_path):
        index = DynamicEdgeIndex(retention=100.0)
        index.insert(1, 10, 5.0, action=ActionType.RETWEET)
        index.insert(2, 10, 6.0, action=ActionType.FOLLOW)
        path = tmp_path / "d.npz"
        save_dynamic_index(index, path)
        restored = load_dynamic_index(path)
        retweets = restored.fresh_sources(
            10, now=10.0, tau=50.0, action=ActionType.RETWEET
        )
        assert [e.source for e in retweets] == [1]

    def test_empty_index_roundtrip(self, tmp_path):
        index = DynamicEdgeIndex(retention=10.0)
        path = tmp_path / "empty.npz"
        assert save_dynamic_index(index, path) == 0
        restored = load_dynamic_index(path)
        assert restored.num_edges == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10),
                st.integers(0, 5),
                st.floats(0, 100),
                st.sampled_from([None, ActionType.FOLLOW, ActionType.RETWEET]),
            ),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, inserts):
        import tempfile
        from pathlib import Path

        index = DynamicEdgeIndex(retention=1_000.0)
        for b, c, t, action in inserts:
            index.insert(b, c, t, action=action)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "d.npz"
            save_dynamic_index(index, path)
            restored = load_dynamic_index(path)
            assert restored.num_edges == index.num_edges
            for c in index.targets():
                want = index.fresh_sources(c, now=100.0, tau=1_000.0)
                got = restored.fresh_sources(c, now=100.0, tau=1_000.0)
                assert got == want

    def test_warm_started_detector_matches_original(self, tmp_path):
        """A replica restored from checkpoint serves the same results."""
        snapshot = GraphSnapshot.from_edges(FIGURE1_FOLLOWS, num_nodes=8)
        original = MotifEngine.from_snapshot(snapshot, PARAMS)
        original.process(EdgeEvent(0.0, B1, C2))

        path = tmp_path / "warm.npz"
        save_dynamic_index(original.dynamic_index, path)
        restored_index = load_dynamic_index(path)
        warm = MotifEngine.from_snapshot(snapshot, PARAMS)
        warm.dynamic_index.clone_state_from(restored_index)

        want = original.process(EdgeEvent(10.0, B2, C2))
        got = warm.process(EdgeEvent(10.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in got] == [
            (r.recipient, r.candidate) for r in want
        ]


class TestStaticReload:
    def test_engine_reload_changes_results(self, figure1_snapshot):
        engine = MotifEngine.from_snapshot(figure1_snapshot, PARAMS)
        engine.process(EdgeEvent(0.0, B1, C2))
        recs = engine.process(EdgeEvent(1.0, B2, C2))
        assert [r.recipient for r in recs] == [A2]

        # Offline recompute: A1 now follows B2 as well -> A1 qualifies too.
        new_snapshot = GraphSnapshot.from_edges(
            FIGURE1_FOLLOWS + [(A1, B2)], num_nodes=8
        )
        from repro.graph import build_follower_snapshot

        engine.reload_static_index(build_follower_snapshot(new_snapshot))
        recs = engine.process(EdgeEvent(2.0, 7, C2))  # third fresh B
        assert A1 in {r.recipient for r in recs}

    def test_reload_keeps_dynamic_state(self, figure1_engine):
        figure1_engine.process(EdgeEvent(0.0, B1, C2))
        from repro.graph import build_follower_snapshot

        snapshot = GraphSnapshot.from_edges(FIGURE1_FOLLOWS, num_nodes=8)
        figure1_engine.reload_static_index(build_follower_snapshot(snapshot))
        # D still remembers B1's edge: the diamond completes normally.
        recs = figure1_engine.process(EdgeEvent(1.0, B2, C2))
        assert [r.recipient for r in recs] == [A2]

    def test_declarative_detector_reloads(self, figure1_snapshot):
        from repro.graph import DynamicEdgeIndex, build_follower_snapshot
        from repro.motif import DeclarativeDetector, diamond_spec

        s = build_follower_snapshot(figure1_snapshot)
        d = DynamicEdgeIndex(retention=600.0)
        detector = DeclarativeDetector(
            diamond_spec(k=2, tau=600.0), s, d, inserts_edges=False
        )
        engine = MotifEngine(s, d, [detector])
        engine.process(EdgeEvent(0.0, B1, C2))
        new_snapshot = GraphSnapshot.from_edges(
            FIGURE1_FOLLOWS + [(A3, B1)], num_nodes=8
        )
        engine.reload_static_index(build_follower_snapshot(new_snapshot))
        recs = engine.process(EdgeEvent(1.0, B2, C2))
        assert {r.recipient for r in recs} == {A2, A3}

    def test_unreloadable_detector_rejected(self, figure1_snapshot):
        from repro.graph import DynamicEdgeIndex, build_follower_snapshot

        class OpaqueDetector:
            name = "opaque"

            def on_edge(self, event, now=None):
                return []

        s = build_follower_snapshot(figure1_snapshot)
        d = DynamicEdgeIndex(retention=600.0)
        engine = MotifEngine(s, d, [OpaqueDetector()])
        with pytest.raises(TypeError, match="rebind_static"):
            engine.reload_static_index(s)

    def test_cluster_rolling_reload(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, replication_factor=2),
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        new_snapshot = GraphSnapshot.from_edges(
            FIGURE1_FOLLOWS + [(A1, B2)], num_nodes=8
        )
        cluster.reload_snapshot(new_snapshot)
        recs = cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert {r.recipient for r in recs} == {A1, A2}
