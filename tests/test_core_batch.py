"""Unit tests for the columnar EventBatch and its helpers."""

import numpy as np
import pytest

from repro.core import ActionType, EdgeEvent, EventBatch, iter_event_batches
from repro.core.batch import ACTION_CODES
from repro.gen import StreamConfig, generate_event_batch, generate_event_stream


EVENTS = [
    EdgeEvent(1.0, 10, 20),
    EdgeEvent(2.0, 11, 21, ActionType.RETWEET),
    EdgeEvent(2.5, 12, 20, ActionType.FAVORITE),
    EdgeEvent(3.0, 13, 22),
]


class TestEventBatch:
    def test_from_events_roundtrip(self):
        batch = EventBatch.from_events(EVENTS)
        assert len(batch) == 4
        assert batch.to_events() == EVENTS
        assert [e.action for e in batch.to_events()] == [e.action for e in EVENTS]

    def test_columns_are_numpy(self):
        batch = EventBatch.from_events(EVENTS)
        assert batch.timestamps.dtype == np.float64
        assert batch.actors.dtype == np.int64
        assert batch.targets.dtype == np.int64
        assert batch.actions.dtype == np.uint8
        assert batch.actions.tolist() == [
            ACTION_CODES[e.action] for e in EVENTS
        ]

    def test_from_columns(self):
        batch = EventBatch([1.0, 2.0], [3, 4], [5, 6])
        assert batch.to_events() == [EdgeEvent(1.0, 3, 5), EdgeEvent(2.0, 4, 6)]
        assert all(e.action is ActionType.FOLLOW for e in batch.to_events())

    def test_from_columns_with_action_objects(self):
        batch = EventBatch(
            [1.0], [3], [5], [ActionType.RETWEET]
        )
        assert batch.to_events()[0].action is ActionType.RETWEET

    def test_validation_misaligned(self):
        with pytest.raises(ValueError, match="misaligned"):
            EventBatch([1.0, 2.0], [3], [5, 6])

    def test_validation_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventBatch([1.0], [-3], [5])

    def test_empty(self):
        batch = EventBatch.empty()
        assert len(batch) == 0
        assert batch.to_events() == []
        assert batch.distinct_target_runs() == []

    def test_slice_is_view(self):
        batch = EventBatch.from_events(EVENTS)
        view = batch.slice(1, 3)
        assert len(view) == 2
        assert view.to_events() == EVENTS[1:3]
        assert view.timestamps.base is not None  # numpy view, not a copy

    def test_distinct_target_runs_no_repeats(self):
        batch = EventBatch([1.0, 2.0, 3.0], [1, 2, 3], [7, 8, 9])
        assert batch.distinct_target_runs() == [(0, 3)]

    def test_distinct_target_runs_split_on_repeat(self):
        batch = EventBatch(
            [1.0, 2.0, 3.0, 4.0, 5.0], [1, 2, 3, 4, 5], [7, 8, 7, 7, 9]
        )
        runs = batch.distinct_target_runs()
        assert runs == [(0, 2), (2, 3), (3, 5)]
        # Within every run the targets are distinct, and the runs tile the
        # batch exactly.
        targets = batch.targets.tolist()
        assert [t for s, e in runs for t in targets[s:e]] == targets
        for start, stop in runs:
            run_targets = targets[start:stop]
            assert len(set(run_targets)) == len(run_targets)


class TestIterEventBatches:
    def test_chunking(self):
        batches = list(iter_event_batches(EVENTS, 3))
        assert [len(b) for b in batches] == [3, 1]
        assert [e for b in batches for e in b.to_events()] == EVENTS

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_event_batches(EVENTS, 0))


class TestGenerateEventBatch:
    def test_matches_object_stream(self):
        config = StreamConfig(
            num_users=500,
            duration=200.0,
            background_rate=5.0,
            diurnal_amplitude=0.4,
            seed=7,
        )
        from_objects = EventBatch.from_events(generate_event_stream(config))
        columnar = generate_event_batch(config)
        assert np.array_equal(columnar.timestamps, from_objects.timestamps)
        assert np.array_equal(columnar.actors, from_objects.actors)
        assert np.array_equal(columnar.targets, from_objects.targets)
        assert np.array_equal(columnar.actions, from_objects.actions)

    def test_matches_object_stream_with_bursts(self):
        from repro.gen import BurstSpec

        config = StreamConfig(
            num_users=500,
            duration=200.0,
            background_rate=3.0,
            bursts=(
                BurstSpec(
                    target=499,
                    start=50.0,
                    duration=30.0,
                    num_actors=20,
                    action=ActionType.RETWEET,
                ),
            ),
            seed=11,
        )
        from_objects = generate_event_stream(config)
        columnar = generate_event_batch(config)
        assert columnar.to_events() == from_objects
        assert [e.action for e in columnar.to_events()] == [
            e.action for e in from_objects
        ]
