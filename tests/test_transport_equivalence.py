"""Cross-transport equivalence: worker-process partitions must produce the
same recommendation multiset as the in-process simulation.

This is the transport layer's contract (docs/ARCHITECTURE.md): transports
change *where* partitions run, never *what* they compute.  Order may
differ across partitions (the gather is a concatenation in partition
order either way, but pipelined streams interleave), so equality is
asserted on the sorted multiset.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    InProcessTransport,
    SharedMemoryTransport,
    WorkerProcessTransport,
    shm_available,
)
from repro.core import DetectionParams
from repro.core.batch import EventBatch
from repro.gen import (
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)

PARAMS = DetectionParams(k=2, tau=600.0)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this host"
)

#: Both worker-hosted transports must satisfy the same contract; shm
#: cases skip cleanly on hosts without /dev/shm.
WORKER_TRANSPORTS = ["process", pytest.param("shm", marks=needs_shm)]


def _multiset(recommendations):
    return sorted(
        (r.created_at, r.recipient, r.candidate, r.via)
        for r in recommendations
    )


@pytest.fixture(scope="module")
def workload():
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=1_500, mean_followings=12.0, seed=11)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=1_500, duration=150.0, background_rate=6.0, seed=11
        )
    )
    return snapshot, events


@pytest.fixture(scope="module")
def reference(workload):
    snapshot, events = workload
    cluster = Cluster.build(
        snapshot, PARAMS, ClusterConfig(num_partitions=3)
    )
    return _multiset(cluster.process_stream(events, batch_size=64))


@pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
class TestCrossTransportEquivalence:
    def test_worker_transport_matches_inprocess_batched(
        self, workload, reference, transport
    ):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, transport=transport),
        ) as cluster:
            got = _multiset(cluster.process_stream(events, batch_size=64))
        assert got == reference

    def test_worker_transport_matches_with_pipelining(
        self, workload, reference, transport
    ):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, transport=transport),
        ) as cluster:
            got = _multiset(
                cluster.process_stream(events, batch_size=64, pipeline_depth=4)
            )
        assert got == reference

    def test_worker_transport_matches_per_event_lane(
        self, workload, reference, transport
    ):
        snapshot, events = workload
        short = events[:200]
        inproc = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        expected = _multiset(inproc.process_stream(short))
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport=transport),
        ) as cluster:
            got = _multiset(cluster.process_stream(short))
        assert got == expected

    def test_worker_transport_matches_with_replication(
        self, workload, transport
    ):
        snapshot, events = workload
        short = events[:300]
        inproc = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, replication_factor=2),
        )
        expected = _multiset(inproc.process_stream(short, batch_size=32))
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(
                num_partitions=2, replication_factor=2, transport=transport
            ),
        ) as cluster:
            got = _multiset(cluster.process_stream(short, batch_size=32))
        assert got == expected


class TestTransportControlMessages:
    @pytest.fixture(params=WORKER_TRANSPORTS)
    def clusters(self, request, workload):
        snapshot, events = workload
        inproc = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        proc = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport=request.param),
        )
        yield inproc, proc, events
        proc.close()

    def test_query_audience_matches(self, clusters, workload):
        snapshot, _ = workload
        inproc, proc, events = clusters
        short = events[:300]
        inproc.process_stream(short, batch_size=32)
        proc.process_stream(short, batch_size=32)
        target = snapshot.num_users - 1
        now = short[-1].created_at + 1.0
        assert proc.query_audience(target, now) == inproc.query_audience(
            target, now
        )

    def test_health_reports_worker_side_progress(self, clusters):
        inproc, proc, events = clusters
        short = events[:100]
        proc.process_stream(short, batch_size=32)
        health = proc.transport.health()
        assert len(health) == 2
        for partition in health:
            assert partition.worker_alive
            # Full D replication: every partition consumed every event.
            assert partition.replicas[0].events_processed == len(short)
        # The parent's (forked, stale) replica copies never advanced.
        assert proc.transport.local_replica_sets is None

    def test_prune_runs_in_workers(self, clusters):
        inproc, proc, events = clusters
        short = events[:200]
        inproc.process_stream(short, batch_size=32)
        proc.process_stream(short, batch_size=32)
        assert proc.prune(float("inf")) == inproc.prune(float("inf"))

    def test_memory_report_covers_worker_partitions(self, clusters):
        _inproc, proc, events = clusters
        proc.process_stream(events[:100], batch_size=32)
        report = proc.memory_report()
        assert report["static_index"] > 0
        assert report["dynamic_index"] > 0

    def test_replica_sets_unavailable_under_worker_transport(self, clusters):
        _inproc, proc, _events = clusters
        with pytest.raises(RuntimeError, match="not local"):
            proc.replica_sets

    def test_close_is_idempotent(self, workload):
        snapshot, _ = workload
        cluster = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport="process"),
        )
        assert isinstance(cluster.transport, WorkerProcessTransport)
        cluster.close()
        cluster.close()

    def test_inprocess_transport_is_default(self, workload):
        snapshot, _ = workload
        cluster = Cluster.build(snapshot, PARAMS, ClusterConfig(num_partitions=2))
        assert isinstance(cluster.transport, InProcessTransport)
        assert cluster.transport.backlog() == 0
        cluster.close()  # no-op

    def test_config_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ClusterConfig(num_partitions=2, transport="carrier-pigeon")


@needs_shm
class TestSharedMemoryWire:
    """shm-transport specifics: fallback, death reclamation, stats."""

    def test_slot_overflow_falls_back_to_pickle(self, workload, reference):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            # 256-byte slots: no event-batch frame fits, so every batch
            # rides the pickle-fallback lane — same answers, counted.
            ClusterConfig(
                num_partitions=3, transport="shm", shm_slot_bytes=256
            ),
        ) as cluster:
            got = _multiset(cluster.process_stream(events, batch_size=64))
            stats = cluster.transport.wire_stats()
        assert got == reference
        assert stats["frames_fallback"] > 0
        assert stats["fallback_rate"] > 0.0

    def test_wire_stats_count_shm_frames(self, workload):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport="shm"),
        ) as cluster:
            cluster.process_stream(events[:300], batch_size=32)
            stats = cluster.transport.wire_stats()
        assert isinstance(cluster.transport, SharedMemoryTransport)
        assert stats["frames_shm"] > 0
        assert stats["frames_fallback"] == 0
        assert stats["fallback_rate"] == 0.0
        assert stats["slab_occupancy"] == 0  # every submit was gathered

    def test_worker_death_mid_pipeline_reclaims_segments(self, workload):
        import os

        snapshot, events = workload
        cluster = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3, transport="shm"),
        )
        transport = cluster.transport
        names = list(transport._segment_names)
        assert names and all(
            os.path.exists(f"/dev/shm/{name}") for name in names
        )
        cluster.broker.submit_batch(EventBatch.from_events(events[:20]))
        cluster.broker.submit_batch(EventBatch.from_events(events[20:40]))
        victim = transport._workers[0]
        victim.process.terminate()
        victim.process.join(timeout=5.0)
        cluster.broker.gather_batch()
        cluster.broker.gather_batch()
        # The victim is charged only what it missed; survivors keep serving.
        assert cluster.broker.stats.partitions_lost_events in (0, 20, 40)
        grouped, _ = cluster.broker.process_batch(
            EventBatch.from_events(events[40:50])
        )
        assert len(grouped) == 10
        assert transport.workers_alive() == 2
        cluster.close()
        leaked = [
            name for name in names if os.path.exists(f"/dev/shm/{name}")
        ]
        assert leaked == []

    def test_pipelining_bounded_by_ring_capacity(self, workload):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport="shm", shm_slots=2),
        ) as cluster:
            transport = cluster.transport
            batch = EventBatch.from_events(events[:5])
            transport.submit_batch(batch)
            transport.submit_batch(batch)
            with pytest.raises(ValueError, match="ring capacity"):
                transport.submit_batch(batch)
            transport.gather_batch()
            transport.gather_batch()


class TestPipelinedSubmitGather:
    def test_inprocess_supports_stacked_submits(self, workload, reference):
        snapshot, events = workload
        cluster = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=3)
        )
        got = _multiset(
            cluster.process_stream(events, batch_size=64, pipeline_depth=3)
        )
        assert got == reference

    def test_gather_without_submit_rejected(self, workload):
        snapshot, _ = workload
        cluster = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=1)
        )
        with pytest.raises(ValueError, match="gather without a submit"):
            cluster.broker.gather_batch()

    def test_worker_transport_tracks_pending_gathers(self, workload):
        snapshot, events = workload
        with Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport="process"),
        ) as cluster:
            batch = EventBatch.from_events(events[:10])
            cluster.broker.submit_batch(batch)
            cluster.broker.submit_batch(batch)
            assert cluster.transport.pending_gathers == 2
            with pytest.raises(ValueError, match="no outstanding"):
                cluster.transport.health()
            cluster.broker.gather_batch()
            cluster.broker.gather_batch()
            assert cluster.transport.pending_gathers == 0
            assert len(cluster.transport.health()) == 2
