"""Unit tests for the ops package: metrics, monitoring, admission control."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.ops import (
    AdmissionController,
    AdmissionPolicy,
    ClusterMonitor,
    MetricsRegistry,
    TokenBucket,
)

from tests.conftest import B1, C2

PARAMS = DetectionParams(k=2, tau=600.0)


class TestMetricsRegistry:
    def test_counter_identity_and_increment(self):
        registry = MetricsRegistry()
        a = registry.counter("events", partition="1")
        b = registry.counter("events", partition="1")
        assert a is b
        a.increment()
        a.increment(4)
        assert b.value == 5

    def test_counter_never_decrements(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").increment(-1)

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("events", partition="1").increment()
        registry.counter("events", partition="2").increment(2)
        snap = registry.snapshot()
        assert snap["events{partition=1}"] == 1
        assert snap["events{partition=2}"] == 2

    def test_label_order_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x", p="1", r="0")
        b = registry.counter("x", r="0", p="1")
        assert a is b

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("memory")
        gauge.set(100.0)
        gauge.add(-20.0)
        assert registry.snapshot()["memory"] == 80.0

    def test_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for v in (0.001, 0.002, 0.003):
            histogram.observe(v)
        snap = registry.snapshot()["latency"]
        assert snap["count"] == 3
        assert snap["p50"] == 0.002


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(1.0)  # 2 tokens refilled, capped at burst

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.try_acquire(0.0)
        bucket.try_acquire(100.0)
        assert bucket.available <= 2.0

    def test_clock_must_be_monotonic(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.try_acquire(5.0)
        with pytest.raises(ValueError, match="backwards"):
            bucket.try_acquire(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_steady_rate_admitted(self):
        controller = AdmissionController(rate=10.0, burst=5.0)
        admitted = sum(controller.admit(now=i * 0.1) for i in range(100))
        assert admitted == 100
        assert controller.shed_fraction() == 0.0

    def test_overload_shed_with_drop_policy(self):
        controller = AdmissionController(rate=10.0, burst=5.0)
        admitted = sum(controller.admit(now=0.0) for _ in range(100))
        assert admitted == 5  # only the burst credit
        assert controller.shed_fraction() == pytest.approx(0.95)

    def test_sample_policy_keeps_one_in_n(self):
        controller = AdmissionController(
            rate=10.0, burst=5.0,
            policy=AdmissionPolicy.SAMPLE, sample_one_in=10,
        )
        admitted = sum(controller.admit(now=0.0) for _ in range(105))
        assert admitted == 5 + 10  # burst + 1-in-10 of the 100 overflow

    def test_counters_published(self):
        registry = MetricsRegistry()
        controller = AdmissionController(rate=1.0, burst=1.0, registry=registry)
        controller.admit(0.0)
        controller.admit(0.0)
        snap = registry.snapshot()
        assert snap["admission_offered"] == 2
        assert snap["admission_admitted"] == 1
        assert snap["admission_shed"] == 1


class TestPressureShed:
    def test_forces_shedding_despite_token_budget(self):
        controller = AdmissionController(rate=1000.0, burst=1000.0)
        controller.set_pressure_shed(True)
        admitted = sum(controller.admit(now=0.0) for _ in range(20))
        assert admitted == 0  # budget is irrelevant while the rung is engaged

    def test_release_restores_admission(self):
        controller = AdmissionController(rate=1000.0, burst=1000.0)
        controller.set_pressure_shed(True)
        assert not controller.admit(now=0.0)
        controller.set_pressure_shed(False)
        assert controller.admit(now=1.0)
        assert not controller.pressure_shed

    def test_sample_policy_keeps_trace_while_shedding(self):
        # The 1-in-N trace is what keeps the recovery signal alive.
        controller = AdmissionController(
            rate=1000.0, burst=1000.0,
            policy=AdmissionPolicy.SAMPLE, sample_one_in=10,
        )
        controller.set_pressure_shed(True)
        admitted = sum(controller.admit(now=0.0) for _ in range(100))
        assert admitted == 10

    def test_gauge_and_counter_published(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            rate=1000.0, burst=1000.0, registry=registry
        )
        controller.set_pressure_shed(True)
        controller.admit(0.0)
        snap = registry.snapshot()
        assert snap["admission_pressure_shed"] == 1.0
        assert snap["admission_pressure_overflow"] == 1
        assert snap["admission_shed"] == 1
        controller.set_pressure_shed(False)
        assert registry.snapshot()["admission_pressure_shed"] == 0.0


class TestClusterMonitor:
    def build(self, figure1_snapshot, replicas=2):
        return Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, replication_factor=replicas),
        )

    def test_healthy_fleet_no_alerts(self, figure1_snapshot):
        cluster = self.build(figure1_snapshot)
        monitor = ClusterMonitor(cluster)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        assert monitor.alerts() == []
        health = monitor.poll()
        assert len(health) == 2
        assert all(p.healthy_replicas == 2 for p in health)
        assert all(not p.at_risk for p in health)

    def test_single_replica_alert(self, figure1_snapshot):
        cluster = self.build(figure1_snapshot)
        cluster.replica_sets[0].mark_down(1)
        monitor = ClusterMonitor(cluster)
        alerts = monitor.alerts()
        assert any("single healthy replica" in a for a in alerts)

    def test_all_down_alert(self, figure1_snapshot):
        cluster = self.build(figure1_snapshot)
        cluster.replica_sets[1].mark_down(0)
        cluster.replica_sets[1].mark_down(1)
        alerts = ClusterMonitor(cluster).alerts()
        assert any("ALL REPLICAS DOWN" in a for a in alerts)

    def test_divergence_alert_after_missed_events(self, figure1_snapshot):
        cluster = self.build(figure1_snapshot)
        cluster.replica_sets[0].mark_down(1)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.replica_sets[0].mark_up(1)  # rejoin WITHOUT resync
        monitor = ClusterMonitor(cluster)
        alerts = monitor.alerts()
        assert any("divergence" in a for a in alerts)

    def test_metrics_published_per_replica(self, figure1_snapshot):
        cluster = self.build(figure1_snapshot)
        monitor = ClusterMonitor(cluster)
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        monitor.poll()
        snap = monitor.registry.snapshot()
        assert snap["replica_available{partition=0,replica=0}"] == 1.0
        assert snap["d_edges{partition=1,replica=1}"] == 1

    def test_transport_backlog_gauge_published_unconditionally(
        self, figure1_snapshot
    ):
        # The adaptive controller and dashboards read one overload signal
        # on every transport — even the synchronous one, where it is 0.
        cluster = self.build(figure1_snapshot)
        monitor = ClusterMonitor(cluster)
        monitor.poll()
        assert monitor.registry.snapshot()["transport_backlog"] == 0.0


class TestBacklogGatedAdmission:
    def test_backlog_over_limit_sheds_despite_token_budget(self):
        controller = AdmissionController(rate=1000.0, burst=1000.0, backlog_limit=10)
        assert controller.admit(now=0.0, backlog=10)  # at the limit: fine
        assert not controller.admit(now=0.0, backlog=11)  # over: shed
        assert controller.admit(now=0.0, backlog=0)  # drained: admit again

    def test_backlog_ignored_without_limit(self):
        controller = AdmissionController(rate=1000.0, burst=1000.0)
        assert controller.admit(now=0.0, backlog=10**6)

    def test_backlog_overflow_still_sampled(self):
        controller = AdmissionController(
            rate=1000.0, burst=1000.0,
            policy=AdmissionPolicy.SAMPLE, sample_one_in=10,
            backlog_limit=1,
        )
        admitted = sum(controller.admit(now=0.0, backlog=5) for _ in range(100))
        assert admitted == 10  # the statistical trace survives the gate

    def test_backlog_counter_published(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            rate=1000.0, burst=1000.0, registry=registry, backlog_limit=1
        )
        controller.admit(0.0, backlog=5)
        snap = registry.snapshot()
        assert snap["admission_backlog_overflow"] == 1
        assert snap["admission_shed"] == 1

    def test_backlog_limit_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(rate=1.0, burst=1.0, backlog_limit=0)


class TestMonitorOverWorkerTransport:
    def test_poll_reports_worker_liveness_and_backlog(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            DetectionParams(k=2, tau=600.0),
            ClusterConfig(
                num_partitions=2, replication_factor=2, transport="process"
            ),
        )
        try:
            cluster.process_event(EdgeEvent(0.0, B1, C2))
            monitor = ClusterMonitor(cluster)
            health = monitor.poll()
            assert len(health) == 2
            assert all(p.worker_alive for p in health)
            assert all(p.backlog == 0 for p in health)
            assert all(p.healthy_replicas == 2 for p in health)
            snap = monitor.registry.snapshot()
            assert snap["worker_alive{partition=0}"] == 1.0
            assert snap["worker_backlog{partition=1}"] == 0
        finally:
            cluster.close()

    def test_dead_worker_alert(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            DetectionParams(k=2, tau=600.0),
            ClusterConfig(num_partitions=2, transport="process"),
        )
        try:
            victim = cluster.transport._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            monitor = ClusterMonitor(cluster)
            health = {p.partition_id: p for p in monitor.poll()}
            assert not health[victim.key].worker_alive
            assert health[victim.key].healthy_replicas == 0
            alerts = monitor.alerts()
            assert any("WORKER DEAD" in a for a in alerts)
        finally:
            cluster.close()


class TestServingGauges:
    def test_serving_gauges_published_when_wired(self, figure1_snapshot):
        import numpy as np

        from repro.serving import ServingCache

        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        cache = ServingCache(k=2)
        cache.update_columns(
            np.array([1, 2], dtype=np.int64),
            np.array([10, 20], dtype=np.int64),
            np.array([1.0, 2.0]),
            np.array([0.0, 0.0]),
        )
        cache.get_recommendations(1)       # hit
        cache.get_recommendations(999)     # miss
        monitor = ClusterMonitor(cluster, serving=cache)
        monitor.poll()
        snap = monitor.registry.snapshot()
        assert snap["serving_hit_rate"] == 0.5
        assert snap["serving_cache_users"] == 2.0
        assert snap["serving_bytes_per_user"] > 0

    def test_serving_gauges_absent_without_cache(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        monitor = ClusterMonitor(cluster)
        monitor.poll()
        assert "serving_hit_rate" not in monitor.registry.snapshot()

    def test_sharded_gauges_weight_unevenly_grown_shards(
        self, figure1_snapshot
    ):
        import numpy as np

        from repro.serving import ShardedServingCache

        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        sharded = ShardedServingCache(num_shards=2, k=2, capacity=8)
        # Skew the population: hundreds of users on one shard (several
        # capacity doublings), a handful on the other (still at 8 slots).
        hot = [u for u in range(4_000) if sharded.shard_of(u) == 0][:500]
        cold = [u for u in range(4_000) if sharded.shard_of(u) == 1][:1]
        users = np.array(hot + cold, dtype=np.int64)
        sharded.update_columns(
            users,
            np.ones(len(users), np.int64),
            np.ones(len(users)),
            np.zeros(len(users)),
        )
        assert sharded.shards[0].nbytes() > sharded.shards[1].nbytes()
        monitor = ClusterMonitor(cluster, serving=sharded)
        monitor.poll()
        snap = monitor.registry.snapshot()
        assert snap["serving_cache_users"] == 501.0
        # Sum-then-ratio weighting: total bytes over total users, which
        # the hot shard dominates — not a mean of per-shard ratios (the
        # near-empty cold shard's capacity amortizes over one user, so
        # its per-shard ratio would drag the average far off).
        total_ratio = sharded.nbytes() / 501
        mean_of_ratios = sum(
            s.nbytes() / s.users_cached for s in sharded.shards
        ) / 2
        assert snap["serving_bytes_per_user"] == pytest.approx(total_ratio)
        assert abs(snap["serving_bytes_per_user"] - mean_of_ratios) > (
            0.5 * total_ratio
        )
        # Per-shard visibility rides along.
        assert snap["serving_shard_0_users"] == 500.0
        assert snap["serving_shard_1_users"] == 1.0
        assert snap["serving_shard_0_evictions"] == 0.0

    def test_worker_reader_gauges_surface_writer_lag(self, figure1_snapshot):
        import numpy as np

        from repro.cluster import shm_available
        from repro.cluster.shm import sweep_segments
        from repro.serving import (
            ServingCache,
            ServingCacheReader,
            ShardedServingCacheReader,
            create_serving_arena,
        )

        if not shm_available():
            pytest.skip("POSIX shared memory unavailable on this host")
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        spec = create_serving_arena(k=2, capacity=8)
        writer = ServingCache.attach_writer(spec)
        reader = ShardedServingCacheReader([ServingCacheReader(spec)])
        try:
            writer.update_columns(
                np.array([1, 2], dtype=np.int64),
                np.array([10, 20], dtype=np.int64),
                np.array([1.0, 2.0]),
                np.array([0.0, 0.0]),
            )
            # Parent posted 3 serving-bearing messages; the worker has
            # merged 1 — the monitor must surface the lag of 2.
            reader.shards[0].posted_updates = 3
            monitor = ClusterMonitor(cluster, serving=reader)
            monitor.poll()
            snap = monitor.registry.snapshot()
            assert snap["serving_cache_users"] == 2.0
            assert snap["serving_shard_0_users"] == 2.0
            assert snap["serving_shard_0_writer_lag_updates"] == 2.0
            assert snap["serving_shard_0_generation"] >= 1.0
            assert snap["serving_shard_0_attaches"] >= 0.0
        finally:
            reader.close()
            writer.close()
            sweep_segments([spec.control_name])
