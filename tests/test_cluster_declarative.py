"""Declarative motif programs deployed fleet-wide via detector factories."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import ActionType, DetectionParams, EdgeEvent
from repro.motif import DeclarativeDetector, co_retweet_spec, diamond_spec

from tests.conftest import A2, B1, B2, C2, FIGURE1_FOLLOWS
from repro.graph import GraphSnapshot

PARAMS = DetectionParams(k=2, tau=600.0)


def declarative_factory(*specs):
    def factory(static_shard, dynamic_index):
        return [
            DeclarativeDetector(
                spec,
                static_shard,
                dynamic_index,
                inserts_edges=False,
                collect_statistics=False,
            )
            for spec in specs
        ]

    return factory


class TestDetectorFactory:
    def test_declarative_diamond_fleet_wide(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=3),
            detector_factory=declarative_factory(diamond_spec(k=2, tau=600.0)),
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        recs = cluster.process_event(EdgeEvent(10.0, B2, C2))
        assert [(r.recipient, r.candidate) for r in recs] == [(A2, C2)]
        assert recs[0].motif == "diamond"

    def test_factory_matches_hand_coded_cluster(self):
        from repro.gen import TwitterGraphConfig, generate_follow_graph, \
            StreamConfig, generate_event_stream

        snapshot = generate_follow_graph(
            TwitterGraphConfig(num_users=300, mean_followings=8.0, seed=6)
        )
        events = generate_event_stream(
            StreamConfig(num_users=300, duration=120.0, background_rate=4.0, seed=6)
        )
        hand = Cluster.build(snapshot, PARAMS, ClusterConfig(num_partitions=2))
        declarative = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2),
            detector_factory=declarative_factory(diamond_spec(k=2, tau=600.0)),
        )
        want = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in hand.process_stream(events)
        )
        got = sorted(
            (r.created_at, r.recipient, r.candidate)
            for r in declarative.process_stream(events)
        )
        assert got == want

    def test_co_hosted_programs_share_one_d_per_replica(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, replication_factor=2),
            detector_factory=declarative_factory(
                diamond_spec(k=2, tau=600.0),
                co_retweet_spec(k=2, tau=600.0),
            ),
        )
        tweet = 7
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        cluster.process_event(EdgeEvent(1.0, B1, tweet, ActionType.RETWEET))
        follow_recs = cluster.process_event(EdgeEvent(2.0, B2, C2))
        retweet_recs = cluster.process_event(
            EdgeEvent(3.0, B2, tweet, ActionType.RETWEET)
        )
        assert {r.motif for r in follow_recs} == {"diamond"}
        assert {r.motif for r in retweet_recs} == {"co-retweet"}
        # One D insert per replica per event despite two programs.
        replica = cluster.replica_sets[0].replicas[0]
        assert replica.engine.dynamic_index.inserted_total == 4

    def test_query_audience_requires_diamond_program(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=1),
            detector_factory=declarative_factory(diamond_spec(k=2, tau=600.0)),
        )
        with pytest.raises(TypeError, match="DiamondDetector"):
            cluster.replica_sets[0].replicas[0].query_audience(C2, now=0.0)

    def test_reload_snapshot_with_declarative_fleet(self, figure1_snapshot):
        cluster = Cluster.build(
            figure1_snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2),
            detector_factory=declarative_factory(diamond_spec(k=2, tau=600.0)),
        )
        cluster.process_event(EdgeEvent(0.0, B1, C2))
        new_snapshot = GraphSnapshot.from_edges(
            FIGURE1_FOLLOWS + [(0, B2)], num_nodes=8
        )
        cluster.reload_snapshot(new_snapshot)
        recs = cluster.process_event(EdgeEvent(1.0, B2, C2))
        assert {r.recipient for r in recs} == {0, A2}
