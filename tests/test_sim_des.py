"""Unit tests for the virtual clock, event simulator, and latency models."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.des import DiscreteEventSimulator
from repro.sim.latency import (
    FixedDelay,
    LogNormalDelay,
    MultiHopDelay,
    UniformDelay,
    production_queue_model,
)
from repro.util.rng import make_rng
from repro.util.stats import describe


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance(self):
        clock = VirtualClock(5.0)
        clock.advance_to(9.0)
        assert clock.now() == 9.0
        clock.advance_by(1.0)
        assert clock.now() == 10.0

    def test_no_time_travel(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)


class TestSimulator:
    def test_executes_in_time_order(self):
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.clock.now() == 3.0
        assert sim.events_executed == 3

    def test_fifo_among_ties(self):
        sim = DiscreteEventSimulator()
        order = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_cascading_schedules(self):
        sim = DiscreteEventSimulator()
        seen = []

        def first():
            seen.append(("first", sim.clock.now()))
            sim.schedule_after(2.0, second)

        def second():
            seen.append(("second", sim.clock.now()))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = DiscreteEventSimulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending() == 1
        sim.run()
        assert fired == [1, 10]

    def test_cannot_schedule_in_past(self):
        sim = DiscreteEventSimulator(VirtualClock(10.0))
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)

    def test_step_on_empty_heap(self):
        assert DiscreteEventSimulator().step() is False


class TestDelayModels:
    def test_fixed(self):
        assert FixedDelay(1.5)() == 1.5
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_uniform_bounds(self):
        model = UniformDelay(1.0, 2.0, make_rng(1))
        samples = [model() for _ in range(500)]
        assert all(1.0 <= s <= 2.0 for s in samples)
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0, make_rng(1))

    def test_lognormal_median(self):
        model = LogNormalDelay(median=4.0, sigma=0.5, rng=make_rng(2))
        samples = sorted(model() for _ in range(20_000))
        assert samples[len(samples) // 2] == pytest.approx(4.0, rel=0.05)
        assert all(s > 0 for s in samples)

    def test_multi_hop_sums(self):
        model = MultiHopDelay([FixedDelay(1.0), FixedDelay(2.0)])
        assert model() == 3.0
        with pytest.raises(ValueError):
            MultiHopDelay([])

    def test_production_model_matches_paper_percentiles(self):
        """The calibrated model must land near 7 s median / 15 s p99."""
        model = production_queue_model(make_rng(3))
        stats = describe([model() for _ in range(30_000)])
        assert stats.p50 == pytest.approx(7.0, rel=0.1)
        assert stats.p99 == pytest.approx(15.0, rel=0.12)
