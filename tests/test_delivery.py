"""Unit tests for the delivery funnel: dedup, waking hours, fatigue."""

import pytest

from repro.core.recommendation import Recommendation
from repro.delivery import (
    DedupFilter,
    DeliveryPipeline,
    FatigueFilter,
    PushNotifier,
    WakingHoursFilter,
)

HOUR = 3600.0
DAY = 86_400.0


def rec(recipient=1, candidate=2, created_at=0.0):
    return Recommendation(recipient=recipient, candidate=candidate, created_at=created_at)


class TestDedupFilter:
    def test_first_pass_allowed_repeat_blocked(self):
        dedup = DedupFilter(window=DAY)
        assert dedup.allow(rec(), now=0.0)
        assert not dedup.allow(rec(), now=100.0)

    def test_allowed_again_after_window(self):
        dedup = DedupFilter(window=100.0)
        assert dedup.allow(rec(), now=0.0)
        assert dedup.allow(rec(), now=101.0)

    def test_distinct_pairs_independent(self):
        dedup = DedupFilter()
        assert dedup.allow(rec(recipient=1, candidate=2), now=0.0)
        assert dedup.allow(rec(recipient=1, candidate=3), now=0.0)
        assert dedup.allow(rec(recipient=2, candidate=2), now=0.0)

    def test_prune_bounds_memory(self):
        dedup = DedupFilter(window=10.0)
        for i in range(3 * DedupFilter.PRUNE_EVERY):
            dedup.allow(rec(recipient=i, candidate=0), now=float(i))
        # Everything older than `window` must have been discarded.
        assert dedup.tracked_pairs() <= DedupFilter.PRUNE_EVERY + 11

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DedupFilter(window=0.0)


class TestWakingHoursFilter:
    def test_awake_during_waking_hours(self):
        waking = WakingHoursFilter(waking_start_hour=8, waking_end_hour=23)
        user = 5
        offset = waking.timezone_offset_hours(user)
        # Construct a UTC timestamp that is local noon for this user.
        local_noon_utc = ((12 - offset) % 24) * HOUR
        assert waking.is_awake(user, local_noon_utc)
        assert waking.allow(rec(recipient=user), local_noon_utc)

    def test_asleep_at_local_4am(self):
        waking = WakingHoursFilter()
        user = 5
        offset = waking.timezone_offset_hours(user)
        local_4am_utc = ((4 - offset) % 24) * HOUR
        assert not waking.is_awake(user, local_4am_utc)

    def test_timezones_deterministic_and_spread(self):
        waking = WakingHoursFilter()
        offsets = {waking.timezone_offset_hours(u) for u in range(500)}
        assert all(-11 <= o <= 12 for o in offsets)
        assert len(offsets) > 12  # many distinct zones in use
        assert waking.timezone_offset_hours(7) == waking.timezone_offset_hours(7)

    def test_salt_changes_assignment(self):
        base = WakingHoursFilter()
        salted = WakingHoursFilter(timezone_salt=99)
        changed = sum(
            base.timezone_offset_hours(u) != salted.timezone_offset_hours(u)
            for u in range(200)
        )
        assert changed > 100

    def test_fraction_awake_matches_interval_length(self):
        waking = WakingHoursFilter(waking_start_hour=8, waking_end_hour=23)
        awake = sum(
            waking.is_awake(user, hour * HOUR)
            for user in range(100)
            for hour in range(24)
        )
        assert awake / 2400 == pytest.approx(15 / 24, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            WakingHoursFilter(waking_start_hour=25)
        with pytest.raises(ValueError):
            WakingHoursFilter(waking_start_hour=12, waking_end_hour=10)


class TestFatigueFilter:
    def test_cap_enforced(self):
        fatigue = FatigueFilter(max_per_window=2, window=DAY)
        assert fatigue.allow(rec(candidate=1), now=0.0)
        assert fatigue.allow(rec(candidate=2), now=100.0)
        assert not fatigue.allow(rec(candidate=3), now=200.0)

    def test_window_rolls(self):
        fatigue = FatigueFilter(max_per_window=1, window=100.0)
        assert fatigue.allow(rec(candidate=1), now=0.0)
        assert not fatigue.allow(rec(candidate=2), now=50.0)
        assert fatigue.allow(rec(candidate=3), now=150.0)

    def test_users_independent(self):
        fatigue = FatigueFilter(max_per_window=1)
        assert fatigue.allow(rec(recipient=1), now=0.0)
        assert fatigue.allow(rec(recipient=2), now=0.0)

    def test_sent_in_window(self):
        fatigue = FatigueFilter(max_per_window=5, window=100.0)
        fatigue.allow(rec(candidate=1), now=0.0)
        fatigue.allow(rec(candidate=2), now=90.0)
        assert fatigue.sent_in_window(1, now=95.0) == 2
        assert fatigue.sent_in_window(1, now=150.0) == 1
        assert fatigue.sent_in_window(99, now=0.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FatigueFilter(max_per_window=0)
        with pytest.raises(ValueError):
            FatigueFilter(window=-1.0)


class TestDeliveryPipeline:
    def awake_time_for(self, pipeline: DeliveryPipeline, user: int) -> float:
        waking = next(
            f for f in pipeline.filters if isinstance(f, WakingHoursFilter)
        )
        offset = waking.timezone_offset_hours(user)
        return ((12 - offset) % 24) * HOUR

    def test_happy_path_delivers(self):
        pipeline = DeliveryPipeline()
        now = self.awake_time_for(pipeline, user=1)
        notification = pipeline.offer(rec(recipient=1), now)
        assert notification is not None
        assert pipeline.funnel.get("raw") == 1
        assert pipeline.funnel.get("delivered") == 1
        assert pipeline.notifier.delivered_total == 1

    def test_duplicate_dropped_at_dedup(self):
        pipeline = DeliveryPipeline()
        now = self.awake_time_for(pipeline, user=1)
        pipeline.offer(rec(recipient=1), now)
        assert pipeline.offer(rec(recipient=1), now + 1) is None
        assert pipeline.funnel.get("dropped:dedup") == 1

    def test_sleeping_user_suppressed(self):
        pipeline = DeliveryPipeline()
        waking = next(
            f for f in pipeline.filters if isinstance(f, WakingHoursFilter)
        )
        user = 3
        offset = waking.timezone_offset_hours(user)
        local_3am = ((3 - offset) % 24) * HOUR
        assert pipeline.offer(rec(recipient=user), local_3am) is None
        assert pipeline.funnel.get("dropped:waking_hours") == 1

    def test_fatigue_caps_daily_pushes(self):
        pipeline = DeliveryPipeline(
            filters=[DedupFilter(), FatigueFilter(max_per_window=2)]
        )
        for candidate in range(5):
            pipeline.offer(rec(recipient=1, candidate=candidate), now=float(candidate))
        assert pipeline.notifier.delivered_total == 2
        assert pipeline.funnel.get("dropped:fatigue") == 3

    def test_offer_all(self):
        pipeline = DeliveryPipeline(filters=[DedupFilter()])
        batch = [rec(recipient=1, candidate=c) for c in range(3)]
        delivered = pipeline.offer_all(batch, now=0.0)
        assert len(delivered) == 3

    def test_reduction_ratio(self):
        pipeline = DeliveryPipeline(filters=[DedupFilter()])
        for _ in range(10):
            pipeline.offer(rec(), now=0.0)  # 1 passes, 9 deduped
        assert pipeline.reduction_ratio() == 10.0

    def test_notifier_counters(self):
        notifier = PushNotifier()
        pipeline = DeliveryPipeline(filters=[], notifier=notifier)
        pipeline.offer(rec(recipient=1, candidate=1, created_at=5.0), now=8.0)
        pipeline.offer(rec(recipient=1, candidate=2), now=9.0)
        pipeline.offer(rec(recipient=2, candidate=1), now=9.0)
        assert notifier.unique_recipients() == 2
        assert notifier.max_per_user() == 2
        assert notifier.notifications[0].latency == 3.0

    def test_notifier_keep_at_most(self):
        notifier = PushNotifier(keep_at_most=2)
        pipeline = DeliveryPipeline(filters=[], notifier=notifier)
        for c in range(5):
            pipeline.offer(rec(recipient=1, candidate=c), now=0.0)
        assert len(notifier.notifications) == 2
        assert notifier.delivered_total == 5
