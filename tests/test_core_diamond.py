"""Unit tests for the diamond detector — including the paper's Figure 1."""

import pytest

from repro.core.diamond import DiamondDetector
from repro.core.events import ActionType, EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex

from tests.conftest import A1, A2, A3, B1, B2, C1, C2, FIGURE1_FOLLOWS


def make_detector(k=2, tau=600.0, follows=FIGURE1_FOLLOWS, **params):
    s = StaticFollowerIndex.from_follow_edges(follows)
    d = DynamicEdgeIndex(retention=tau)
    return DiamondDetector(s, d, DetectionParams(k=k, tau=tau, **params))


class TestFigure1:
    """The paper's worked example, exactly as §2 narrates it."""

    def test_b2_c2_edge_triggers_recommendation_to_a2(self):
        detector = make_detector()
        assert detector.on_edge(EdgeEvent(0.0, B1, C2)) == []
        recs = detector.on_edge(EdgeEvent(10.0, B2, C2))
        assert len(recs) == 1
        rec = recs[0]
        assert rec.recipient == A2
        assert rec.candidate == C2
        assert rec.via == (B1, B2)
        assert rec.motif == "diamond"

    def test_a1_a3_not_recommended(self):
        """A1 follows only B1 and A3 only B2 — neither reaches k=2."""
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        recs = detector.on_edge(EdgeEvent(10.0, B2, C2))
        recipients = {rec.recipient for rec in recs}
        assert A1 not in recipients and A3 not in recipients

    def test_stale_first_edge_does_not_trigger(self):
        """If B1 -> C2 happened outside tau, the diamond never completes."""
        detector = make_detector(tau=600.0)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        recs = detector.on_edge(EdgeEvent(601.0, B2, C2))
        assert recs == []

    def test_edge_to_different_c_does_not_trigger(self):
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C1))
        assert detector.on_edge(EdgeEvent(1.0, B2, C2)) == []


class TestThresholdSemantics:
    def test_k_one_fires_immediately(self):
        detector = make_detector(k=1)
        recs = detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert {rec.recipient for rec in recs} == {A1, A2}

    def test_k_three_needs_three_fresh_sources(self):
        follows = [(0, 10), (0, 11), (0, 12), (1, 10), (1, 11), (1, 12)]
        detector = make_detector(k=3, follows=follows)
        assert detector.on_edge(EdgeEvent(0.0, 10, 99)) == []
        assert detector.on_edge(EdgeEvent(1.0, 11, 99)) == []
        recs = detector.on_edge(EdgeEvent(2.0, 12, 99))
        assert {rec.recipient for rec in recs} == {0, 1}

    def test_k_overlap_not_strict_intersection(self):
        """With 3 fresh B's and k=2, an A following only 2 still qualifies."""
        follows = [(0, 10), (0, 11), (1, 10), (1, 11), (1, 12)]
        detector = make_detector(k=2, follows=follows)
        detector.on_edge(EdgeEvent(0.0, 10, 99))
        detector.on_edge(EdgeEvent(1.0, 11, 99))
        recs = detector.on_edge(EdgeEvent(2.0, 12, 99))
        # User 0 follows 10 and 11 (2 of the 3 fresh B's) -> qualifies even
        # though it does not follow 12.
        assert 0 in {rec.recipient for rec in recs}

    def test_same_b_refollowing_counts_once(self):
        """A single flapping B cannot fake k distinct sources."""
        detector = make_detector(k=2)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        detector.on_edge(EdgeEvent(1.0, B1, C2))
        assert detector.on_edge(EdgeEvent(2.0, B1, C2)) == []

    def test_retrigger_emits_duplicate_raw_candidates(self):
        """Raw candidates are deliberately not deduped at the detector."""
        follows = FIGURE1_FOLLOWS + [(A2, 20)]
        detector = make_detector(follows=follows)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        first = detector.on_edge(EdgeEvent(1.0, B2, C2))
        second = detector.on_edge(EdgeEvent(2.0, 20, C2))
        assert [rec.recipient for rec in first] == [A2]
        assert [rec.recipient for rec in second] == [A2]


class TestFilters:
    def test_candidate_not_recommended_to_itself(self):
        # A2 (id 1) follows B1 and B2; make the new target also id 1.
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, A2))
        recs = detector.on_edge(EdgeEvent(1.0, B2, A2))
        assert all(rec.recipient != A2 for rec in recs)

    def test_self_recommendation_allowed_when_disabled(self):
        detector = make_detector(
            exclude_candidate_recipient=False, exclude_existing_followers=False
        )
        detector.on_edge(EdgeEvent(0.0, B1, A2))
        recs = detector.on_edge(EdgeEvent(1.0, B2, A2))
        assert A2 in {rec.recipient for rec in recs}

    def test_existing_follower_excluded(self):
        """A2 already follows C2 in the static snapshot -> no notification."""
        follows = FIGURE1_FOLLOWS + [(A2, C2)]
        detector = make_detector(follows=follows)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        assert detector.on_edge(EdgeEvent(1.0, B2, C2)) == []

    def test_fresh_source_never_notified_about_its_own_target(self):
        """B's that just followed C must not be recommended C."""
        # B2 also follows B1 (so B2 is an A for B1's followings).
        follows = FIGURE1_FOLLOWS + [(B2, B1), (B2, 40)]
        detector = make_detector(follows=follows)
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        detector.on_edge(EdgeEvent(1.0, 40, C2))
        recs = detector.on_edge(EdgeEvent(2.0, B2, C2))
        assert B2 not in {rec.recipient for rec in recs}

    def test_max_trigger_sources_caps_expansion(self):
        follows = [(0, b) for b in range(10, 20)] + [(1, b) for b in range(10, 20)]
        detector = make_detector(k=2, follows=follows, max_trigger_sources=3)
        for i, b in enumerate(range(10, 20)):
            detector.on_edge(EdgeEvent(float(i), b, 99))
        # Still fires (cap >= k) using only the 3 most recent sources.
        recs = detector.on_edge(EdgeEvent(20.0, 10, 99))
        assert recs == [] or all(len(rec.via) <= 10 for rec in recs)
        assert detector.stats.triggers > 0


class TestConfigurationAndStats:
    def test_tau_exceeding_retention_rejected(self):
        s = StaticFollowerIndex.from_follow_edges(FIGURE1_FOLLOWS)
        d = DynamicEdgeIndex(retention=10.0)
        with pytest.raises(ValueError, match="retention"):
            DiamondDetector(s, d, DetectionParams(k=2, tau=20.0))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DetectionParams(k=0)
        with pytest.raises(ValueError):
            DetectionParams(tau=0.0)
        with pytest.raises(ValueError):
            DetectionParams(k=3, max_trigger_sources=2)

    def test_stats_counters(self):
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        detector.on_edge(EdgeEvent(1.0, B2, C2))
        assert detector.stats.events_seen == 2
        assert detector.stats.below_threshold == 1
        assert detector.stats.triggers == 1
        assert detector.stats.candidates_emitted == 1

    def test_action_type_propagates(self):
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C2, ActionType.RETWEET))
        recs = detector.on_edge(EdgeEvent(1.0, B2, C2, ActionType.RETWEET))
        assert recs[0].action is ActionType.RETWEET

    def test_current_audience_is_read_only(self):
        detector = make_detector()
        detector.on_edge(EdgeEvent(0.0, B1, C2))
        detector.on_edge(EdgeEvent(1.0, B2, C2))
        audience = detector.current_audience(C2, now=2.0)
        assert audience == [A2]
        # Querying must not insert edges.
        assert detector._dynamic.inserted_total == 2

    def test_event_validation(self):
        with pytest.raises(ValueError):
            EdgeEvent(0.0, -1, 2)
