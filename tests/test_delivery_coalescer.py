"""Unit tests for the delivery coalescer (push-queue side micro-batching)."""

import pytest

from repro.core import ActionType, EdgeEvent, Recommendation
from repro.core.recommendation import RecommendationBatch, RecommendationGroup
from repro.delivery import DeliveryPipeline, PushNotifier
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.consumer import CandidateBatch, DeliveryCoalescer


def candidate_batch(recipients, candidate=9, created_at=0.0, boxed=False):
    """A CandidateBatch carrying one detection group (or its boxed view)."""
    origin = EdgeEvent(created_at, 100, candidate, ActionType.FOLLOW)
    if boxed:
        recommendations = tuple(
            Recommendation(recipient=r, candidate=candidate, created_at=created_at)
            for r in recipients
        )
    else:
        recommendations = RecommendationBatch(
            [RecommendationGroup(recipients, candidate=candidate, created_at=created_at)]
        )
    return CandidateBatch(origin, recommendations, detection_seconds=0.0)


def make_rig(batch_size=1, max_wait=0.5):
    sim = DiscreteEventSimulator()
    breakdown = LatencyBreakdown()
    notifications = []
    delivery = DeliveryPipeline(filters=[], notifier=PushNotifier())
    coalescer = DeliveryCoalescer(
        sim, delivery, breakdown, notifications,
        batch_size=batch_size, max_wait=max_wait,
    )
    return sim, breakdown, notifications, delivery, coalescer


class TestPassthrough:
    def test_batch_size_one_dispatches_inline(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=1)
        coalescer(candidate_batch([1, 2]), 0.0, 1.0)
        assert [n.recipient for n in notifications] == [1, 2]
        assert all(n.delivered_at == 1.0 for n in notifications)
        assert "path:delivery-batching" not in breakdown.stages()
        assert coalescer.pending_batches == 0

    def test_boxed_tuples_dispatch_inline_too(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=1)
        coalescer(candidate_batch([3], boxed=True), 0.0, 2.0)
        assert [n.recipient for n in notifications] == [3]
        assert delivery.funnel.get("raw") == 1


class TestSizeTrigger:
    def test_flushes_when_candidate_count_reached(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=3)
        coalescer(candidate_batch([1, 2], candidate=7), 0.0, 1.0)
        assert coalescer.pending_batches == 1
        assert coalescer.pending_candidates == 2
        assert notifications == []  # waiting for the batch to fill
        coalescer(candidate_batch([5], candidate=8, created_at=0.5), 0.0, 2.0)
        assert coalescer.pending_batches == 0
        # One merged offer_batch at the triggering batch's delivery time,
        # order preserved across the merged batches.
        assert [(n.recipient, n.recommendation.candidate) for n in notifications] == [
            (1, 7), (2, 7), (5, 8),
        ]
        assert all(n.delivered_at == 2.0 for n in notifications)
        assert coalescer.flushes == 1
        assert coalescer.batches_coalesced == 2

    def test_wait_recorded_per_candidate(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=3)
        coalescer(candidate_batch([1, 2]), 0.0, 1.0)
        coalescer(candidate_batch([5]), 0.0, 2.0)
        stage = breakdown.stage("path:delivery-batching")
        # First batch's two candidates waited 1s; the trigger waited 0s —
        # zero-wait samples count, like the detection batching stage.
        assert len(stage) == 3
        assert stage.percentile(0) == 0.0
        assert stage.percentile(100) == 1.0


class TestTimeoutFlush:
    def test_max_wait_timer_flushes_trickle(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(
            batch_size=100, max_wait=0.5
        )
        sim.schedule_at(1.0, lambda: coalescer(candidate_batch([1]), 0.5, 1.0))
        sim.run()
        assert coalescer.pending_batches == 0
        assert [n.recipient for n in notifications] == [1]
        # Flushed by the timer at +0.5s, not on arrival.
        assert notifications[0].delivered_at == pytest.approx(1.5)
        stage = breakdown.stage("path:delivery-batching")
        assert stage.percentile(100) == pytest.approx(0.5)

    def test_size_trigger_cancels_timer_via_epoch(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(
            batch_size=2, max_wait=5.0
        )

        def deliver_two():
            coalescer(candidate_batch([1]), 0.0, 0.0)
            coalescer(candidate_batch([2]), 0.0, 0.0)

        sim.schedule_at(0.0, deliver_two)
        sim.run()  # the stale timer must find an already-flushed buffer
        assert coalescer.flushes == 1
        assert len(notifications) == 2

    def test_timer_covers_batches_after_the_first(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(
            batch_size=100, max_wait=1.0
        )
        sim.schedule_at(0.0, lambda: coalescer(candidate_batch([1]), 0.0, 0.0))
        sim.schedule_at(0.4, lambda: coalescer(candidate_batch([2]), 0.0, 0.4))
        sim.run()
        # Both flushed together when the first batch's timer fired.
        assert all(n.delivered_at == pytest.approx(1.0) for n in notifications)
        assert coalescer.flushes == 1


class TestAccounting:
    def test_total_latency_measured_to_flush(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=2)
        batch = candidate_batch([1], created_at=0.0)
        coalescer(batch, 0.5, 1.0)
        coalescer(candidate_batch([2], created_at=1.5), 1.8, 2.0)
        # First candidate: created 0.0, queue-delivered 1.0, flushed 2.0.
        assert breakdown.total.percentile(100) == pytest.approx(2.0)
        assert breakdown.stage("path:queue").percentile(100) == pytest.approx(1.0)
        assert breakdown.stage("path:delivery-batching").percentile(100) == (
            pytest.approx(1.0)
        )

    def test_merges_boxed_and_columnar_batches(self):
        sim, breakdown, notifications, delivery, coalescer = make_rig(batch_size=3)
        coalescer(candidate_batch([1, 2], candidate=7), 0.0, 1.0)
        coalescer(candidate_batch([3], candidate=8, boxed=True), 0.0, 1.5)
        assert [(n.recipient, n.recommendation.candidate) for n in notifications] == [
            (1, 7), (2, 7), (3, 8),
        ]
        assert delivery.funnel.get("raw") == 3
        assert delivery.funnel.get("delivered") == 3

    def test_validation(self):
        sim, breakdown, notifications, delivery, _ = make_rig()
        with pytest.raises(ValueError):
            DeliveryCoalescer(
                sim, delivery, breakdown, notifications, batch_size=0
            )
        with pytest.raises(ValueError):
            DeliveryCoalescer(
                sim, delivery, breakdown, notifications, max_wait=-1.0
            )


class TestRankedCoalescer:
    """The ranked configuration: TopKPerUserBuffer inside the window."""

    @staticmethod
    def make_ranked_rig(batch_size=1, max_wait=0.5, k=1):
        from repro.delivery import TopKPerUserBuffer

        sim = DiscreteEventSimulator()
        breakdown = LatencyBreakdown()
        notifications = []
        delivery = DeliveryPipeline(filters=[], notifier=PushNotifier())
        coalescer = DeliveryCoalescer(
            sim, delivery, breakdown, notifications,
            batch_size=batch_size, max_wait=max_wait,
            ranker=TopKPerUserBuffer(k=k),
        )
        return sim, breakdown, notifications, delivery, coalescer

    def test_window_releases_each_users_top_k(self):
        sim, _bd, notifications, delivery, coalescer = self.make_ranked_rig(
            batch_size=3, k=1
        )
        # Two candidates for recipient 1 in one window: 11 has more
        # witnesses, so only (1, 11) survives; recipient 2 keeps its one.
        weak = RecommendationBatch(
            [RecommendationGroup([1, 2], candidate=10, created_at=0.0, via=(5,))]
        )
        strong = RecommendationBatch(
            [RecommendationGroup([1], candidate=11, created_at=0.0, via=(5, 6))]
        )
        origin = EdgeEvent(0.0, 100, 10, ActionType.FOLLOW)
        coalescer(CandidateBatch(origin, weak), 0.0, 1.0)
        assert notifications == []  # buffered, not yet flushed
        coalescer(CandidateBatch(origin, strong), 0.0, 1.0)
        released = sorted(
            (n.recipient, n.recommendation.candidate) for n in notifications
        )
        assert released == [(1, 11), (2, 10)]
        # The funnel saw only the ranked survivors, not the raw volume.
        assert delivery.funnel.get("raw") == 2

    def test_max_wait_timer_flushes_ranked_buffer(self):
        sim, _bd, notifications, _delivery, coalescer = self.make_ranked_rig(
            batch_size=100, max_wait=0.5, k=2
        )
        sim.clock.advance_to(1.0)
        coalescer(candidate_batch([1, 1, 2], candidate=7), 0.0, 1.0)
        assert notifications == []
        sim.run()  # the 0.5 s window timer fires
        pairs = sorted((n.recipient, n.recommendation.candidate) for n in notifications)
        # In-window (recipient, candidate) dedup applies inside the ranker.
        assert pairs == [(1, 7), (2, 7)]
        assert all(n.delivered_at == pytest.approx(1.5) for n in notifications)

    def test_inline_mode_ranks_each_batch_individually(self):
        sim, _bd, notifications, delivery, coalescer = self.make_ranked_rig(
            batch_size=1, k=1
        )
        coalescer(candidate_batch([1, 1, 1], candidate=7), 0.0, 1.0)
        assert [(n.recipient, n.recommendation.candidate) for n in notifications] == [
            (1, 7)
        ]
        # Boxed tuples route through the ranker too.
        coalescer(candidate_batch([4], candidate=8, boxed=True), 0.0, 2.0)
        assert notifications[-1].recipient == 4
        assert delivery.funnel.get("raw") == 2

    def test_topology_wires_ranker_from_ranked_k(self):
        from repro.cluster import Cluster, ClusterConfig
        from repro.core import DetectionParams
        from repro.graph import GraphSnapshot
        from repro.streaming import StreamingTopology

        snapshot = GraphSnapshot.from_edges(
            [(0, 3), (1, 3), (1, 4), (2, 4)], num_nodes=8
        )
        cluster = Cluster.build(
            snapshot, DetectionParams(k=2, tau=600.0),
            ClusterConfig(num_partitions=2),
        )
        topology = StreamingTopology(cluster, seed=0, ranked_k=1)
        assert topology.coalescer._ranker is not None
        assert topology.coalescer._ranker.k == 1
        unranked = StreamingTopology(cluster, seed=0)
        assert unranked.coalescer._ranker is None
