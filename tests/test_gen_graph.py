"""Unit tests for the synthetic follow-graph generator."""

import numpy as np
import pytest

from repro.gen.graph_gen import (
    TwitterGraphConfig,
    generate_follow_graph,
    generate_follow_graph_chunked,
)


class TestGenerateFollowGraph:
    def test_basic_shape(self):
        snap = generate_follow_graph(TwitterGraphConfig(num_users=500, seed=1))
        assert snap.num_users == 500
        assert snap.num_edges > 500  # everyone follows at least one account

    def test_deterministic(self):
        config = TwitterGraphConfig(num_users=300, seed=9)
        a = generate_follow_graph(config)
        b = generate_follow_graph(config)
        assert sorted(a.follow_edges()) == sorted(b.follow_edges())

    def test_different_seeds_differ(self):
        a = generate_follow_graph(TwitterGraphConfig(num_users=300, seed=1))
        b = generate_follow_graph(TwitterGraphConfig(num_users=300, seed=2))
        assert sorted(a.follow_edges()) != sorted(b.follow_edges())

    def test_no_self_follows(self):
        snap = generate_follow_graph(TwitterGraphConfig(num_users=200, seed=3))
        assert all(a != b for a, b in snap.follow_edges())

    def test_popularity_skew_in_degree(self):
        """Low ids (popular ranks) must collect far more followers."""
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=2_000, popularity_exponent=1.0, seed=4)
        )
        in_degrees = snap.graph.transposed().out_degrees()
        top = int(np.sum(in_degrees[:100]))
        bottom = int(np.sum(in_degrees[-100:]))
        assert top > 10 * max(bottom, 1)

    def test_mean_out_degree_near_config(self):
        config = TwitterGraphConfig(num_users=2_000, mean_followings=15.0, seed=5)
        snap = generate_follow_graph(config)
        mean = snap.num_edges / snap.num_users
        assert mean == pytest.approx(15.0, rel=0.35)

    def test_weights_generated_when_requested(self):
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=200, with_weights=True, seed=6)
        )
        assert len(snap.edge_weights) == snap.num_edges
        assert all(w > 0 for w in snap.edge_weights.values())

    def test_weights_prefer_popular_targets(self):
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=500, with_weights=True, seed=7)
        )
        popular = [w for (a, b), w in snap.edge_weights.items() if b < 5]
        obscure = [w for (a, b), w in snap.edge_weights.items() if b > 400]
        if popular and obscure:
            assert np.mean(popular) > np.mean(obscure)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TwitterGraphConfig(num_users=0)
        with pytest.raises(ValueError):
            TwitterGraphConfig(num_users=10, mean_followings=20.0)
        with pytest.raises(ValueError):
            TwitterGraphConfig(max_followings=0)


class TestChunkedGeneration:
    def test_basic_shape_and_invariants(self):
        config = TwitterGraphConfig(num_users=5_000, seed=11)
        snap = generate_follow_graph_chunked(config, chunk_users=1_024)
        assert snap.num_users == 5_000
        assert snap.num_edges > 5_000
        assert all(a != b for a, b in snap.follow_edges())
        # The boxed path's invariant holds: nobody follows zero accounts.
        assert int(snap.graph.out_degrees().min()) >= 1

    def test_deterministic(self):
        config = TwitterGraphConfig(num_users=3_000, seed=5)
        a = generate_follow_graph_chunked(config, chunk_users=512)
        b = generate_follow_graph_chunked(config, chunk_users=512)
        assert sorted(a.follow_edges()) == sorted(b.follow_edges())

    def test_mean_out_degree_near_config(self):
        config = TwitterGraphConfig(num_users=4_000, mean_followings=12.0, seed=6)
        snap = generate_follow_graph_chunked(config)
        assert snap.num_edges / snap.num_users == pytest.approx(12.0, rel=0.35)

    def test_popularity_skew_matches_boxed_path(self):
        snap = generate_follow_graph_chunked(
            TwitterGraphConfig(num_users=4_000, popularity_exponent=1.0, seed=4)
        )
        in_degrees = snap.graph.transposed().out_degrees()
        top = int(np.sum(in_degrees[:100]))
        bottom = int(np.sum(in_degrees[-100:]))
        assert top > 10 * max(bottom, 1)

    def test_weights_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            generate_follow_graph_chunked(
                TwitterGraphConfig(num_users=100, with_weights=True)
            )

    def test_chunk_users_validated(self):
        with pytest.raises(ValueError):
            generate_follow_graph_chunked(
                TwitterGraphConfig(num_users=100), chunk_users=0
            )

    def test_peak_memory_stays_columnar_at_scale(self):
        """200k users build without ever boxing an edge list.

        The boxed path would allocate ~1.4M ``(int, int)`` tuples plus a
        Python list (>= 150 MB of small objects) before CSR construction
        even starts; the chunked path's peak must stay near the final
        arrays plus one chunk's working set.
        """
        import tracemalloc

        config = TwitterGraphConfig(num_users=200_000, mean_followings=7.0, seed=2)
        tracemalloc.start()
        try:
            snap = generate_follow_graph_chunked(config, chunk_users=50_000)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert snap.num_users == 200_000
        assert snap.num_edges > 1_000_000
        assert peak < 120 * 1024 * 1024, f"peak {peak / 1e6:.0f} MB"
