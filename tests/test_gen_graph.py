"""Unit tests for the synthetic follow-graph generator."""

import numpy as np
import pytest

from repro.gen.graph_gen import TwitterGraphConfig, generate_follow_graph


class TestGenerateFollowGraph:
    def test_basic_shape(self):
        snap = generate_follow_graph(TwitterGraphConfig(num_users=500, seed=1))
        assert snap.num_users == 500
        assert snap.num_edges > 500  # everyone follows at least one account

    def test_deterministic(self):
        config = TwitterGraphConfig(num_users=300, seed=9)
        a = generate_follow_graph(config)
        b = generate_follow_graph(config)
        assert sorted(a.follow_edges()) == sorted(b.follow_edges())

    def test_different_seeds_differ(self):
        a = generate_follow_graph(TwitterGraphConfig(num_users=300, seed=1))
        b = generate_follow_graph(TwitterGraphConfig(num_users=300, seed=2))
        assert sorted(a.follow_edges()) != sorted(b.follow_edges())

    def test_no_self_follows(self):
        snap = generate_follow_graph(TwitterGraphConfig(num_users=200, seed=3))
        assert all(a != b for a, b in snap.follow_edges())

    def test_popularity_skew_in_degree(self):
        """Low ids (popular ranks) must collect far more followers."""
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=2_000, popularity_exponent=1.0, seed=4)
        )
        in_degrees = snap.graph.transposed().out_degrees()
        top = int(np.sum(in_degrees[:100]))
        bottom = int(np.sum(in_degrees[-100:]))
        assert top > 10 * max(bottom, 1)

    def test_mean_out_degree_near_config(self):
        config = TwitterGraphConfig(num_users=2_000, mean_followings=15.0, seed=5)
        snap = generate_follow_graph(config)
        mean = snap.num_edges / snap.num_users
        assert mean == pytest.approx(15.0, rel=0.35)

    def test_weights_generated_when_requested(self):
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=200, with_weights=True, seed=6)
        )
        assert len(snap.edge_weights) == snap.num_edges
        assert all(w > 0 for w in snap.edge_weights.values())

    def test_weights_prefer_popular_targets(self):
        snap = generate_follow_graph(
            TwitterGraphConfig(num_users=500, with_weights=True, seed=7)
        )
        popular = [w for (a, b), w in snap.edge_weights.items() if b < 5]
        obscure = [w for (a, b), w in snap.edge_weights.items() if b > 400]
        if popular and obscure:
            assert np.mean(popular) > np.mean(obscure)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TwitterGraphConfig(num_users=0)
        with pytest.raises(ValueError):
            TwitterGraphConfig(num_users=10, mean_followings=20.0)
        with pytest.raises(ValueError):
            TwitterGraphConfig(max_followings=0)
