"""Write-ahead log: round-trip, rotation, torn tails, fault injection.

The WAL's contract is bitwise: every appended batch replays exactly —
same columns, same flush time, same sequence — through any number of
segment rotations and reopen cycles, and a corrupted or truncated tail
(what a crash can leave) is detected by CRC, warned about, and cut off
at the last intact record instead of replaying garbage.
"""

import struct
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionType
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.durability.wal import (
    WriteAheadLog,
    _list_segments,
    iter_wal,
)


def _batch(rows):
    events = [
        EdgeEvent(float(ts), int(actor), int(target), action)
        for actor, target, ts, action in rows
    ]
    return EventBatch.from_events(events)


def _assert_batches_equal(got: EventBatch, expected: EventBatch) -> None:
    np.testing.assert_array_equal(got.timestamps, expected.timestamps)
    np.testing.assert_array_equal(got.actors, expected.actors)
    np.testing.assert_array_equal(got.targets, expected.targets)
    np.testing.assert_array_equal(got.actions, expected.actions)


event_rows = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.integers(0, 20),
        st.floats(0.0, 1e6, allow_nan=False),
        st.sampled_from(
            [ActionType.FOLLOW, ActionType.RETWEET, ActionType.FAVORITE]
        ),
    ),
    min_size=1,
    max_size=12,
)

batch_lists = st.lists(event_rows, min_size=1, max_size=10)


# ----------------------------------------------------------------------
# Round-trip (property)
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(batches=batch_lists, segment_bytes=st.sampled_from([256, 4096, 1 << 20]))
def test_append_rotate_replay_roundtrip(tmp_path_factory, batches, segment_bytes):
    """Every appended batch replays bitwise, across segment rotations."""
    directory = tmp_path_factory.mktemp("wal")
    expected = [_batch(rows) for rows in batches]
    with WriteAheadLog(
        directory, segment_bytes=segment_bytes, fsync_every=3
    ) as wal:
        for i, batch in enumerate(expected):
            assert wal.append(batch, now=float(i)) == i
        assert wal.last_seq == len(expected) - 1
    replayed = list(iter_wal(directory))
    assert [r.seq for r in replayed] == list(range(len(expected)))
    assert [r.now for r in replayed] == [float(i) for i in range(len(expected))]
    for record, batch in zip(replayed, expected):
        _assert_batches_equal(record.batch, batch)
    if segment_bytes == 256 and len(expected) >= 6:
        # Tiny segments must actually have rotated (several small files).
        assert len(_list_segments(directory)) > 1


@settings(max_examples=20, deadline=None)
@given(batches=batch_lists)
def test_reopen_continues_sequence(tmp_path_factory, batches):
    """Reopening appends after the last on-disk record, never over it."""
    directory = tmp_path_factory.mktemp("wal")
    expected = [_batch(rows) for rows in batches]
    split = len(expected) // 2
    with WriteAheadLog(directory) as wal:
        for i, batch in enumerate(expected[:split]):
            wal.append(batch, now=float(i))
    with WriteAheadLog(directory) as wal:
        assert wal.last_seq == split - 1
        for i, batch in enumerate(expected[split:], start=split):
            assert wal.append(batch, now=float(i)) == i
    replayed = list(iter_wal(directory))
    assert len(replayed) == len(expected)
    for record, batch in zip(replayed, expected):
        _assert_batches_equal(record.batch, batch)


def test_start_seq_skips_replayed_prefix(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        for i in range(10):
            wal.append(_batch([(1, 2, float(i), ActionType.FOLLOW)]), now=float(i))
    tail = list(iter_wal(tmp_path, start_seq=7))
    assert [r.seq for r in tail] == [7, 8, 9]


# ----------------------------------------------------------------------
# Torn tails and corruption (fault injection)
# ----------------------------------------------------------------------


def _fill(directory, n=8) -> list[EventBatch]:
    batches = [_batch([(i, i + 1, float(i), ActionType.FOLLOW)]) for i in range(n)]
    with WriteAheadLog(directory) as wal:
        for i, batch in enumerate(batches):
            wal.append(batch, now=float(i))
    return batches


def _last_segment(directory):
    return _list_segments(directory)[-1][1]


def test_truncated_tail_recovers_to_last_intact_record(tmp_path):
    """A mid-record truncation (torn write) loses only the torn record."""
    _fill(tmp_path, n=6)
    path = _last_segment(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[:-3])
    with pytest.warns(RuntimeWarning, match="torn"):
        replayed = list(iter_wal(tmp_path))
    assert [r.seq for r in replayed] == [0, 1, 2, 3, 4]


def test_flipped_byte_stops_replay_at_crc(tmp_path):
    """Corruption inside the last record is caught by CRC, not parsed."""
    _fill(tmp_path, n=6)
    path = _last_segment(tmp_path)
    data = bytearray(path.read_bytes())
    data[-5] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.warns(RuntimeWarning, match="CRC mismatch"):
        replayed = list(iter_wal(tmp_path))
    assert [r.seq for r in replayed] == [0, 1, 2, 3, 4]


def test_reopen_truncates_torn_tail_and_appends(tmp_path):
    """Append-reopen over a torn tail truncates it, then reuses the seq."""
    _fill(tmp_path, n=6)
    path = _last_segment(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[:-3])
    with pytest.warns(RuntimeWarning, match="truncating torn WAL tail"):
        wal = WriteAheadLog(tmp_path)
    with wal:
        # Sequence 5's record was torn away, so 5 is reassigned.
        assert wal.last_seq == 4
        assert wal.append(_batch([(9, 9, 99.0, ActionType.FOLLOW)]), now=99.0) == 5
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the log must be clean again
        replayed = list(iter_wal(tmp_path))
    assert [r.seq for r in replayed] == [0, 1, 2, 3, 4, 5]
    assert replayed[-1].batch.actors[0] == 9


def test_garbage_length_header_rejected(tmp_path):
    """A header claiming an absurd length cannot crash the scanner."""
    _fill(tmp_path, n=3)
    path = _last_segment(tmp_path)
    with open(path, "ab") as handle:
        handle.write(struct.pack("<II", 0xFFFFFFF0, 0))
        handle.write(b"\x00" * 16)
    with pytest.warns(RuntimeWarning):
        replayed = list(iter_wal(tmp_path))
    assert [r.seq for r in replayed] == [0, 1, 2]


# ----------------------------------------------------------------------
# Segment GC
# ----------------------------------------------------------------------


def test_truncate_before_removes_only_covered_segments(tmp_path):
    with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
        for i in range(20):
            wal.append(_batch([(1, 2, float(i), ActionType.FOLLOW)]), now=float(i))
        assert len(_list_segments(tmp_path)) > 2
        wal.flush()  # iter_wal reads the disk, not the userspace buffer
        removed = wal.truncate_before(10)
        assert removed > 0
        # Everything from seq 10 on must still replay.
        tail = [r.seq for r in iter_wal(tmp_path, start_seq=10)]
        assert tail == list(range(10, 20))
    # The boundary segment may retain a prefix below 10; nothing above
    # the cut may be missing after reopening either.
    with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
        assert wal.last_seq == 19


def test_validation_errors():
    with pytest.raises(ValueError):
        WriteAheadLog("/tmp/unused-wal-x", segment_bytes=0)
    with pytest.raises(ValueError):
        WriteAheadLog("/tmp/unused-wal-x", fsync_every=0)
