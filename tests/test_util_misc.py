"""Unit tests for repro.util.timer, repro.util.memory, repro.util.rng."""

import time
from array import array

import pytest

from repro.util.memory import (
    MemoryEstimate,
    approx_bytes_of_int_list,
    format_bytes,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.timer import Stopwatch, format_duration


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert 0.005 < watch.elapsed < 1.0

    def test_stop_freezes_elapsed(self):
        watch = Stopwatch().start()
        first = watch.stop()
        time.sleep(0.005)
        assert watch.elapsed == first

    def test_resume_accumulates(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        watch.stop()
        watch.start()
        time.sleep(0.005)
        total = watch.stop()
        assert total >= 0.008

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expect",
        [
            (5e-9, "5.0ns"),
            (2.5e-6, "2.5us"),
            (3.2e-3, "3.20ms"),
            (1.5, "1.50s"),
            (180.0, "3.0min"),
        ],
    )
    def test_units(self, seconds, expect):
        assert format_duration(seconds) == expect

    def test_negative(self):
        assert format_duration(-1.5) == "-1.50s"


class TestFormatBytes:
    @pytest.mark.parametrize(
        "num,expect",
        [
            (512, "512B"),
            (2048, "2.00KiB"),
            (3 * 1024**2, "3.00MiB"),
            (5 * 1024**4, "5.00TiB"),
            (2 * 1024**5, "2.00PiB"),
        ],
    )
    def test_units(self, num, expect):
        assert format_bytes(num) == expect

    def test_negative(self):
        assert format_bytes(-2048) == "-2.00KiB"


class TestApproxBytes:
    def test_packed_array_is_8_bytes_per_element(self):
        packed = array("q", range(1000))
        size = approx_bytes_of_int_list(packed)
        # 8 bytes/element plus object header and growth slack.
        assert 8_000 <= size <= 9_000

    def test_python_list_costs_more(self):
        boxed = list(range(1000))
        packed = array("q", range(1000))
        assert approx_bytes_of_int_list(boxed) > approx_bytes_of_int_list(packed)


class TestMemoryEstimate:
    def test_linear_extrapolation(self):
        estimate = MemoryEstimate(measured_bytes=1_000, measured_scale=10)
        assert estimate.extrapolate(1_000) == pytest.approx(100_000)

    def test_describe_mentions_both_scales(self):
        estimate = MemoryEstimate(measured_bytes=2048, measured_scale=100)
        text = estimate.describe(1e8)
        assert "2.00KiB" in text and "1e+08" in text

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            MemoryEstimate(measured_bytes=10, measured_scale=0).extrapolate(5)


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_labels_give_independent_streams(self):
        a = make_rng(42, "graph")
        b = make_rng(42, "latency")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_derive_seed_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_multi_label_paths(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
