"""Batch/per-event equivalence: the batched hot path changes nothing.

The columnar ``process_batch`` path exists purely for throughput; this
module is the property-style guarantee that it is *semantics-preserving*:
random generated streams driven through ``MotifEngine.process`` one event
at a time and through ``process_batch`` at several batch sizes must yield
identical recommendation sequences (including provenance), identical
``DynamicEdgeIndex`` contents, and identical detector statistics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import bursty_workload, drive_stream
from repro.core import DetectionParams, EdgeEvent, EventBatch, MotifEngine
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)

BATCH_SIZES = [1, 2, 7, 64, 256]


def build_engine(snapshot, max_edges_per_target=None):
    return MotifEngine.from_snapshot(
        snapshot,
        DetectionParams(k=2, tau=300.0, max_trigger_sources=8),
        max_edges_per_target=max_edges_per_target,
        track_latency=False,
    )


def assert_equivalent(reference_engine, reference_recs, engine, recs):
    # Byte-identical recommendations, including the compare=False fields.
    assert recs == reference_recs
    assert [(r.via, r.action, r.motif) for r in recs] == [
        (r.via, r.action, r.motif) for r in reference_recs
    ]
    ref_d = reference_engine.dynamic_index
    got_d = engine.dynamic_index
    assert got_d._edges == ref_d._edges
    assert got_d.num_edges == ref_d.num_edges
    assert got_d.inserted_total == ref_d.inserted_total
    assert got_d.evicted_total == ref_d.evicted_total
    assert engine.detectors[0].stats == reference_engine.detectors[0].stats
    assert engine.stats.events_processed == reference_engine.stats.events_processed
    assert (
        engine.stats.recommendations_emitted
        == reference_engine.stats.recommendations_emitted
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    burst_actors=st.integers(4, 40),
    cap=st.one_of(st.none(), st.integers(2, 16)),
)
def test_random_streams_equivalent(seed, burst_actors, cap):
    """Random generated streams: per-event and batched paths agree exactly.

    The small id space forces repeated targets inside batches (exercising
    the distinct-target-run splitting) and the optional tiny per-target cap
    exercises the insert_batch cap fallback.
    """
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=150, mean_followings=8.0, seed=seed)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=150,
            duration=400.0,
            background_rate=0.5,
            bursts=(
                BurstSpec(
                    target=149, start=50.0, duration=60.0, num_actors=burst_actors
                ),
            ),
            seed=seed,
        )
    )
    reference = build_engine(snapshot, max_edges_per_target=cap)
    reference_recs = [rec for e in events for rec in reference.process(e)]
    for batch_size in (1, 3, 17):
        engine = build_engine(snapshot, max_edges_per_target=cap)
        recs = engine.process_stream(events, batch_size=batch_size)
        assert_equivalent(reference, reference_recs, engine, recs)


def test_bursty_workload_equivalent_across_batch_sizes():
    """The benchmark workload agrees at every swept batch size."""
    snapshot, events = bursty_workload(
        num_users=2_000, duration=300.0, background_rate=6.0, burst_actors=50
    )
    reference = MotifEngine.from_snapshot(
        snapshot, DetectionParams(k=3, tau=600.0), track_latency=False
    )
    reference_recs = drive_stream(reference, events)
    for batch_size in BATCH_SIZES:
        engine = MotifEngine.from_snapshot(
            snapshot, DetectionParams(k=3, tau=600.0), track_latency=False
        )
        recs = drive_stream(engine, events, batch_size=batch_size)
        assert_equivalent(reference, reference_recs, engine, recs)
    assert reference_recs, "workload never triggered; the test proves nothing"


def test_equal_timestamp_ties_are_exact():
    """Events landing on identical timestamps still match per-event output.

    Ties are where a naive whole-batch insert would diverge (a later
    same-time edge would leak into an earlier event's freshness window);
    the run splitting must prevent that.
    """
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=60, mean_followings=6.0, seed=3)
    )
    events = [
        EdgeEvent(10.0, actor, 59 if actor % 2 else 58) for actor in range(40)
    ] + [EdgeEvent(10.0, 40 + i, 59) for i in range(10)]
    reference = build_engine(snapshot)
    reference_recs = [rec for e in events for rec in reference.process(e)]
    for batch_size in (5, 50):
        engine = build_engine(snapshot)
        recs = engine.process_stream(events, batch_size=batch_size)
        assert_equivalent(reference, reference_recs, engine, recs)


def test_out_of_order_timestamps_equivalent():
    """Mildly reordered streams (queue jitter) stay exact."""
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=100, mean_followings=8.0, seed=9)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=100,
            duration=200.0,
            background_rate=2.0,
            bursts=(BurstSpec(target=99, start=20.0, duration=40.0, num_actors=25),),
            seed=9,
        )
    )
    # Swap neighbours to simulate modest queue reordering.
    for i in range(0, len(events) - 1, 2):
        events[i], events[i + 1] = events[i + 1], events[i]
    reference = build_engine(snapshot, max_edges_per_target=4)
    reference_recs = [rec for e in events for rec in reference.process(e)]
    engine = build_engine(snapshot, max_edges_per_target=4)
    recs = engine.process_stream(events, batch_size=16)
    assert_equivalent(reference, reference_recs, engine, recs)


def test_cluster_batched_equivalent():
    """The whole cluster stack (broker -> replicas -> partitions) agrees."""
    from repro.bench.workloads import bench_cluster

    snapshot, events = bursty_workload(
        num_users=1_500, duration=250.0, background_rate=5.0, burst_actors=40
    )
    reference = bench_cluster(snapshot, num_partitions=3, replication_factor=2)
    reference_recs = drive_stream(reference, events)
    batched = bench_cluster(snapshot, num_partitions=3, replication_factor=2)
    recs = drive_stream(batched, events, batch_size=32)
    assert recs == reference_recs
    assert [(r.via, r.action) for r in recs] == [
        (r.via, r.action) for r in reference_recs
    ]
    # Batched RPC accounting: one fan-out call per partition per batch.
    assert (
        batched.broker.stats.fan_out_calls
        < reference.broker.stats.fan_out_calls / 10
    )
    assert batched.broker.stats.events_routed == reference.broker.stats.events_routed


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(0, 5),  # actor
            st.integers(0, 3),  # target (tiny space forces repeats)
            st.floats(0.0, 100.0, allow_nan=False),  # timestamp
        ),
        max_size=40,
    ),
    cap=st.one_of(st.none(), st.integers(1, 4)),
    jitter=st.floats(0.0, 30.0),
)
def test_insert_batch_matches_sequential_inserts(data, cap, jitter):
    """DynamicEdgeIndex.insert_batch == insert()-per-event, on any batch.

    Covers repeated targets (grouping), tiny caps (the mid-batch overflow
    fallback), and timestamp jitter (the retention-skew fallback) — the
    grouped bulk path and both exact fallbacks must all land on identical
    index contents and counters.
    """
    from repro.graph import DynamicEdgeIndex

    events = [
        EdgeEvent(t + (jitter if i % 3 == 0 else 0.0), a, c)
        for i, (a, c, t) in enumerate(data)
    ]
    reference = DynamicEdgeIndex(retention=25.0, max_edges_per_target=cap)
    for e in events:
        reference.insert(e.actor, e.target, e.created_at, action=e.action)
    batched = DynamicEdgeIndex(retention=25.0, max_edges_per_target=cap)
    batched.insert_batch(EventBatch.from_events(events))
    assert batched._edges == reference._edges
    assert batched.num_edges == reference.num_edges
    assert batched.inserted_total == reference.inserted_total
    assert batched.evicted_total == reference.evicted_total


def test_fresh_sources_multi_matches_single_queries():
    """The grouped freshness query agrees with per-target fresh_sources."""
    from repro.graph import DynamicEdgeIndex

    index = DynamicEdgeIndex(retention=50.0)
    for i in range(30):
        index.insert(i % 7, i % 5, float(i), action=None)
    targets = [0, 1, 2, 3, 4, 99]
    nows = [29.0, 29.0, 40.0, 12.0, 29.0, 29.0]
    grouped = index.fresh_sources_multi(targets, nows, tau=20.0)
    for c, now, fresh in zip(targets, nows, grouped):
        assert fresh == index.fresh_sources(c, now=now, tau=20.0)
    # The raw representation carries the same edges in the same order.
    raw = index.fresh_sources_multi(targets, nows, tau=20.0, raw=True)
    for fresh, raw_fresh in zip(grouped, raw):
        assert [(e.timestamp, e.source, e.action) for e in fresh] == raw_fresh
    # min_count hides targets with fewer stored entries than the threshold,
    # never ones with more.
    thresholded = index.fresh_sources_multi(targets, nows, tau=20.0, min_count=3)
    for fresh, limited in zip(grouped, thresholded):
        if limited:
            assert limited == fresh
        else:
            assert len(fresh) < 3 or limited == fresh


def test_on_edge_only_detector_falls_back_to_exact_per_event_loop():
    """An engine hosting a detector without process_batch stays exact.

    Such a detector's on_edge may read D however it likes, so the engine
    must interleave insert and detection per event rather than pre-insert
    runs.  This detector reads D keyed by the event's *actor* — the access
    pattern run pre-insertion is not safe for — and must see identical
    state on both paths.
    """
    from repro.graph import build_follower_snapshot, DynamicEdgeIndex

    class ActorProbe:
        """Emits one pseudo-candidate per edge currently stored under the
        event's actor-as-target — sensitive to exact insert interleaving."""

        def __init__(self, dynamic_index):
            self._dynamic = dynamic_index
            self.name = "actor-probe"

        def on_edge(self, event, now=None):
            fresh = self._dynamic.fresh_sources(
                event.actor, now=event.created_at, tau=300.0
            )
            from repro.core import Recommendation

            return [
                Recommendation(
                    recipient=edge.source,
                    candidate=event.actor,
                    created_at=event.created_at,
                    motif="actor-probe",
                )
                for edge in fresh
            ]

    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=60, mean_followings=5.0, seed=21)
    )
    # Mutual same-timestamp actions inside one batch: with run
    # pre-insertion the first event's probe would see the second event's
    # edge (equal timestamp passes the freshness filter); the per-event
    # interleaving must not.
    events = [
        EdgeEvent(1.0, 1, 2),
        EdgeEvent(1.0, 2, 1),
        EdgeEvent(3.0, 1, 2),
        EdgeEvent(3.0, 3, 1),
        EdgeEvent(5.0, 1, 3),
    ]

    def build():
        static = build_follower_snapshot(snapshot)
        dynamic = DynamicEdgeIndex(retention=300.0)
        engine = MotifEngine(static, dynamic, [ActorProbe(dynamic)])
        return engine

    reference = build()
    reference_recs = [rec for e in events for rec in reference.process(e)]
    batched = build()
    recs = batched.process_stream(events, batch_size=5)
    assert recs == reference_recs
    assert batched.dynamic_index._edges == reference.dynamic_index._edges
    assert reference_recs, "probe never fired; the test proves nothing"


def test_process_batch_accepts_explicit_now():
    """A queue consumer's arrival clock flows through the batched path."""
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=80, mean_followings=8.0, seed=4)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=80,
            duration=100.0,
            background_rate=1.0,
            bursts=(BurstSpec(target=79, start=10.0, duration=20.0, num_actors=20),),
            seed=4,
        )
    )
    now = 120.0
    reference = build_engine(snapshot)
    reference_recs = [rec for e in events for rec in reference.process(e, now=now)]
    engine = build_engine(snapshot)
    recs = engine.process_batch(EventBatch.from_events(events), now=now)
    assert recs == reference_recs
