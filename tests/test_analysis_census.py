"""Tests for the classical batch motif census."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.census import (
    count_motifs,
    motif_significance,
    rewire_preserving_degrees,
)
from repro.graph import CsrGraph


def brute_force_counts(edges, num_nodes):
    """Independent O(n^3)-ish reference for tiny graphs."""
    edge_set = set(edges)
    wedges = diamonds = ffl = 0
    for a, b in edges:
        for b2, c in edges:
            if b2 == b:
                wedges += 1
                if (a, c) in edge_set:
                    ffl += 1
    # Diamonds: choose a, c and two distinct middles.
    for a in range(num_nodes):
        for c in range(num_nodes):
            middles = [
                b for b in range(num_nodes)
                if (a, b) in edge_set and (b, c) in edge_set
            ]
            m = len(middles)
            diamonds += m * (m - 1) // 2
    return wedges, diamonds, ffl


class TestCountMotifs:
    def test_figure1_fragment(self):
        # A1,A2,A3 = 0,1,2; B1,B2 = 3,4; C2 = 6 with both B's following C2.
        edges = [(0, 3), (1, 3), (1, 4), (2, 4), (3, 6), (4, 6)]
        counts = count_motifs(CsrGraph.from_edges(edges, num_nodes=8))
        # Wedges: every (a -> b -> c) path: A1-B1-C2, A2-B1-C2, A2-B2-C2,
        # A3-B2-C2 = 4.
        assert counts.wedges == 4
        # One diamond: A2 -> {B1, B2} -> C2.
        assert counts.diamonds == 1
        assert counts.feed_forward_triangles == 0

    def test_ffl(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        counts = count_motifs(CsrGraph.from_edges(edges))
        assert counts.feed_forward_triangles == 1
        assert counts.wedges == 1

    def test_empty_graph(self):
        counts = count_motifs(CsrGraph.from_edges([], num_nodes=4))
        assert counts == type(counts)(0, 0, 0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sets(
            st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=25,
        )
    )
    def test_matches_brute_force(self, edge_set):
        edges = sorted(edge_set)
        counts = count_motifs(CsrGraph.from_edges(edges, num_nodes=8))
        wedges, diamonds, ffl = brute_force_counts(edges, 8)
        assert counts.wedges == wedges
        assert counts.diamonds == diamonds
        assert counts.feed_forward_triangles == ffl


class TestRewiring:
    def test_degrees_preserved(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (1, 3)]
        graph = CsrGraph.from_edges(edges, num_nodes=4)
        rewired = rewire_preserving_degrees(graph, seed=4)
        assert list(rewired.out_degrees()) == list(graph.out_degrees())
        assert (
            list(rewired.transposed().out_degrees())
            == list(graph.transposed().out_degrees())
        )
        assert rewired.num_edges == graph.num_edges

    def test_no_self_loops_or_duplicates(self):
        edges = [(i, (i + 1) % 10) for i in range(10)] + [
            (i, (i + 3) % 10) for i in range(10)
        ]
        rewired = rewire_preserving_degrees(
            CsrGraph.from_edges(edges, num_nodes=10), seed=9
        )
        seen = set()
        for a, b in rewired.edges():
            assert a != b
            assert (a, b) not in seen
            seen.add((a, b))

    def test_structure_destroyed_on_structured_graph(self):
        # A bipartite-ish co-follow structure rich in diamonds.
        edges = []
        for a in range(6):
            for b in range(6, 10):
                edges.append((a, b))
        for b in range(6, 10):
            edges.append((b, 10))
        graph = CsrGraph.from_edges(edges, num_nodes=11)
        original = count_motifs(graph).diamonds
        rewired = count_motifs(
            rewire_preserving_degrees(graph, seed=1)
        ).diamonds
        assert rewired < original

    def test_tiny_graph_returned_as_is(self):
        graph = CsrGraph.from_edges([(0, 1)], num_nodes=2)
        assert rewire_preserving_degrees(graph, seed=0) is graph


class TestSignificance:
    def test_z_scores_on_structured_graph(self):
        edges = []
        for a in range(8):
            for b in (20, 21, 22):
                edges.append((a, b))
        for b in (20, 21, 22):
            for c in (30, 31):
                edges.append((b, c))
        graph = CsrGraph.from_edges(edges, num_nodes=32)
        results = {r.motif: r for r in motif_significance(graph, num_null_samples=5, seed=2)}
        assert results["diamonds"].observed > 0
        # Engineered co-following: diamonds should be enriched vs null.
        assert results["diamonds"].z_score > 1.0

    def test_requires_multiple_null_samples(self):
        graph = CsrGraph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        with pytest.raises(ValueError):
            motif_significance(graph, num_null_samples=1)

    def test_rigid_null_gives_finite_or_inf_z(self):
        graph = CsrGraph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        for result in motif_significance(graph, num_null_samples=3):
            _ = result.z_score  # must not raise
