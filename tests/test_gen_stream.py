"""Unit tests for the event-stream generator and canned scenarios."""

import pytest

from repro.core.events import ActionType
from repro.gen.scenarios import breaking_news, celebrity_join, quiet_day
from repro.gen.stream_gen import (
    BurstSpec,
    StreamConfig,
    burst_intensity,
    expected_background_events,
    generate_event_stream,
)


class TestBackgroundStream:
    def test_events_sorted_and_within_duration(self):
        config = StreamConfig(num_users=100, duration=100.0, background_rate=5.0, seed=1)
        events = generate_event_stream(config)
        times = [e.created_at for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)

    def test_poisson_volume_near_expectation(self):
        config = StreamConfig(num_users=100, duration=500.0, background_rate=4.0, seed=2)
        events = generate_event_stream(config)
        assert len(events) == pytest.approx(expected_background_events(config), rel=0.2)

    def test_no_self_edges(self):
        config = StreamConfig(num_users=50, duration=200.0, background_rate=5.0, seed=3)
        events = generate_event_stream(config)
        assert all(e.actor != e.target for e in events)

    def test_deterministic(self):
        config = StreamConfig(num_users=100, duration=50.0, background_rate=5.0, seed=4)
        assert generate_event_stream(config) == generate_event_stream(config)

    def test_zero_rate_no_background(self):
        config = StreamConfig(num_users=10, duration=10.0, background_rate=0.0, seed=5)
        assert generate_event_stream(config) == []


class TestBursts:
    def burst_config(self, **overrides):
        burst = BurstSpec(target=7, start=10.0, duration=20.0, num_actors=30)
        defaults = dict(
            num_users=200,
            duration=60.0,
            background_rate=0.0,
            bursts=(burst,),
            seed=6,
        )
        defaults.update(overrides)
        return StreamConfig(**defaults)

    def test_burst_hits_single_target_in_window(self):
        events = generate_event_stream(self.burst_config())
        assert len(events) == 30
        assert all(e.target == 7 for e in events)
        assert all(10.0 <= e.created_at <= 30.0 for e in events)

    def test_burst_actors_distinct(self):
        events = generate_event_stream(self.burst_config())
        actors = [e.actor for e in events]
        assert len(set(actors)) == len(actors)
        assert 7 not in actors

    def test_burst_action_type(self):
        burst = BurstSpec(
            target=3, start=0.0, duration=5.0, num_actors=5, action=ActionType.RETWEET
        )
        config = StreamConfig(
            num_users=50, duration=10.0, background_rate=0.0, bursts=(burst,), seed=7
        )
        events = generate_event_stream(config)
        assert all(e.action is ActionType.RETWEET for e in events)

    def test_burst_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="exceeds stream duration"):
            StreamConfig(
                num_users=50,
                duration=10.0,
                bursts=(BurstSpec(target=1, start=5.0, duration=10.0, num_actors=3),),
            )

    def test_burst_target_outside_id_space_rejected(self):
        with pytest.raises(ValueError, match="outside id space"):
            StreamConfig(
                num_users=50,
                duration=100.0,
                bursts=(BurstSpec(target=99, start=0.0, duration=1.0, num_actors=3),),
            )

    def test_burst_intensity(self):
        burst = BurstSpec(target=1, start=0.0, duration=10.0, num_actors=50)
        assert burst_intensity(burst) == 5.0


class TestScenarios:
    @pytest.mark.parametrize(
        "factory", [celebrity_join, breaking_news, quiet_day]
    )
    def test_scenario_well_formed(self, factory):
        scenario = factory(num_users=500)
        assert scenario.snapshot.num_users == 500
        assert scenario.name
        assert scenario.description
        times = [e.created_at for e in scenario.events]
        assert times == sorted(times)

    def test_celebrity_join_burst_targets_newcomer(self):
        scenario = celebrity_join(num_users=500, followers_in_first_hour=50)
        newcomer = 499
        hits = [e for e in scenario.events if e.target == newcomer]
        assert len(hits) >= 50

    def test_breaking_news_uses_retweets(self):
        scenario = breaking_news(num_users=500, retweeters=40)
        retweets = [e for e in scenario.events if e.action is ActionType.RETWEET]
        assert len(retweets) == 40

    def test_quiet_day_has_no_bursts(self):
        scenario = quiet_day(num_users=300)
        # No target should dominate the stream the way a burst target would.
        from collections import Counter

        counts = Counter(e.target for e in scenario.events)
        most_common = counts.most_common(1)[0][1]
        assert most_common < len(scenario.events) * 0.2
