"""Unit tests for the benchmark harness helpers."""

import json

import pytest

from repro.bench.report import ExperimentTable, Reporter, format_table
from repro.bench.workloads import (
    BENCH_PARAMS,
    bench_cluster,
    bench_engine,
    bursty_events,
    bursty_workload,
)


class TestExperimentTable:
    def test_add_row_and_note(self):
        table = ExperimentTable("E0", "demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_note("caveat")
        assert table.rows == [(1, "x")]
        assert table.notes == ["caveat"]

    def test_format_alignment(self):
        table = ExperimentTable("E0", "demo", ["metric", "value"])
        table.add_row("short", 1)
        table.add_row("a much longer metric name", 22)
        text = format_table(table)
        lines = text.splitlines()
        assert lines[0] == "[E0] demo"
        # Header and separator aligned to the widest cell.
        assert len(lines[1]) == len(lines[2])
        assert "a much longer metric name" in text

    def test_notes_rendered(self):
        table = ExperimentTable("E1", "t", ["x"])
        table.add_row(1)
        table.add_note("explain")
        assert "note: explain" in format_table(table)


class TestReporter:
    def test_tables_ordered_by_experiment_id(self):
        reporter = Reporter()
        reporter.table("E10", "ten", ["x"]).add_row(1)
        reporter.table("E2", "two", ["x"]).add_row(1)
        reporter.table("E1", "one", ["x"]).add_row(1)
        rendered = reporter.render()
        assert rendered.index("[E1]") < rendered.index("[E2]") < rendered.index("[E10]")

    def test_table_registration(self):
        reporter = Reporter()
        table = reporter.table("E1", "t", ["x"])
        assert reporter.tables == [table]


class TestWriteJson:
    def test_merges_by_params(self, tmp_path):
        first = Reporter()
        first.record("demo", {"cfg": 1}, {"events_per_sec": 10.0})
        first.record("demo", {"cfg": 2}, {"events_per_sec": 20.0})
        first.write_json(tmp_path)
        second = Reporter()
        second.record("demo", {"cfg": 2}, {"events_per_sec": 25.0})
        second.write_json(tmp_path)
        payload = json.loads((tmp_path / "BENCH_demo.json").read_text())
        by_cfg = {r["params"]["cfg"]: r["metrics"] for r in payload["results"]}
        assert by_cfg == {1: {"events_per_sec": 10.0}, 2: {"events_per_sec": 25.0}}

    def test_corrupt_existing_file_warns_and_rewrites(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text('{"benchmark": "demo", "results": [{"par')  # truncated
        reporter = Reporter()
        reporter.record("demo", {"cfg": 1}, {"events_per_sec": 10.0})
        with pytest.warns(UserWarning, match="corrupt"):
            written = reporter.write_json(tmp_path)
        assert written == [path]
        payload = json.loads(path.read_text())
        assert payload["results"] == [
            {"params": {"cfg": 1}, "metrics": {"events_per_sec": 10.0}}
        ]

    def test_wrong_shape_payload_warns_and_rewrites(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"benchmark": "demo", "results": "oops"}))
        reporter = Reporter()
        reporter.record("demo", {"cfg": 1}, {"x": 1})
        with pytest.warns(UserWarning, match="no usable"):
            reporter.write_json(tmp_path)
        assert json.loads(path.read_text())["results"] == [
            {"params": {"cfg": 1}, "metrics": {"x": 1}}
        ]

    def test_malformed_entries_dropped_but_rest_kept(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "demo",
                    "results": [
                        {"params": {"cfg": 1}, "metrics": {"x": 1}},
                        None,
                        {"metrics": {"x": 2}},
                    ],
                }
            )
        )
        reporter = Reporter()
        reporter.record("demo", {"cfg": 3}, {"x": 3})
        with pytest.warns(UserWarning, match="malformed"):
            reporter.write_json(tmp_path)
        payload = json.loads(path.read_text())
        assert [r["params"] for r in payload["results"]] == [{"cfg": 1}, {"cfg": 3}]


class TestWorkloads:
    def test_bursty_workload_deterministic(self):
        a_snap, a_events = bursty_workload(num_users=500, duration=60.0, seed=4)
        b_snap, b_events = bursty_workload(num_users=500, duration=60.0, seed=4)
        assert sorted(a_snap.follow_edges()) == sorted(b_snap.follow_edges())
        assert a_events == b_events

    def test_bursty_events_targets_high_ids(self):
        snapshot, events = bursty_workload(
            num_users=500, duration=60.0, background_rate=0.0, num_bursts=2
        )
        targets = {e.target for e in events}
        assert targets <= {499, 498}

    def test_bursty_events_matches_workload(self):
        snapshot, events = bursty_workload(num_users=400, duration=60.0, seed=8)
        regenerated = bursty_events(snapshot, duration=60.0, seed=8)
        assert regenerated == events

    def test_bench_engine_uses_default_caps(self):
        snapshot, _ = bursty_workload(num_users=300, duration=30.0)
        engine = bench_engine(snapshot)
        assert engine.detectors[0].params == BENCH_PARAMS
        assert engine.dynamic_index.max_edges_per_target is not None

    def test_bench_cluster_shape(self):
        snapshot, _ = bursty_workload(num_users=300, duration=30.0)
        cluster = bench_cluster(snapshot, num_partitions=3, replication_factor=2)
        assert cluster.broker.num_partitions == 3
        assert all(len(rs.replicas) == 2 for rs in cluster.replica_sets)


class TestAblationHarness:
    def test_interleaved_best_of_keeps_minimum_per_key(self):
        from repro.bench.workloads import interleaved_best_of

        times = {"a": iter([3.0, 1.0, 2.0]), "b": iter([5.0, 6.0, 4.0])}
        calls = []

        def runner(key):
            def run():
                calls.append(key)
                return next(times[key]), f"outcome-{key}"
            return run

        best, outcomes = interleaved_best_of(
            {"a": runner("a"), "b": runner("b")}, rounds=3
        )
        assert best == {"a": 1.0, "b": 4.0}
        assert outcomes == {"a": "outcome-a", "b": "outcome-b"}
        # Round-robin interleaving: a, b, a, b, ...
        assert calls == ["a", "b", "a", "b", "a", "b"]

    def test_assert_same_delivery_detects_divergence(self):
        from repro.bench.workloads import assert_same_delivery
        from repro.core import Recommendation
        from repro.delivery import DeliveryPipeline

        matching = DeliveryPipeline(filters=[])
        reference = DeliveryPipeline(filters=[])
        diverging = DeliveryPipeline(filters=[])
        for pipeline, candidate in ((matching, 2), (reference, 2), (diverging, 3)):
            pipeline.offer(Recommendation(1, candidate, created_at=0.0), now=1.0)
        assert_same_delivery(reference, matching)
        with pytest.raises(AssertionError):
            assert_same_delivery(reference, diverging)
