"""Unit + property + concurrency tests for the serving-tier read cache.

Three layers of guarantee:

* unit tests pin the merge semantics (replace-in-place, latest-wins
  dedup, top-k cut, growth) and the ingest adapters the delivery taps
  call;
* a Hypothesis property replays arbitrary update sequences against a
  dict-of-dicts reference fold and demands identical final contents;
* a threaded writer/reader test enforces the seqlock contract — every
  observed row is internally consistent (no torn reads) while the
  writer inserts, updates, and grows the table under the readers.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionType, EdgeEvent, Recommendation
from repro.core.recommendation import RecommendationBatch, RecommendationGroup
from repro.delivery.scoring import decayed_scores
from repro.serving import ServedRecommendation, ServingCache, ShardedServingCache


def update(cache, rows):
    """Apply ``[(user, candidate, score, created_at), ...]`` as one merge."""
    cache.update_columns(
        np.array([r[0] for r in rows], dtype=np.int64),
        np.array([r[1] for r in rows], dtype=np.int64),
        np.array([r[2] for r in rows], dtype=np.float64),
        np.array([r[3] for r in rows], dtype=np.float64),
    )


class TestMergeSemantics:
    def test_single_update_ranks_by_score_then_candidate(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 1.0, 0.0), (1, 11, 3.0, 0.0), (1, 12, 2.0, 0.0)])
        assert cache.get_recommendations(1) == [
            ServedRecommendation(11, 3.0, 0.0),
            ServedRecommendation(12, 2.0, 0.0),
        ]

    def test_score_tie_breaks_by_candidate_ascending(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 12, 1.0, 0.0), (1, 10, 1.0, 0.0), (1, 11, 1.0, 0.0)])
        assert [r.candidate for r in cache.get_recommendations(1)] == [10, 11]

    def test_same_candidate_replaces_in_place(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 3.0, 0.0), (1, 11, 2.0, 0.0)])
        update(cache, [(1, 10, 1.0, 5.0)])  # refresh demotes candidate 10
        assert cache.get_recommendations(1) == [
            ServedRecommendation(11, 2.0, 0.0),
            ServedRecommendation(10, 1.0, 5.0),
        ]

    def test_duplicate_rows_in_one_update_latest_wins(self):
        cache = ServingCache(k=2)
        # Positional order decides, not score: the later row replaces the
        # earlier one even though it scores lower.
        update(cache, [(1, 10, 9.0, 0.0), (1, 10, 1.0, 1.0)])
        assert cache.get_recommendations(1) == [ServedRecommendation(10, 1.0, 1.0)]

    def test_entries_below_cut_are_forgotten(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 1.0, 0.0), (1, 11, 2.0, 0.0)])
        update(cache, [(1, 12, 5.0, 1.0), (1, 13, 4.0, 1.0)])
        assert [r.candidate for r in cache.get_recommendations(1)] == [12, 13]
        # Candidate 11 fell off; demoting the newcomers cannot revive it.
        update(cache, [(1, 12, 0.5, 2.0), (1, 13, 0.4, 2.0)])
        assert [r.candidate for r in cache.get_recommendations(1)] == [12, 13]

    def test_untouched_users_unchanged(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 1.0, 0.0), (2, 20, 2.0, 0.0)])
        update(cache, [(2, 21, 3.0, 1.0)])
        assert cache.get_recommendations(1) == [ServedRecommendation(10, 1.0, 0.0)]
        assert [r.candidate for r in cache.get_recommendations(2)] == [21, 20]

    def test_read_k_caps_row_length(self):
        cache = ServingCache(k=3)
        update(cache, [(1, 10, 3.0, 0.0), (1, 11, 2.0, 0.0), (1, 12, 1.0, 0.0)])
        assert len(cache.get_recommendations(1, k=2)) == 2
        assert len(cache.get_recommendations(1, k=99)) == 3

    def test_miss_and_hit_rate(self):
        cache = ServingCache(k=2)
        assert cache.get_recommendations(5) == []
        update(cache, [(5, 10, 1.0, 0.0)])
        assert cache.get_recommendations(5) != []
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_empty_update_is_a_no_op(self):
        cache = ServingCache(k=2)
        cache.update_columns(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64), np.empty(0, np.float64),
        )
        assert cache.users_cached == 0 and cache.updates == 0

    def test_growth_past_initial_capacity(self):
        cache = ServingCache(k=2, capacity=8)
        update(cache, [(u, u + 1000, float(u), 0.0) for u in range(500)])
        assert cache.users_cached == 500
        for u in (0, 250, 499):
            assert cache.get_recommendations(u) == [
                ServedRecommendation(u + 1000, float(u), 0.0)
            ]

    def test_dump_round_trips_contents(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 1.0, 0.0), (2, 20, 2.0, 3.0)])
        assert cache.dump() == {
            1: [ServedRecommendation(10, 1.0, 0.0)],
            2: [ServedRecommendation(20, 2.0, 3.0)],
        }

    def test_bytes_per_user_positive_and_bounded(self):
        cache = ServingCache(k=2, capacity=64)
        update(cache, [(u, 1, 1.0, 0.0) for u in range(30)])
        assert cache.nbytes() > 0
        assert cache.bytes_per_user() == pytest.approx(cache.nbytes() / 30)


class TestIngestAdapters:
    def test_ingest_released_scores_by_witnesses_and_freshness(self):
        cache = ServingCache(k=2, half_life=100.0)
        recs = [
            Recommendation(recipient=1, candidate=7, created_at=0.0, via=(3, 4)),
            Recommendation(recipient=1, candidate=8, created_at=0.0, via=(3,)),
        ]
        cache.ingest_released(recs, now=100.0)
        expected = decayed_scores(
            np.array([2, 1], dtype=np.int64),
            np.array([0.0, 0.0]),
            100.0,
            100.0,
        )
        served = cache.get_recommendations(1)
        assert [r.candidate for r in served] == [7, 8]
        assert [r.score for r in served] == pytest.approx(expected.tolist())

    def test_ingest_batch_matches_released_equivalent(self):
        via = (31, 32, 33)
        recipients = np.array([1, 2, 5], dtype=np.int64)
        batch = RecommendationBatch(
            [RecommendationGroup(recipients, candidate=9, created_at=2.0, via=via)]
        )
        boxed = [
            Recommendation(recipient=int(r), candidate=9, created_at=2.0, via=via)
            for r in recipients
        ]
        columnar, reference = ServingCache(k=2), ServingCache(k=2)
        columnar.ingest_batch(batch, now=10.0)
        reference.ingest_released(boxed, now=10.0)
        assert columnar.dump() == reference.dump()

    def test_ingest_notifications_unwraps_recommendations(self):
        from repro.delivery.notifier import PushNotification

        cache = ServingCache(k=2)
        rec = Recommendation(recipient=4, candidate=6, created_at=1.0, via=(2,))
        cache.ingest_notifications(
            [PushNotification(recommendation=rec, delivered_at=2.0)], now=2.0
        )
        assert [r.candidate for r in cache.get_recommendations(4)] == [6]


class TestShardedServingCache:
    def test_routing_matches_unsharded_contents(self):
        rows = [(u, u % 7, float(u % 5), float(u % 3)) for u in range(200)]
        flat, sharded = ServingCache(k=2), ShardedServingCache(num_shards=4, k=2)
        update(flat, rows)
        update(sharded, rows)
        assert sharded.dump() == flat.dump()
        for u in range(200):
            assert sharded.get_recommendations(u) == flat.get_recommendations(u)

    def test_each_user_lives_on_exactly_one_shard(self):
        sharded = ShardedServingCache(num_shards=3, k=2)
        update(sharded, [(u, 1, 1.0, 0.0) for u in range(100)])
        assert sum(s.users_cached for s in sharded.shards) == 100
        assert sharded.users_cached == 100

    def test_aggregate_stats_sum_over_shards(self):
        sharded = ShardedServingCache(num_shards=2, k=2)
        update(sharded, [(1, 10, 1.0, 0.0)])
        sharded.get_recommendations(1)
        sharded.get_recommendations(999_999)
        assert sharded.hits == 1 and sharded.misses == 1
        assert sharded.hit_rate == 0.5
        assert sharded.nbytes() == sum(s.nbytes() for s in sharded.shards)

    def test_ingest_released_splits_by_recipient_hash(self):
        sharded = ShardedServingCache(num_shards=4, k=2)
        recs = [
            Recommendation(recipient=u, candidate=3, created_at=0.0, via=(9,))
            for u in range(50)
        ]
        sharded.ingest_released(recs, now=1.0)
        flat = ServingCache(k=2)
        flat.ingest_released(recs, now=1.0)
        assert sharded.dump() == flat.dump()

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            ShardedServingCache(num_shards=0)


class TestTTLEviction:
    @staticmethod
    def _reference_evict(dump, now, ttl):
        """The spec: filter-then-rebuild on the user's *newest* entry."""
        return {
            user: rows
            for user, rows in dump.items()
            if rows and max(r.created_at for r in rows) >= now - ttl
        }

    def test_evict_dormant_matches_filter_then_rebuild(self):
        rng = np.random.default_rng(3)
        cache = ServingCache(k=2, ttl=100.0)
        update(
            cache,
            [
                (u, int(rng.integers(0, 20)), float(rng.integers(1, 9)),
                 float(rng.integers(0, 300)))
                for u in range(120)
                for _ in range(int(rng.integers(1, 4)))
            ],
        )
        before = cache.dump()
        now = 250.0
        dropped = cache.evict_dormant(now)
        expected = self._reference_evict(before, now, 100.0)
        assert cache.dump() == expected
        assert dropped == len(before) - len(expected)
        assert dropped > 0  # created_at spans [0, 300): some are dormant
        assert cache.evictions == dropped

    def test_newest_entry_governs_dormancy(self):
        cache = ServingCache(k=2, ttl=100.0)
        # One stale entry plus one fresh entry: the user stays, whole row
        # intact — dormancy is per user, not per entry.
        update(cache, [(1, 10, 2.0, 0.0), (1, 11, 1.0, 190.0)])
        update(cache, [(2, 20, 1.0, 0.0)])
        assert cache.evict_dormant(now=200.0) == 1
        assert sorted(cache.dump()) == [1]
        assert len(cache.dump()[1]) == 2

    def test_evicted_user_is_a_miss_then_reinsertable(self):
        cache = ServingCache(k=2, ttl=50.0)
        update(cache, [(1, 10, 1.0, 0.0)])
        cache.evict_dormant(now=100.0)
        assert cache.get_recommendations(1) == []
        update(cache, [(1, 12, 3.0, 100.0)])
        assert [r.candidate for r in cache.get_recommendations(1)] == [12]

    def test_grow_path_reclaims_dormant_slots_before_doubling(self):
        cache = ServingCache(k=2, capacity=8, ttl=100.0)  # load cap: 4
        cache.update_columns(
            np.arange(4, dtype=np.int64),
            np.full(4, 7, np.int64),
            np.ones(4),
            np.zeros(4),
            now=0.0,
        )
        bytes_before = cache.nbytes()
        # Four more users at now=1000: reserve() must rebuild — and the
        # lazy keep hook vacates the four dormant users first, so the
        # survivors fit without the capacity doubling.
        cache.update_columns(
            np.arange(100, 104, dtype=np.int64),
            np.full(4, 8, np.int64),
            np.ones(4),
            np.full(4, 1_000.0),
            now=1_000.0,
        )
        assert cache.evictions == 4
        assert sorted(cache.dump()) == [100, 101, 102, 103]
        assert cache.nbytes() == bytes_before

    def test_evict_without_ttl_is_a_noop(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 1.0, 0.0)])
        assert cache.evict_dormant(now=1e9) == 0
        assert cache.users_cached == 1

    def test_sharded_eviction_sums_shards(self):
        sharded = ShardedServingCache(num_shards=3, k=2, ttl=10.0)
        update(sharded, [(u, 1, 1.0, 0.0) for u in range(30)])
        update(sharded, [(u, 1, 1.0, 100.0) for u in range(30, 40)])
        assert sharded.evict_dormant(now=100.0) == 30
        assert sharded.evictions == 30
        assert sharded.users_cached == 10

    def test_ttl_validated(self):
        with pytest.raises(ValueError):
            ServingCache(k=2, ttl=0.0)


class TestReadTimeRedecay:
    def test_scores_bitwise_match_shared_kernel(self):
        cache = ServingCache(k=2, half_life=300.0)
        rec = Recommendation(recipient=1, candidate=7, created_at=10.0, via=(1, 2, 3))
        cache.ingest_released([rec], now=20.0)
        later = 500.0
        [served] = cache.get_recommendations(1, now=later)
        expected = decayed_scores(
            np.array([3], dtype=np.int64), np.array([10.0]), later, 300.0
        )[0]
        assert served.score == expected  # bitwise: same kernel, same inputs
        assert served.candidate == 7 and served.created_at == 10.0

    def test_redecay_corrects_cross_refresh_staleness(self):
        # Two entries whose *stored* scores were frozen at different
        # refresh times: A's stale score still ranks it first, but at any
        # common now the fresher B wins — re-decay must flip the order.
        cache = ServingCache(k=2, half_life=300.0)
        cache.update_columns(
            np.array([1, 1], dtype=np.int64),
            np.array([10, 11], dtype=np.int64),
            np.array([5.0, 4.0]),          # stale-high A, fresh B
            np.array([0.0, 900.0]),
            witnesses=np.array([5, 4], dtype=np.int64),
        )
        assert [r.candidate for r in cache.get_recommendations(1)] == [10, 11]
        served = cache.get_recommendations(1, now=1_000.0)
        assert [r.candidate for r in served] == [11, 10]
        expected = decayed_scores(
            np.array([4, 5], dtype=np.int64),
            np.array([900.0, 0.0]),
            1_000.0,
            300.0,
        )
        assert [r.score for r in served] == expected.tolist()

    def test_unwitnessed_entries_redecay_as_one_witness(self):
        # update_columns without a witnesses column stores 1 per entry —
        # the same clamp floor the kernel applies — so re-decay of rows
        # that never carried corroboration is still well-defined.
        cache = ServingCache(k=2, half_life=100.0)
        update(cache, [(1, 10, 99.0, 50.0)])
        [served] = cache.get_recommendations(1, now=150.0)
        expected = decayed_scores(
            np.array([1], dtype=np.int64), np.array([50.0]), 150.0, 100.0
        )[0]
        assert served.score == expected

    def test_read_k_still_caps_after_rerank(self):
        cache = ServingCache(k=3, half_life=300.0)
        update(cache, [(1, 10, 3.0, 0.0), (1, 11, 2.0, 0.0), (1, 12, 1.0, 0.0)])
        assert len(cache.get_recommendations(1, k=2, now=10.0)) == 2

    def test_now_is_optional_and_preserves_stored_scores(self):
        cache = ServingCache(k=2)
        update(cache, [(1, 10, 3.5, 0.0)])
        assert cache.get_recommendations(1) == [ServedRecommendation(10, 3.5, 0.0)]


class TestWitnessPersistence:
    def test_state_round_trip_preserves_redecay(self):
        source = ServingCache(k=2, half_life=300.0)
        recs = [
            Recommendation(recipient=u, candidate=u % 5, created_at=float(u),
                           via=tuple(range(1 + u % 4)))
            for u in range(40)
        ]
        source.ingest_released(recs, now=50.0)
        restored = ServingCache(k=2, half_life=300.0)
        restored.load_state(source.state_arrays())
        assert restored.dump() == source.dump()
        for u in range(40):
            assert restored.get_recommendations(
                u, now=500.0
            ) == source.get_recommendations(u, now=500.0)

    def test_legacy_payload_without_witnesses_defaults_to_one(self):
        source = ServingCache(k=2, half_life=300.0)
        source.ingest_released(
            [Recommendation(recipient=1, candidate=7, created_at=0.0, via=(1, 2, 3))],
            now=10.0,
        )
        payload = source.state_arrays()
        del payload["witnesses"]  # pre-witness-column snapshot
        restored = ServingCache(k=2, half_life=300.0)
        restored.load_state(payload)
        [served] = restored.get_recommendations(1, now=100.0)
        expected = decayed_scores(
            np.array([1], dtype=np.int64), np.array([0.0]), 100.0, 300.0
        )[0]
        assert served.score == expected


# ----------------------------------------------------------------------
# Property: update_columns == a dict-of-dicts reference fold
# ----------------------------------------------------------------------

ROW = st.tuples(
    st.integers(0, 7),                       # user
    st.integers(0, 7),                       # candidate
    st.integers(0, 10).map(float),           # score (integral: no fp ties)
    st.integers(0, 10).map(float),           # created_at
)


def reference_fold(updates, k):
    """The spec: per update, merge touched users and keep their top-k."""
    state: dict[int, dict[int, tuple[float, float]]] = {}
    for rows in updates:
        touched: dict[int, dict[int, tuple[float, float]]] = {}
        for user, candidate, score, created in rows:
            merged = touched.setdefault(user, dict(state.get(user, {})))
            merged[candidate] = (score, created)  # later rows replace earlier
        for user, merged in touched.items():
            ranked = sorted(merged.items(), key=lambda kv: (-kv[1][0], kv[0]))
            state[user] = dict(ranked[:k])
    return {
        user: [
            ServedRecommendation(c, s, t)
            for c, (s, t) in sorted(entries.items(), key=lambda kv: (-kv[1][0], kv[0]))
        ]
        for user, entries in state.items()
        if entries
    }


@settings(max_examples=200, deadline=None)
@given(updates=st.lists(st.lists(ROW, min_size=1, max_size=12), max_size=8))
def test_update_columns_matches_reference_fold(updates):
    cache = ServingCache(k=2, capacity=8)
    for rows in updates:
        update(cache, rows)
    assert cache.dump() == reference_fold(updates, k=2)


# ----------------------------------------------------------------------
# Concurrency: no torn reads while the writer merges and grows
# ----------------------------------------------------------------------

class TestSeqlockUnderConcurrency:
    #: Sentinel invariant every write maintains: any consistent row obeys
    #: score == candidate * 0.5 and created_at == candidate * 2.0, so a
    #: torn read (candidate from one publish, score from another) is
    #: detectable from the returned values alone.
    SCORE_FACTOR = 0.5
    CREATED_FACTOR = 2.0

    def test_readers_never_observe_torn_rows(self):
        num_users = 400
        cache = ServingCache(k=2, capacity=16)  # small: grows under load
        stop = threading.Event()
        writer_error: list[BaseException] = []

        def writer():
            rng = np.random.default_rng(7)
            round_no = 0
            try:
                while not stop.is_set():
                    users = rng.integers(0, num_users, size=64)
                    candidates = (users * 3 + round_no) % 1000
                    update_rows = (
                        users.astype(np.int64),
                        candidates.astype(np.int64),
                        candidates * self.SCORE_FACTOR,
                        candidates * self.CREATED_FACTOR,
                    )
                    cache.update_columns(*update_rows)
                    round_no += 1
            except BaseException as error:
                writer_error.append(error)

        thread = threading.Thread(target=writer, name="serving-writer")
        thread.start()
        try:
            rng = np.random.default_rng(11)
            for _ in range(4_000):
                user = int(rng.integers(0, num_users))
                for rec in cache.get_recommendations(user):
                    assert rec.score == rec.candidate * self.SCORE_FACTOR
                    assert rec.created_at == rec.candidate * self.CREATED_FACTOR
        finally:
            stop.set()
            thread.join()
        assert not writer_error, f"writer failed: {writer_error[0]!r}"
        assert cache.users_cached > 0

    def test_wedged_writer_raises_instead_of_spinning_forever(self):
        cache = ServingCache(k=2)
        cache._version[0] = 1  # simulate a writer that died mid-rebuild
        with pytest.raises(RuntimeError, match="did not stabilize"):
            cache.get_recommendations(1)


# ----------------------------------------------------------------------
# The delivery-side taps feed the cache
# ----------------------------------------------------------------------

class TestDeliveryTaps:
    def _candidate_batch(self, recipients, candidate, created_at=0.0):
        from repro.streaming.consumer import CandidateBatch

        origin = EdgeEvent(created_at, 100, candidate, ActionType.FOLLOW)
        recommendations = RecommendationBatch(
            [
                RecommendationGroup(
                    np.array(recipients, dtype=np.int64),
                    candidate=candidate,
                    created_at=created_at,
                    via=(50,),
                )
            ]
        )
        return CandidateBatch(origin, recommendations, detection_seconds=0.0)

    def test_coalescer_inline_tap_mirrors_notifications(self):
        from repro.delivery import DeliveryPipeline, PushNotifier
        from repro.sim.des import DiscreteEventSimulator
        from repro.sim.metrics import LatencyBreakdown
        from repro.streaming.consumer import DeliveryCoalescer

        cache = ServingCache(k=2)
        notifications = []
        coalescer = DeliveryCoalescer(
            DiscreteEventSimulator(),
            DeliveryPipeline(filters=[], notifier=PushNotifier()),
            LatencyBreakdown(),
            notifications,
            batch_size=1,
            serving=cache,
        )
        coalescer(self._candidate_batch([1, 2], candidate=9), 0.0, 1.0)
        assert {n.recipient for n in notifications} == {1, 2}
        dump = cache.dump()
        assert {u: [r.candidate for r in row] for u, row in dump.items()} == {
            1: [9], 2: [9],
        }
        assert all(row[0].created_at == 0.0 for row in dump.values())

    def test_coalescer_flush_tap_mirrors_notifications(self):
        from repro.delivery import DeliveryPipeline, PushNotifier
        from repro.sim.des import DiscreteEventSimulator
        from repro.sim.metrics import LatencyBreakdown
        from repro.streaming.consumer import DeliveryCoalescer

        cache = ServingCache(k=2)
        sim = DiscreteEventSimulator()
        notifications = []
        coalescer = DeliveryCoalescer(
            sim,
            DeliveryPipeline(filters=[], notifier=PushNotifier()),
            LatencyBreakdown(),
            notifications,
            batch_size=3,
            serving=cache,
        )
        coalescer(self._candidate_batch([1, 2], candidate=7), 0.0, 1.0)
        assert cache.users_cached == 0  # nothing flushed yet
        coalescer(self._candidate_batch([5], candidate=8), 0.0, 2.0)
        assert coalescer.pending_batches == 0
        assert {(n.recipient, n.recommendation.candidate) for n in notifications} == {
            (1, 7), (2, 7), (5, 8),
        }
        dump = cache.dump()
        assert {u: [r.candidate for r in row] for u, row in dump.items()} == {
            1: [7], 2: [7], 5: [8],
        }

    def test_sharded_delivery_tap_feeds_shard_mirrored_cache(self):
        from repro.delivery import DeliveryPipeline, PushNotifier
        from repro.delivery.sharded import ShardedDeliveryPipeline

        num_shards = 2
        cache = ShardedServingCache(num_shards=num_shards, k=2)
        pipeline = ShardedDeliveryPipeline(
            num_shards=num_shards,
            pipeline_factory=lambda shard: DeliveryPipeline(
                filters=[], notifier=PushNotifier()
            ),
            serving_tap=cache.ingest_notifications,
        )
        try:
            batch = RecommendationBatch(
                [
                    RecommendationGroup(
                        np.arange(40, dtype=np.int64),
                        candidate=3,
                        created_at=0.0,
                        via=(9,),
                    )
                ]
            )
            delivered = pipeline.offer_batch(batch, now=1.0)
            assert len(delivered) == 40
            assert cache.users_cached == 40
            one = pipeline.offer(
                Recommendation(recipient=77, candidate=4, created_at=1.0, via=(9,)),
                now=2.0,
            )
            assert one is not None
            assert [r.candidate for r in cache.get_recommendations(77)] == [4]
        finally:
            pipeline.close()
