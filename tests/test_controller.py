"""Dynamics tests for the adaptive control plane (ops.controller).

The controller is pure decision logic over an injected actuation surface,
so most tests drive it with a recorder object and synthetic
:class:`LoadSignal`s — the interesting properties are *sequences*:
hysteresis must prevent flapping, escalation must grow the windows before
shedding, and recovery must release in the exact reverse order.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.delivery.pipeline import DeliveryPipeline
from repro.gen import (
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)
from repro.ops import (
    AdaptiveController,
    ControlMode,
    ControllerConfig,
    LoadSignal,
    MetricsRegistry,
    derive_promote_threshold,
)
from repro.ops.controller import PROMOTE_THRESHOLD_BOUNDS
from repro.sim.latency import FixedDelay
from repro.streaming import StreamingTopology

PARAMS = DetectionParams(k=2, tau=600.0)


class RecorderKnobs:
    """Actuation recorder standing in for the live topology adapter."""

    def __init__(self) -> None:
        self.calls: list[tuple] = []

    def set_detection_knobs(self, batch_size: int, max_wait: float) -> None:
        self.calls.append(("detection", batch_size, max_wait))

    def set_delivery_knobs(self, batch_size: int, max_wait: float) -> None:
        self.calls.append(("delivery", batch_size, max_wait))

    def set_shedding(self, active: bool) -> None:
        self.calls.append(("shed", active))


def make_controller(**overrides) -> tuple[AdaptiveController, RecorderKnobs]:
    defaults = dict(
        backlog_high=10, backlog_low=2, max_level=3,
        cooldown_ticks=1, recover_ticks=2,
    )
    defaults.update(overrides)
    knobs = RecorderKnobs()
    controller = AdaptiveController(knobs, config=ControllerConfig(**defaults))
    return controller, knobs


HOT = LoadSignal(transport_backlog=100)
CALM = LoadSignal(transport_backlog=0)


def drive(controller: AdaptiveController, signal: LoadSignal, ticks: int) -> None:
    for i in range(ticks):
        controller.tick(float(i), signal)


class TestControllerConfig:
    def test_knob_ladder_endpoints(self):
        config = ControllerConfig()
        assert config.knobs_at(0) == (
            config.batch_floor,
            config.wait_floor,
            config.delivery_batch_floor,
            config.delivery_wait_floor,
        )
        assert config.knobs_at(config.max_level) == (
            config.batch_ceiling,
            config.wait_ceiling,
            config.delivery_batch_ceiling,
            config.delivery_wait_ceiling,
        )

    def test_knob_ladder_monotone(self):
        config = ControllerConfig()
        rungs = [config.knobs_at(level) for level in range(config.max_level + 1)]
        for lower, upper in zip(rungs, rungs[1:]):
            assert all(a <= b for a, b in zip(lower, upper))

    def test_geometric_spacing_covers_orders_of_magnitude(self):
        # 1 -> 256 over 4 rungs: each escalation multiplies by 4.
        config = ControllerConfig(batch_floor=1, batch_ceiling=256, max_level=4)
        sizes = [config.knobs_at(level)[0] for level in range(5)]
        assert sizes == [1, 4, 16, 64, 256]

    def test_degenerate_ladder_floor_equals_ceiling(self):
        config = ControllerConfig(batch_floor=8, batch_ceiling=8)
        assert config.knobs_at(0)[0] == config.knobs_at(config.max_level)[0] == 8

    def test_level_out_of_range_rejected(self):
        config = ControllerConfig(max_level=4)
        with pytest.raises(ValueError):
            config.knobs_at(5)
        with pytest.raises(ValueError):
            config.knobs_at(-1)

    def test_watermarks_must_leave_a_band(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ControllerConfig(backlog_high=10, backlog_low=10)

    def test_ceiling_below_floor_rejected(self):
        with pytest.raises(ValueError):
            ControllerConfig(batch_floor=64, batch_ceiling=8)
        with pytest.raises(ValueError):
            ControllerConfig(wait_floor=1.0, wait_ceiling=0.5)


class TestLoadSignal:
    def test_pressure_excludes_self_inflicted_buffering(self):
        # The controller's own micro-batch buffers must not count as
        # pressure, or a post-burst partial batch would deadlock recovery.
        signal = LoadSignal(
            transport_backlog=3, queued_events=4,
            pending_events=500, pending_candidates=500,
        )
        assert signal.pressure == 7


class TestEscalation:
    def test_construction_applies_floor_knobs_and_releases_shed(self):
        controller, knobs = make_controller()
        floor = controller.config.knobs_at(0)
        assert knobs.calls == [
            ("detection", floor[0], floor[1]),
            ("delivery", floor[2], floor[3]),
            ("shed", False),
        ]
        assert controller.mode is ControlMode.LATENCY

    def test_hot_pressure_climbs_one_rung_per_cooldown(self):
        controller, _ = make_controller(cooldown_ticks=2, max_level=3)
        levels = []
        for i in range(8):
            controller.tick(float(i), HOT)
            levels.append(controller.level)
        # One escalation every cooldown_ticks, saturating at max_level.
        assert levels == [1, 1, 2, 2, 3, 3, 3, 3]
        assert controller.mode is ControlMode.THROUGHPUT
        assert controller.escalations == 3

    def test_saturated_ladder_without_slo_never_sheds(self):
        controller, knobs = make_controller(slo_p99=None)
        drive(controller, HOT, 50)
        assert controller.level == controller.config.max_level
        assert not controller.shedding
        assert ("shed", True) not in knobs.calls

    def test_windows_grow_before_shed_engages(self):
        controller, knobs = make_controller(slo_p99=1.0)
        breach = LoadSignal(transport_backlog=100, recent_p99=5.0)
        drive(controller, breach, 20)
        assert controller.shedding
        # Monotone order: every knob actuation precedes the shed engage
        # (calls[:3] are the constructor's floor apply + shed-off).
        engage_at = knobs.calls.index(("shed", True))
        assert all(
            call[0] in ("detection", "delivery")
            for call in knobs.calls[3:engage_at]
        )
        ceiling = controller.config.knobs_at(controller.config.max_level)
        assert ("detection", ceiling[0], ceiling[1]) in knobs.calls[:engage_at]

    def test_breach_alone_escalates_even_when_pressure_is_low(self):
        # A breached SLO with a drained queue still means the posture is
        # wrong (e.g. detection itself too slow) — the ladder climbs.
        controller, _ = make_controller(slo_p99=1.0)
        controller.tick(0.0, LoadSignal(transport_backlog=0, recent_p99=9.0))
        assert controller.level == 1

    def test_missing_p99_never_breaches(self):
        controller, _ = make_controller(slo_p99=0.001)
        drive(controller, LoadSignal(transport_backlog=0, recent_p99=None), 10)
        assert controller.level == 0
        assert not controller.shedding


class TestHysteresisAndRecovery:
    def test_band_pressure_holds_posture(self):
        controller, knobs = make_controller(backlog_high=10, backlog_low=2)
        controller.tick(0.0, HOT)
        assert controller.level == 1
        before = len(knobs.calls)
        drive(controller, LoadSignal(transport_backlog=5), 100)
        assert controller.level == 1
        assert len(knobs.calls) == before  # zero actuations while in band

    def test_band_pressure_resets_calm_credit(self):
        controller, _ = make_controller(recover_ticks=2)
        controller.tick(0.0, HOT)
        # calm, band, calm, band, ... never accumulates recover_ticks.
        for i in range(20):
            signal = CALM if i % 2 == 0 else LoadSignal(transport_backlog=5)
            controller.tick(float(i), signal)
        assert controller.level == 1
        assert controller.deescalations == 0

    def test_square_wave_load_does_not_flap(self):
        # Alternating hot/calm ticks: escalation may climb (hot ticks are
        # real pressure) but recovery needs recover_ticks *consecutive*
        # calm ticks, so the knobs never oscillate down and back up.
        controller, knobs = make_controller(
            max_level=3, cooldown_ticks=1, recover_ticks=4
        )
        for i in range(100):
            controller.tick(float(i), HOT if i % 2 == 0 else CALM)
        assert controller.deescalations == 0
        # Actuation budget: one initial apply + at most one per rung.
        detection_calls = [c for c in knobs.calls if c[0] == "detection"]
        assert len(detection_calls) <= 1 + controller.config.max_level

    def test_calm_deescalates_one_rung_per_recovery_window(self):
        controller, _ = make_controller(cooldown_ticks=1, recover_ticks=3)
        drive(controller, HOT, 3)
        assert controller.level == 3
        levels = []
        for i in range(12):
            controller.tick(float(i), CALM)
            levels.append(controller.level)
        assert levels == [3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0, 0]
        assert controller.deescalations == 3
        assert controller.mode is ControlMode.LATENCY

    def test_recovery_releases_shed_before_shrinking_windows(self):
        controller, knobs = make_controller(
            slo_p99=1.0, cooldown_ticks=1, recover_ticks=2
        )
        breach = LoadSignal(transport_backlog=100, recent_p99=5.0)
        drive(controller, breach, 10)
        assert controller.shedding
        marker = len(knobs.calls)
        drive(controller, CALM, 20)
        assert not controller.shedding
        assert controller.level == 0
        recovery = knobs.calls[marker:]
        # The first recovery actuation is the shed release; window
        # shrinks only follow it (mirror of the escalation order).
        assert recovery[0] == ("shed", False)
        assert ("shed", True) not in recovery

    def test_shed_holds_while_breach_persists(self):
        controller, _ = make_controller(slo_p99=1.0, recover_ticks=2)
        breach = LoadSignal(transport_backlog=100, recent_p99=5.0)
        drive(controller, breach, 10)
        assert controller.shedding
        # Pressure drained but p99 still over SLO: hold the shed posture.
        drive(controller, LoadSignal(transport_backlog=0, recent_p99=5.0), 10)
        assert controller.shedding
        assert controller.mode is ControlMode.SHED

    def test_counters_and_gauges_published(self):
        knobs = RecorderKnobs()
        registry = MetricsRegistry()
        controller = AdaptiveController(
            knobs,
            config=ControllerConfig(
                backlog_high=10, backlog_low=2, cooldown_ticks=1
            ),
            registry=registry,
        )
        controller.tick(0.0, HOT)
        snap = registry.snapshot()
        assert snap["controller_ticks"] == 1
        assert snap["controller_escalations"] == 1
        assert snap["controller_level"] == 1.0
        assert snap["controller_mode"] == 1.0  # THROUGHPUT
        assert snap["controller_pressure"] == 100.0
        assert snap["controller_recent_p99"] == -1.0  # None sentinel
        assert snap["controller_batch_size"] > 1.0

    def test_describe_summarizes_posture(self):
        controller, _ = make_controller()
        drive(controller, HOT, 2)
        text = controller.describe()
        assert "mode=throughput" in text
        assert "escalations=2" in text


class TestDerivePromoteThreshold:
    def write_record(self, tmp_path, entries=256, ring_speedup=4.0):
        payload = {
            "benchmark": "ingest",
            "results": [
                {
                    "params": {"workload": "viral-scan", "entries": entries},
                    "metrics": {"ring_speedup": ring_speedup},
                }
            ],
        }
        (tmp_path / "BENCH_ingest.json").write_text(json.dumps(payload))

    def test_crossover_from_recorded_ablation(self, tmp_path):
        self.write_record(tmp_path, entries=256, ring_speedup=4.0)
        assert derive_promote_threshold(tmp_path) == 64

    def test_clamped_to_operating_bounds(self, tmp_path):
        lo, hi = PROMOTE_THRESHOLD_BOUNDS
        self.write_record(tmp_path, entries=10**6, ring_speedup=2.0)
        assert derive_promote_threshold(tmp_path) == hi
        self.write_record(tmp_path, entries=64, ring_speedup=32.0)
        assert derive_promote_threshold(tmp_path) == lo

    def test_missing_file_falls_back(self, tmp_path):
        assert derive_promote_threshold(tmp_path, default=123) == 123

    def test_corrupt_json_falls_back(self, tmp_path):
        (tmp_path / "BENCH_ingest.json").write_text("{not json")
        assert derive_promote_threshold(tmp_path, default=123) == 123

    def test_ring_never_faster_falls_back(self, tmp_path):
        # speedup <= 1 means the measured crossover does not exist; the
        # derivation must not make the system worse than the static knob.
        self.write_record(tmp_path, entries=256, ring_speedup=0.8)
        assert derive_promote_threshold(tmp_path, default=160) == 160

    def test_no_viral_scan_row_falls_back(self, tmp_path):
        payload = {"results": [{"params": {"workload": "other"}, "metrics": {}}]}
        (tmp_path / "BENCH_ingest.json").write_text(json.dumps(payload))
        assert derive_promote_threshold(tmp_path, default=77) == 77

    def test_default_validated(self):
        with pytest.raises(ValueError):
            derive_promote_threshold(default=0)


@pytest.fixture(scope="module")
def equivalence_workload():
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=600, mean_followings=10.0, seed=23)
    )
    events = generate_event_stream(
        StreamConfig(num_users=600, duration=80.0, background_rate=3.0, seed=23)
    )
    return snapshot, events


class TestAdaptiveEquivalence:
    """An idle controller must be invisible: same notifications as static.

    When the pressure never reaches ``backlog_high`` and no SLO is set,
    the controller holds its level-0 floor posture for the whole run —
    which is exactly the static topology's per-event configuration — so
    the delivered multiset must match bit for bit, on every transport.
    """

    def run_topology(self, snapshot, events, transport, adaptive):
        cluster = Cluster.build(
            snapshot,
            PARAMS,
            ClusterConfig(num_partitions=2, transport=transport),
        )
        try:
            hops = {
                name: FixedDelay(0.5) for name in ("firehose", "fanout", "push")
            }
            config = None
            if adaptive:
                config = ControllerConfig(
                    backlog_high=10**9, backlog_low=10**8, slo_p99=None
                )
            topology = StreamingTopology(
                cluster,
                delivery=DeliveryPipeline(filters=[]),
                hop_models=hops,
                controller_config=config,
            )
            report = topology.run(list(events))
            controller = topology.controller
            return report, controller
        finally:
            cluster.close()

    @pytest.mark.parametrize("transport", ["inprocess", "process"])
    def test_idle_adaptive_matches_static_multiset(
        self, equivalence_workload, transport
    ):
        snapshot, events = equivalence_workload

        def multiset(report):
            return sorted(
                (
                    n.recommendation.created_at,
                    n.recipient,
                    n.recommendation.candidate,
                )
                for n in report.notifications
            )

        static, _ = self.run_topology(snapshot, events, transport, adaptive=False)
        adaptive, controller = self.run_topology(
            snapshot, events, transport, adaptive=True
        )
        assert controller is not None
        assert controller.escalations == 0
        assert controller.mode is ControlMode.LATENCY
        assert static.events_ingested == adaptive.events_ingested
        assert multiset(static) == multiset(adaptive)


class TestServingReadsInvisibleToControlPlane:
    """Point-query load must not perturb the push pipeline or controller.

    ``LoadSignal.pressure`` documents that serving reads are invisible by
    construction (no queue, no transport round-trip, no buffering); this
    pins it end to end: the same stream run with and without a live
    query load must produce identical notifications, identical cluster
    round-trips, and an identical controller posture history.
    """

    def run_topology(self, snapshot, events, query_qps):
        from repro.serving import ServingCache

        cluster = Cluster.build(
            snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        try:
            serving = None
            if query_qps is not None:
                serving = ServingCache(k=2)
            topology = StreamingTopology(
                cluster,
                delivery=DeliveryPipeline(filters=[]),
                hop_models={
                    name: FixedDelay(0.5)
                    for name in ("firehose", "fanout", "push")
                },
                controller_config=ControllerConfig(
                    backlog_high=10**9, backlog_low=10**8, slo_p99=None
                ),
                serving=serving,
                query_qps=query_qps,
                query_users=snapshot.num_users if query_qps else None,
            )
            report = topology.run(list(events))
            return report, topology
        finally:
            cluster.close()

    def test_query_load_changes_nothing_in_the_push_path(
        self, equivalence_workload
    ):
        snapshot, events = equivalence_workload

        def multiset(report):
            return sorted(
                (
                    n.recommendation.created_at,
                    n.recipient,
                    n.recommendation.candidate,
                )
                for n in report.notifications
            )

        quiet, quiet_top = self.run_topology(snapshot, events, query_qps=None)
        queried, queried_top = self.run_topology(snapshot, events, query_qps=64.0)

        load = queried_top.query_load
        assert load is not None and load.queries_issued > 0
        assert queried_top.serving.users_cached > 0
        # The read side really ran — and the push side never noticed.
        assert multiset(quiet) == multiset(queried)
        assert quiet.events_ingested == queried.events_ingested
        assert (
            quiet_top.consumer.cluster_calls
            == queried_top.consumer.cluster_calls
        )
        assert (
            quiet_top.controller.escalations
            == queried_top.controller.escalations
        )
        assert quiet_top.controller.level == queried_top.controller.level
