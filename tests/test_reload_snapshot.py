"""Live snapshot hot-reload and D checkpoint control messages, fleet-wide.

``Cluster.reload_snapshot`` historically only worked on the in-process
transport (worker-hosted partitions silently had no path for the new S
shards).  It now routes per-partition ``reload_static`` control messages
over whatever transport the fleet runs on, so these tests pin the paper's
"loaded into the system periodically" operation on a *live* worker fleet:
after an in-place reload, the running deployment must serve exactly what
a fresh deployment built from the new snapshot (with the same D) serves.

``checkpoint``/``load_dynamic`` — the durability tier's D capture and
restore — get the same treatment: a checkpoint taken over any transport
restores bitwise into any other.
"""

import os

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.gen import TwitterGraphConfig, generate_follow_graph

PARAMS = DetectionParams(k=2, tau=600.0)

TRANSPORTS = ["inprocess", "process", "shm"]


def _needs_shm(transport):
    if transport == "shm" and not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm")


def _snapshots():
    old = generate_follow_graph(
        TwitterGraphConfig(num_users=220, mean_followings=12.0, seed=11)
    )
    new = generate_follow_graph(
        TwitterGraphConfig(num_users=220, mean_followings=12.0, seed=29)
    )
    return old, new


def _stream(seed, n, start=0.0):
    rng = np.random.default_rng(seed)
    return [
        EdgeEvent(
            start + 0.25 * i,
            int(rng.integers(0, 180)),
            int(rng.integers(150, 220)),
        )
        for i in range(n)
    ]


def _triples(recommendations):
    return sorted(
        (rec.recipient, rec.candidate, rec.created_at)
        for rec in recommendations
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_live_fleet_serves_new_snapshot_after_inplace_reload(transport):
    """Hot reload on a live (possibly worker-hosted) fleet ≡ fresh build."""
    _needs_shm(transport)
    old_snap, new_snap = _snapshots()
    prefix = _stream(seed=1, n=120)
    suffix = _stream(seed=2, n=120, start=40.0)

    live = Cluster.build(
        old_snap,
        PARAMS,
        ClusterConfig(num_partitions=3, transport=transport),
    )
    try:
        for event in prefix:
            live.process_event(event)
        checkpoint = live.checkpoint_dynamic()
        assert checkpoint is not None
        # The operation under test: swap S in place, no restart, D kept.
        assert live.reload_snapshot(new_snap) == 3
        live_recs = [
            triple
            for event in suffix
            for triple in _triples(live.process_event(event))
        ]
    finally:
        live.close()

    reference = Cluster.build(
        new_snap, PARAMS, ClusterConfig(num_partitions=3)
    )
    restored_edges = reference.load_dynamic(checkpoint)
    assert restored_edges == len(checkpoint["targets"])
    ref_recs = [
        triple
        for event in suffix
        for triple in _triples(reference.process_event(event))
    ]
    assert live_recs == ref_recs
    assert live_recs  # the new graph must actually produce detections


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_checkpoint_restores_bitwise_across_transports(transport):
    """D checkpoint arrays round-trip exactly through load_dynamic."""
    _needs_shm(transport)
    old_snap, _ = _snapshots()
    source = Cluster.build(
        old_snap,
        PARAMS,
        ClusterConfig(num_partitions=2, transport=transport),
    )
    try:
        for event in _stream(seed=7, n=150):
            source.process_event(event)
        checkpoint = source.checkpoint_dynamic()
    finally:
        source.close()
    assert checkpoint is not None and len(checkpoint["targets"]) > 0

    target = Cluster.build(old_snap, PARAMS, ClusterConfig(num_partitions=2))
    target.load_dynamic(checkpoint)
    again = target.checkpoint_dynamic()
    assert set(again) == set(checkpoint)
    for name in checkpoint:
        np.testing.assert_array_equal(again[name], checkpoint[name])


def test_checkpoint_reaches_every_replica():
    """load_dynamic restores all replicas, not just the queried one."""
    old_snap, _ = _snapshots()
    cluster = Cluster.build(
        old_snap,
        PARAMS,
        ClusterConfig(num_partitions=2, replication_factor=2),
    )
    for event in _stream(seed=5, n=60):
        cluster.process_event(event)
    checkpoint = cluster.checkpoint_dynamic()

    restored = Cluster.build(
        old_snap,
        PARAMS,
        ClusterConfig(num_partitions=2, replication_factor=2),
    )
    restored.load_dynamic(checkpoint)
    for replica_set in restored.replica_sets:
        for replica in replica_set.replicas:
            index = replica.engine.dynamic_index
            assert index.num_edges == len(checkpoint["targets"])
