"""Full-stack integration tests: scenario -> queues -> cluster -> funnel.

These exercise the complete production path the way the end-to-end
example does, with assertions on cross-component invariants instead of
timings (the benchmarks own the timings).
"""

import pytest

from repro.baselines.batch import BatchDiamondDetector
from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.delivery import DedupFilter, DeliveryPipeline
from repro.gen import celebrity_join
from repro.ops import AdmissionController, AdmissionPolicy, ClusterMonitor
from repro.sim.latency import FixedDelay
from repro.streaming import StreamingTopology

PARAMS = DetectionParams(k=3, tau=3600.0)


@pytest.fixture(scope="module")
def scenario():
    return celebrity_join(num_users=1_500, followers_in_first_hour=120, seed=13)


@pytest.fixture(scope="module")
def cluster_factory(scenario):
    def build(**overrides):
        config = dict(num_partitions=3, replication_factor=2)
        config.update(overrides)
        return Cluster.build(scenario.snapshot, PARAMS, ClusterConfig(**config))

    return build


def fixed_hops(seconds=0.5):
    return {name: FixedDelay(seconds) for name in ("firehose", "fanout", "push")}


class TestFullStack:
    def test_candidates_match_batch_ground_truth(self, scenario, cluster_factory):
        """Queues + cluster + gather must not lose or invent candidates."""
        topology = StreamingTopology(
            cluster_factory(),
            delivery=DeliveryPipeline(filters=[]),
            hop_models=fixed_hops(),
        )
        report = topology.run(scenario.events)

        truth = BatchDiamondDetector(
            list(scenario.snapshot.follow_edges()), PARAMS
        ).run(scenario.events)
        want = sorted((c.time, c.recipient, c.candidate) for c in truth)
        got = sorted(
            (n.recommendation.created_at, n.recipient, n.recommendation.candidate)
            for n in report.notifications
        )
        assert got == want

    def test_dedup_delivers_distinct_pairs_exactly_once(self, scenario, cluster_factory):
        topology = StreamingTopology(
            cluster_factory(),
            delivery=DeliveryPipeline(filters=[DedupFilter(window=1e9)]),
            hop_models=fixed_hops(),
        )
        report = topology.run(scenario.events)
        pairs = [
            (n.recipient, n.recommendation.candidate)
            for n in report.notifications
        ]
        assert len(pairs) == len(set(pairs)), "dedup let a duplicate through"

        truth_pairs = BatchDiamondDetector(
            list(scenario.snapshot.follow_edges()), PARAMS
        ).distinct_pairs(scenario.events)
        assert set(pairs) == truth_pairs

    def test_monitor_stays_clean_through_the_run(self, scenario, cluster_factory):
        cluster = cluster_factory()
        topology = StreamingTopology(
            cluster, delivery=DeliveryPipeline(filters=[]), hop_models=fixed_hops()
        )
        topology.run(scenario.events)
        monitor = ClusterMonitor(cluster)
        assert monitor.alerts() == []
        health = monitor.poll()
        counts = {
            replica.events_processed
            for partition in health
            for replica in partition.replicas
        }
        assert counts == {len(scenario.events)}, (
            "every replica of every partition must consume the full stream"
        )

    def test_admission_control_sheds_under_overload(self, scenario, cluster_factory):
        admission = AdmissionController(
            rate=1.0, burst=10.0, policy=AdmissionPolicy.DROP
        )
        topology = StreamingTopology(
            cluster_factory(),
            delivery=DeliveryPipeline(filters=[]),
            hop_models=fixed_hops(),
            admission=admission,
        )
        report = topology.run(scenario.events)
        consumer = topology.consumer
        assert consumer.events_shed > 0
        assert consumer.events_consumed + consumer.events_shed == len(scenario.events)
        assert admission.shed_fraction() > 0.0
        # Shedding degrades recall but must never corrupt what survives.
        truth_pairs = BatchDiamondDetector(
            list(scenario.snapshot.follow_edges()), PARAMS
        ).distinct_pairs(scenario.events)
        got_pairs = {
            (n.recipient, n.recommendation.candidate)
            for n in report.notifications
        }
        # Every surviving recommendation must also exist in an unshedded
        # run... except pairs whose witness sets were altered by sheds.
        # The robust invariant: shedding can only reduce, never exceed,
        # the candidate volume of the unshedded run.
        assert len(got_pairs) <= len(truth_pairs)

    def test_replica_failure_and_resync_mid_stream(self, scenario, cluster_factory):
        cluster = cluster_factory()
        events = scenario.events
        third = len(events) // 3

        for event in events[:third]:
            cluster.process_event(event)
        cluster.replica_sets[0].mark_down(1)
        for event in events[third : 2 * third]:
            cluster.process_event(event)
        assert cluster.replica_sets[0].missed_events[1] == third
        cluster.replica_sets[0].resync(1)
        for event in events[2 * third :]:
            cluster.process_event(event)

        # After resync the repaired replica converges with its sibling.
        replica_set = cluster.replica_sets[0]
        d0 = replica_set.replicas[0].engine.dynamic_index
        d1 = replica_set.replicas[1].engine.dynamic_index
        assert d0.num_edges == d1.num_edges
        monitor = ClusterMonitor(cluster)
        assert not any("ALL REPLICAS DOWN" in a for a in monitor.alerts())
