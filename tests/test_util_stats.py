"""Unit + property tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, PercentileTracker, describe, percentile


class TestPercentile:
    def test_matches_numpy_on_small_input(self):
        values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
        for q in (0, 10, 50, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_element(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_median_between_min_and_max(self, values):
        ordered = sorted(values)
        median = percentile(ordered, 50)
        assert ordered[0] <= median <= ordered[-1]


class TestOnlineStats:
    def test_mean_and_variance_match_numpy(self):
        values = [1.0, 2.0, 2.0, 3.0, 8.0, -4.0]
        stats = OnlineStats()
        for v in values:
            stats.add(v)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(float(np.mean(values)))
        assert stats.variance == pytest.approx(float(np.var(values)))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_variance_zero_before_two_samples(self):
        stats = OnlineStats()
        assert stats.variance == 0.0
        stats.add(5.0)
        assert stats.variance == 0.0
        assert stats.stddev == 0.0

    def test_merge_equals_sequential(self):
        left_values = [1.0, 5.0, 2.5]
        right_values = [9.0, -2.0, 0.0, 4.0]
        left, right, both = OnlineStats(), OnlineStats(), OnlineStats()
        for v in left_values:
            left.add(v)
            both.add(v)
        for v in right_values:
            right.add(v)
            both.add(v)
        merged = left.merge(right)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean)
        assert merged.variance == pytest.approx(both.variance)
        assert merged.minimum == both.minimum
        assert merged.maximum == both.maximum

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.add(3.0)
        merged = stats.merge(OnlineStats())
        assert merged.count == 1
        assert merged.mean == 3.0

    @given(
        st.lists(st.floats(-1e3, 1e3), max_size=30),
        st.lists(st.floats(-1e3, 1e3), max_size=30),
    )
    def test_merge_commutative_in_mean(self, xs, ys):
        a, b = OnlineStats(), OnlineStats()
        for v in xs:
            a.add(v)
        for v in ys:
            b.add(v)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.count == ba.count
        if ab.count:
            assert ab.mean == pytest.approx(ba.mean, abs=1e-9)


class TestPercentileTracker:
    def test_exact_until_cap(self):
        tracker = PercentileTracker(max_samples=100)
        for i in range(100):
            tracker.add(float(i))
        assert tracker.is_exact
        assert tracker.median() == pytest.approx(49.5)
        assert tracker.percentile(99) == pytest.approx(98.01)

    def test_reservoir_beyond_cap_stays_close(self):
        tracker = PercentileTracker(max_samples=2_000, seed=7)
        for i in range(20_000):
            tracker.add(float(i))
        assert not tracker.is_exact
        assert len(tracker) == 20_000
        # Uniform data: the median estimate should land near 10_000.
        assert tracker.median() == pytest.approx(10_000, rel=0.10)

    def test_snapshot_keys(self):
        tracker = PercentileTracker()
        for v in (1.0, 2.0, 3.0):
            tracker.add(v)
        snap = tracker.snapshot()
        assert snap["count"] == 3
        assert snap["p50"] == 2.0
        assert snap["min"] == 1.0 and snap["max"] == 3.0

    def test_empty_snapshot_and_percentile(self):
        tracker = PercentileTracker()
        assert tracker.snapshot() == {"count": 0}
        with pytest.raises(ValueError):
            tracker.median()

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            PercentileTracker(max_samples=0)


class TestDescribe:
    def test_fields(self):
        d = describe([4.0, 1.0, 3.0, 2.0])
        assert d.count == 4
        assert d.minimum == 1.0 and d.maximum == 4.0
        assert d.mean == pytest.approx(2.5)
        assert d.p50 == pytest.approx(2.5)
        assert math.isfinite(d.stddev)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])
