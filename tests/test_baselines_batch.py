"""Tests for batch ground truth, including online/batch equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.batch import BatchDiamondDetector, batch_candidates
from repro.core.diamond import DiamondDetector
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex

from tests.conftest import A2, B1, B2, C2, FIGURE1_FOLLOWS


class TestBatchDetector:
    def test_figure1(self):
        events = [EdgeEvent(0.0, B1, C2), EdgeEvent(10.0, B2, C2)]
        found = batch_candidates(
            FIGURE1_FOLLOWS, events, DetectionParams(k=2, tau=600.0)
        )
        assert len(found) == 1
        assert found[0].recipient == A2
        assert found[0].candidate == C2
        assert found[0].time == 10.0

    def test_stale_edges_ignored(self):
        events = [EdgeEvent(0.0, B1, C2), EdgeEvent(601.0, B2, C2)]
        found = batch_candidates(
            FIGURE1_FOLLOWS, events, DetectionParams(k=2, tau=600.0)
        )
        assert found == []

    def test_events_sorted_internally(self):
        events = [EdgeEvent(10.0, B2, C2), EdgeEvent(0.0, B1, C2)]
        found = batch_candidates(
            FIGURE1_FOLLOWS, events, DetectionParams(k=2, tau=600.0)
        )
        assert len(found) == 1

    def test_distinct_pairs_dedups(self):
        follows = FIGURE1_FOLLOWS + [(A2, 20)]
        events = [
            EdgeEvent(0.0, B1, C2),
            EdgeEvent(1.0, B2, C2),
            EdgeEvent(2.0, 20, C2),  # re-fires for A2
        ]
        detector = BatchDiamondDetector(follows, DetectionParams(k=2, tau=600.0))
        assert len(detector.run(events)) == 2
        assert detector.distinct_pairs(events) == {(A2, C2)}


follow_edges = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    max_size=40,
)
event_streams = st.lists(
    st.tuples(
        st.floats(0, 100),
        st.integers(0, 12),
        st.integers(0, 12),
    ).filter(lambda e: e[1] != e[2]),
    max_size=40,
)


class TestOnlineBatchEquivalence:
    """The online detector must match the naive batch replay event-for-event.

    This is the strongest correctness statement in the suite: two
    independently-written implementations (sorted packed arrays + k-overlap
    kernels vs dicts-and-sets) must agree on arbitrary graphs and streams.
    """

    @staticmethod
    def run_online(follows, events, params):
        s = StaticFollowerIndex.from_follow_edges(follows)
        d = DynamicEdgeIndex(retention=params.tau)
        detector = DiamondDetector(s, d, params)
        out = []
        for event in sorted(events, key=lambda e: e.created_at):
            for rec in detector.on_edge(event):
                out.append((rec.created_at, rec.recipient, rec.candidate))
        return out

    @settings(max_examples=60, deadline=None)
    @given(follows=follow_edges, raw_events=event_streams, k=st.integers(1, 3))
    def test_equivalence(self, follows, raw_events, k):
        params = DetectionParams(k=k, tau=20.0)
        events = [EdgeEvent(t, b, c) for t, b, c in raw_events]
        online = self.run_online(follows, events, params)
        batch = [
            (c.time, c.recipient, c.candidate)
            for c in batch_candidates(follows, events, params)
        ]
        assert sorted(online) == sorted(batch)

    @settings(max_examples=30, deadline=None)
    @given(follows=follow_edges, raw_events=event_streams)
    def test_equivalence_with_filters_disabled(self, follows, raw_events):
        params = DetectionParams(
            k=2,
            tau=20.0,
            exclude_candidate_recipient=False,
            exclude_existing_followers=False,
        )
        events = [EdgeEvent(t, b, c) for t, b, c in raw_events]
        online = self.run_online(follows, events, params)
        batch = [
            (c.time, c.recipient, c.candidate)
            for c in batch_candidates(follows, events, params)
        ]
        assert sorted(online) == sorted(batch)
