"""Unit + property tests for candidate scoring and top-k selection.

The buffer is columnar (offers accumulate as numpy columns, flush runs a
vectorized per-recipient top-k); :func:`reference_flush` is the boxed
per-candidate model it must match — the dict-of-dicts implementation the
vectorized path replaced, kept here as the semantic oracle for winners,
tie-breaking, and flush order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recommendation import (
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.delivery import TopKPerUserBuffer, witness_score
from repro.delivery.scoring import decayed_scores


def rec(recipient=1, candidate=2, created_at=0.0, witnesses=3):
    return Recommendation(
        recipient=recipient,
        candidate=candidate,
        created_at=created_at,
        via=tuple(range(100, 100 + witnesses)),
    )


def reference_flush(offers, k, half_life, now):
    """The per-candidate reference: dict buffers + boxed sort at flush."""
    buffers: dict[int, dict[int, Recommendation]] = {}
    for offered in offers:
        per_user = buffers.setdefault(offered.recipient, {})
        existing = per_user.get(offered.candidate)
        if existing is None or len(offered.via) > len(existing.via):
            per_user[offered.candidate] = offered
    released = []
    for recipient in sorted(buffers):
        candidates = list(buffers[recipient].values())
        candidates.sort(
            key=lambda r: (-witness_score(r, now, half_life), r.candidate)
        )
        released.extend(candidates[:k])
    return released


class TestWitnessScore:
    def test_more_witnesses_score_higher(self):
        now = 0.0
        few = witness_score(rec(witnesses=3), now)
        many = witness_score(rec(witnesses=7), now)
        assert many > few

    def test_decays_with_half_life(self):
        fresh = witness_score(rec(created_at=0.0), now=0.0, half_life=100.0)
        aged = witness_score(rec(created_at=0.0), now=100.0, half_life=100.0)
        assert aged == pytest.approx(fresh / 2.0)

    def test_future_created_at_clamped(self):
        # Clock skew: a candidate "from the future" scores as fresh.
        score = witness_score(rec(created_at=50.0), now=0.0)
        assert score == witness_score(rec(created_at=0.0), now=0.0)

    def test_empty_via_scores_as_one_witness(self):
        bare = Recommendation(recipient=1, candidate=2, created_at=0.0)
        assert witness_score(bare, now=0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            witness_score(rec(), now=0.0, half_life=0.0)


class TestTopKPerUserBuffer:
    def test_releases_top_k_by_score(self):
        buffer = TopKPerUserBuffer(k=2)
        buffer.offer(rec(candidate=10, witnesses=3))
        buffer.offer(rec(candidate=11, witnesses=7))
        buffer.offer(rec(candidate=12, witnesses=5))
        released = buffer.flush(now=0.0)
        assert [r.candidate for r in released] == [11, 12]

    def test_users_independent(self):
        buffer = TopKPerUserBuffer(k=1)
        buffer.offer(rec(recipient=1, candidate=10))
        buffer.offer(rec(recipient=2, candidate=20))
        released = buffer.flush(now=0.0)
        assert {(r.recipient, r.candidate) for r in released} == {
            (1, 10), (2, 20),
        }

    def test_dedup_keeps_strongest_instance(self):
        buffer = TopKPerUserBuffer(k=5)
        buffer.offer(rec(candidate=10, witnesses=3))
        buffer.offer(rec(candidate=10, witnesses=8))  # re-fire, stronger
        buffer.offer(rec(candidate=10, witnesses=4))
        released = buffer.flush(now=0.0)
        assert len(released) == 1
        assert len(released[0].via) == 8
        assert buffer.pending() == 0

    def test_freshness_breaks_witness_ties(self):
        buffer = TopKPerUserBuffer(k=1, half_life=60.0)
        buffer.offer(rec(candidate=10, created_at=0.0, witnesses=4))
        buffer.offer(rec(candidate=11, created_at=300.0, witnesses=4))
        released = buffer.flush(now=300.0)
        assert released[0].candidate == 11  # same witnesses, much fresher

    def test_flush_clears_state(self):
        buffer = TopKPerUserBuffer(k=1)
        buffer.offer(rec())
        buffer.flush(now=0.0)
        assert buffer.flush(now=1.0) == []
        assert buffer.offered == 1

    @given(
        offers=st.lists(
            st.tuples(
                st.integers(0, 3),    # recipient
                st.integers(0, 10),   # candidate
                st.integers(1, 9),    # witnesses
            ),
            max_size=50,
        ),
        k=st.integers(1, 4),
    )
    def test_never_releases_more_than_k_per_user(self, offers, k):
        buffer = TopKPerUserBuffer(k=k)
        for recipient, candidate, witnesses in offers:
            buffer.offer(rec(recipient=recipient, candidate=candidate, witnesses=witnesses))
        released = buffer.flush(now=0.0)
        per_user: dict[int, int] = {}
        for r in released:
            per_user[r.recipient] = per_user.get(r.recipient, 0) + 1
        assert all(count <= k for count in per_user.values())
        # And no duplicate (recipient, candidate) pairs escape.
        pairs = [(r.recipient, r.candidate) for r in released]
        assert len(pairs) == len(set(pairs))


# ---------------------------------------------------------------------------
# Columnar flush == per-candidate reference (the vectorized-scoring oracle)
# ---------------------------------------------------------------------------

def group_strategy():
    """One detection group, tuned to collide recipients and candidates."""
    return st.builds(
        lambda recipients, candidate, created_at, witnesses: RecommendationGroup(
            recipients,
            candidate=candidate,
            created_at=created_at,
            via=tuple(range(200, 200 + witnesses)),
        ),
        recipients=st.lists(st.integers(0, 5), min_size=1, max_size=6),
        candidate=st.integers(0, 7),
        created_at=st.floats(0.0, 5_000.0, allow_nan=False),
        witnesses=st.integers(0, 5),
    )


def identity(recommendation):
    return (
        recommendation.recipient,
        recommendation.candidate,
        recommendation.created_at,
        recommendation.via,
    )


class TestColumnarFlushEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        batches=st.lists(
            st.lists(group_strategy(), min_size=0, max_size=4), min_size=1, max_size=4
        ),
        k=st.integers(1, 3),
        half_life=st.floats(10.0, 10_000.0, allow_nan=False),
        now=st.floats(0.0, 10_000.0, allow_nan=False),
    )
    def test_offer_batch_flush_matches_reference(self, batches, k, half_life, now):
        """Columnar accumulate + vectorized flush == dict model, exactly:
        same winners (including which duplicate instance won), same
        tie-breaking, same flush order."""
        buffer = TopKPerUserBuffer(k=k, half_life=half_life)
        boxed: list[Recommendation] = []
        for groups in batches:
            batch = RecommendationBatch(groups)
            buffer.offer_batch(batch)
            boxed.extend(batch)
        expected = reference_flush(boxed, k, half_life, now)
        assert buffer.offered == len(boxed)
        released = buffer.flush(now)
        assert [identity(r) for r in released] == [identity(r) for r in expected]
        assert buffer.pending() == 0

    @settings(max_examples=60, deadline=None)
    @given(
        offers=st.lists(
            st.tuples(
                st.integers(0, 4),
                st.integers(0, 6),
                st.integers(0, 5),
                st.floats(0.0, 1_000.0, allow_nan=False),
            ),
            max_size=40,
        ),
        groups=st.lists(group_strategy(), max_size=3),
        k=st.integers(1, 3),
    )
    def test_interleaved_scalar_and_batch_offers_match_reference(
        self, offers, groups, k
    ):
        """Scalar offers and columnar groups share one buffer; the global
        offer order decides which duplicate instance survives."""
        buffer = TopKPerUserBuffer(k=k)
        boxed: list[Recommendation] = []
        half = len(offers) // 2
        for recipient, candidate, witnesses, created_at in offers[:half]:
            offered = rec(
                recipient=recipient, candidate=candidate,
                created_at=created_at, witnesses=witnesses,
            )
            buffer.offer(offered)
            boxed.append(offered)
        batch = RecommendationBatch(groups)
        buffer.offer_batch(batch)
        boxed.extend(batch)
        for recipient, candidate, witnesses, created_at in offers[half:]:
            offered = rec(
                recipient=recipient, candidate=candidate,
                created_at=created_at, witnesses=witnesses,
            )
            buffer.offer(offered)
            boxed.append(offered)
        expected = reference_flush(boxed, k, 1_800.0, now=500.0)
        released = buffer.flush(now=500.0)
        assert [identity(r) for r in released] == [identity(r) for r in expected]

    def test_pending_counts_distinct_pairs_across_chunk_kinds(self):
        buffer = TopKPerUserBuffer(k=2)
        buffer.offer(rec(recipient=1, candidate=10))
        buffer.offer_batch(
            RecommendationBatch(
                [RecommendationGroup([1, 2], candidate=10, created_at=0.0)]
            )
        )
        assert buffer.pending() == 2  # (1, 10) deduped across chunk kinds
        assert buffer.offered == 3

    def test_scalar_score_matches_vectorized_bitwise(self):
        """witness_score delegates to the columnar kernel, so sort keys
        computed either way are bit-identical (numpy's SIMD exp2 does not
        round like libm pow in the last ulp — one code path, no ties
        broken differently)."""
        rng = np.random.default_rng(7)
        created = rng.uniform(0.0, 5_000.0, 500)
        witnesses = rng.integers(0, 9, 500)
        now, half_life = 5_100.0, 333.0
        vector = decayed_scores(witnesses, created, now, half_life)
        for i in range(500):
            boxed = Recommendation(
                recipient=1,
                candidate=2,
                created_at=float(created[i]),
                via=tuple(range(int(witnesses[i]))),
            )
            assert witness_score(boxed, now, half_life) == vector[i]


class TestArgpartitionPrecut:
    """The large-buffer argpartition pre-cut must be invisible in output."""

    @settings(max_examples=60, deadline=None)
    @given(
        batches=st.lists(
            st.lists(group_strategy(), min_size=0, max_size=4),
            min_size=1,
            max_size=4,
        ),
        k=st.integers(1, 3),
        now=st.floats(0.0, 10_000.0, allow_nan=False),
    )
    def test_precut_flush_matches_pure_lexsort(self, batches, k, now):
        plain = TopKPerUserBuffer(k=k, precut_threshold=10**9)
        precut = TopKPerUserBuffer(k=k, precut_threshold=1)
        for groups in batches:
            plain.offer_batch(RecommendationBatch(groups))
            precut.offer_batch(RecommendationBatch(groups))
        assert [identity(r) for r in precut.flush(now)] == [
            identity(r) for r in plain.flush(now)
        ]

    def test_precut_keeps_boundary_score_ties(self):
        # 6 candidates for one user, 4 tied at the cut score: the pre-cut
        # must keep every tied row so the candidate-id tie-break decides.
        buffer = TopKPerUserBuffer(k=2, precut_threshold=1)
        groups = [
            RecommendationGroup([1], candidate=c, created_at=0.0, via=(9,))
            for c in (15, 11, 13, 14, 12, 10)
        ]
        buffer.offer_batch(RecommendationBatch(groups))
        released = buffer.flush(now=0.0)
        assert [r.candidate for r in released] == [10, 11]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TopKPerUserBuffer(k=2, precut_threshold=0)
