"""Unit + property tests for candidate scoring and top-k selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.recommendation import Recommendation
from repro.delivery import TopKPerUserBuffer, witness_score


def rec(recipient=1, candidate=2, created_at=0.0, witnesses=3):
    return Recommendation(
        recipient=recipient,
        candidate=candidate,
        created_at=created_at,
        via=tuple(range(100, 100 + witnesses)),
    )


class TestWitnessScore:
    def test_more_witnesses_score_higher(self):
        now = 0.0
        few = witness_score(rec(witnesses=3), now)
        many = witness_score(rec(witnesses=7), now)
        assert many > few

    def test_decays_with_half_life(self):
        fresh = witness_score(rec(created_at=0.0), now=0.0, half_life=100.0)
        aged = witness_score(rec(created_at=0.0), now=100.0, half_life=100.0)
        assert aged == pytest.approx(fresh / 2.0)

    def test_future_created_at_clamped(self):
        # Clock skew: a candidate "from the future" scores as fresh.
        score = witness_score(rec(created_at=50.0), now=0.0)
        assert score == witness_score(rec(created_at=0.0), now=0.0)

    def test_empty_via_scores_as_one_witness(self):
        bare = Recommendation(recipient=1, candidate=2, created_at=0.0)
        assert witness_score(bare, now=0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            witness_score(rec(), now=0.0, half_life=0.0)


class TestTopKPerUserBuffer:
    def test_releases_top_k_by_score(self):
        buffer = TopKPerUserBuffer(k=2)
        buffer.offer(rec(candidate=10, witnesses=3))
        buffer.offer(rec(candidate=11, witnesses=7))
        buffer.offer(rec(candidate=12, witnesses=5))
        released = buffer.flush(now=0.0)
        assert [r.candidate for r in released] == [11, 12]

    def test_users_independent(self):
        buffer = TopKPerUserBuffer(k=1)
        buffer.offer(rec(recipient=1, candidate=10))
        buffer.offer(rec(recipient=2, candidate=20))
        released = buffer.flush(now=0.0)
        assert {(r.recipient, r.candidate) for r in released} == {
            (1, 10), (2, 20),
        }

    def test_dedup_keeps_strongest_instance(self):
        buffer = TopKPerUserBuffer(k=5)
        buffer.offer(rec(candidate=10, witnesses=3))
        buffer.offer(rec(candidate=10, witnesses=8))  # re-fire, stronger
        buffer.offer(rec(candidate=10, witnesses=4))
        released = buffer.flush(now=0.0)
        assert len(released) == 1
        assert len(released[0].via) == 8
        assert buffer.pending() == 0

    def test_freshness_breaks_witness_ties(self):
        buffer = TopKPerUserBuffer(k=1, half_life=60.0)
        buffer.offer(rec(candidate=10, created_at=0.0, witnesses=4))
        buffer.offer(rec(candidate=11, created_at=300.0, witnesses=4))
        released = buffer.flush(now=300.0)
        assert released[0].candidate == 11  # same witnesses, much fresher

    def test_flush_clears_state(self):
        buffer = TopKPerUserBuffer(k=1)
        buffer.offer(rec())
        buffer.flush(now=0.0)
        assert buffer.flush(now=1.0) == []
        assert buffer.offered == 1

    @given(
        offers=st.lists(
            st.tuples(
                st.integers(0, 3),    # recipient
                st.integers(0, 10),   # candidate
                st.integers(1, 9),    # witnesses
            ),
            max_size=50,
        ),
        k=st.integers(1, 4),
    )
    def test_never_releases_more_than_k_per_user(self, offers, k):
        buffer = TopKPerUserBuffer(k=k)
        for recipient, candidate, witnesses in offers:
            buffer.offer(rec(recipient=recipient, candidate=candidate, witnesses=witnesses))
        released = buffer.flush(now=0.0)
        per_user: dict[int, int] = {}
        for r in released:
            per_user[r.recipient] = per_user.get(r.recipient, 0) + 1
        assert all(count <= k for count in per_user.values())
        # And no duplicate (recipient, candidate) pairs escape.
        pairs = [(r.recipient, r.candidate) for r in released]
        assert len(pairs) == len(set(pairs))
