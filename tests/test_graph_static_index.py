"""Unit tests for the S structure (StaticFollowerIndex)."""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.static_index import StaticFollowerIndex

EDGES = [(0, 10), (1, 10), (2, 10), (2, 11), (3, 11), (0, 12)]


class TestConstruction:
    def test_inverts_follow_edges(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert list(index.followers_of(10)) == [0, 1, 2]
        assert list(index.followers_of(11)) == [2, 3]
        assert list(index.followers_of(12)) == [0]

    def test_unknown_target_is_empty(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert list(index.followers_of(999)) == []

    def test_duplicates_collapsed(self):
        index = StaticFollowerIndex.from_follow_edges([(1, 5), (1, 5), (1, 5)])
        assert list(index.followers_of(5)) == [1]
        assert index.num_edges == 1

    def test_lists_are_sorted_packed_arrays(self):
        index = StaticFollowerIndex.from_follow_edges([(9, 1), (3, 1), (7, 1)])
        followers = index.followers_of(1)
        assert isinstance(followers, array)
        assert list(followers) == [3, 7, 9]

    def test_counts(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert index.num_targets == 3
        assert index.num_edges == len(EDGES)

    def test_empty_index(self):
        index = StaticFollowerIndex.from_follow_edges([])
        assert index.num_targets == 0
        assert index.num_edges == 0
        assert not index.has_edge(0, 0)


class TestPartitionRestriction:
    def test_include_source_filters_a_side(self):
        evens = StaticFollowerIndex.from_follow_edges(
            EDGES, include_source=lambda a: a % 2 == 0
        )
        assert list(evens.followers_of(10)) == [0, 2]
        assert list(evens.followers_of(11)) == [2]

    def test_partitions_cover_everything_disjointly(self):
        full = StaticFollowerIndex.from_follow_edges(EDGES)
        parts = [
            StaticFollowerIndex.from_follow_edges(
                EDGES, include_source=lambda a, p=p: a % 2 == p
            )
            for p in range(2)
        ]
        for b in (10, 11, 12):
            union = sorted(
                a for part in parts for a in part.followers_of(b)
            )
            assert union == list(full.followers_of(b))


class TestInfluencerLimit:
    def test_limits_follows_per_source(self):
        # User 0 follows four accounts; cap at 2 keeps the two lowest ids
        # under uniform weights.
        edges = [(0, 10), (0, 11), (0, 12), (0, 13), (1, 13)]
        index = StaticFollowerIndex.from_follow_edges(edges, influencer_limit=2)
        kept = [b for b in (10, 11, 12, 13) if 0 in index.followers_of(b)]
        assert kept == [10, 11]
        # Other users unaffected.
        assert 1 in index.followers_of(13)

    def test_weighted_limit_keeps_top_weight(self):
        edges = [(0, 10), (0, 11), (0, 12)]
        weights = {(0, 10): 0.1, (0, 11): 0.9, (0, 12): 0.5}
        index = StaticFollowerIndex.from_follow_edges(
            edges,
            influencer_limit=2,
            edge_weight=lambda a, b: weights[(a, b)],
        )
        assert 0 in index.followers_of(11)
        assert 0 in index.followers_of(12)
        assert 0 not in index.followers_of(10)

    def test_limit_reduces_edges_and_memory(self):
        edges = [(0, b) for b in range(100)] + [(1, b) for b in range(100)]
        full = StaticFollowerIndex.from_follow_edges(edges)
        capped = StaticFollowerIndex.from_follow_edges(edges, influencer_limit=10)
        assert capped.num_edges == 20
        assert full.num_edges == 200
        assert capped.memory_bytes() < full.memory_bytes()

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            StaticFollowerIndex.from_follow_edges(EDGES, influencer_limit=0)


class TestHasEdge:
    def test_present_and_absent(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert index.has_edge(0, 10)
        assert index.has_edge(3, 11)
        assert not index.has_edge(3, 10)
        assert not index.has_edge(0, 999)

    @given(
        st.sets(
            st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=50
        )
    )
    def test_matches_edge_set(self, edge_set):
        index = StaticFollowerIndex.from_follow_edges(edge_set)
        for a in range(31):
            for b in range(31):
                assert index.has_edge(a, b) == ((a, b) in edge_set)


class TestAccounting:
    def test_membership_and_sources(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert 10 in index
        assert 999 not in index
        assert sorted(index.sources()) == [10, 11, 12]

    def test_degree_histogram(self):
        index = StaticFollowerIndex.from_follow_edges(EDGES)
        assert index.degree_histogram() == {3: 1, 2: 1, 1: 1}

    def test_memory_scales_with_edges(self):
        small = StaticFollowerIndex.from_follow_edges([(a, 0) for a in range(10)])
        large = StaticFollowerIndex.from_follow_edges(
            [(a, 0) for a in range(10_000)]
        )
        assert large.memory_bytes() > small.memory_bytes() * 100


class TestCsrFollowerIndex:
    """Unit coverage of the csr arena backend's own mechanics.

    Cross-backend equivalence on random graphs lives in
    ``tests/test_backend_equivalence.py``; these tests pin the arena
    layout, the zero-copy views, and the append-and-compact overlay.
    """

    def test_inverts_follow_edges(self):
        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex.from_follow_edges(EDGES)
        assert list(index.followers_of(10)) == [0, 1, 2]
        assert list(index.followers_of(11)) == [2, 3]
        assert list(index.followers_of(999)) == []
        assert index.num_edges == len(EDGES)
        assert index.num_targets == 3

    def test_followers_are_zero_copy_arena_slices(self):
        import numpy as np

        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex.from_follow_edges(EDGES)
        view = index.followers_of(10)
        assert isinstance(view, np.ndarray)
        assert view.base is index._arena  # a view, not a copy
        assert index.follower_array(10) is not None
        assert index.follower_array(999) is None

    def test_influencer_limit_applied(self):
        from repro.graph.static_index import CsrFollowerIndex

        edges = [(1, b) for b in range(10)]
        index = CsrFollowerIndex.from_follow_edges(edges, influencer_limit=3)
        assert index.num_edges == 3

    def test_append_visible_before_and_after_compact(self):
        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex.from_follow_edges(EDGES)
        added = index.append_follow_edges([(7, 10), (0, 10), (5, 99)])
        assert added == 2  # (0, 10) already loaded
        assert index.pending_edges == 2
        assert list(index.followers_of(10)) == [0, 1, 2, 7]
        assert list(index.followers_of(99)) == [5]
        assert index.has_edge(7, 10) and index.has_edge(5, 99)
        assert 99 in index
        assert index.num_edges == len(EDGES) + 2
        index.compact()
        assert index.pending_edges == 0
        assert list(index.followers_of(10)) == [0, 1, 2, 7]
        assert list(index.followers_of(99)) == [5]
        assert index.num_edges == len(EDGES) + 2

    def test_memory_smaller_than_packed(self):
        from repro.graph.static_index import CsrFollowerIndex

        edges = [(a, b) for b in range(200) for a in range(b % 17 + 1)]
        packed = StaticFollowerIndex.from_follow_edges(edges)
        csr = CsrFollowerIndex.from_follow_edges(edges)
        assert csr.memory_bytes() < packed.memory_bytes()


class TestCsrArenaSnapshots:
    def test_npz_round_trip_exact(self, tmp_path):
        from repro.graph.static_index import CsrFollowerIndex

        edges = [(a, b) for b in range(50) for a in range(b % 13 + 1)]
        index = CsrFollowerIndex.from_follow_edges(edges)
        path = tmp_path / "s_arena.npz"
        index.save_npz(path)
        loaded = CsrFollowerIndex.from_snapshot(path)

        assert loaded.num_targets == index.num_targets
        assert loaded.num_edges == index.num_edges
        assert sorted(loaded.sources()) == sorted(index.sources())
        for b in index.sources():
            assert list(loaded.followers_of(b)) == list(index.followers_of(b))
        assert loaded.has_edge(0, 1) == index.has_edge(0, 1)
        assert loaded.follower_array(999) is None
        # The loaded index still supports the append-and-compact overlay.
        loaded.append_follow_edges([(999, 1)])
        assert loaded.has_edge(999, 1)

    def test_save_compacts_pending_appends(self, tmp_path):
        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex.from_follow_edges(EDGES)
        index.append_follow_edges([(7, 10), (5, 99)])
        path = tmp_path / "s_arena.npz"
        index.save_npz(path)
        assert index.pending_edges == 0  # save compacted in place
        loaded = CsrFollowerIndex.from_snapshot(path)
        assert list(loaded.followers_of(10)) == [0, 1, 2, 7]
        assert list(loaded.followers_of(99)) == [5]

    def test_empty_index_round_trips(self, tmp_path):
        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex({})
        path = tmp_path / "empty.npz"
        index.save_npz(path)
        loaded = CsrFollowerIndex.from_snapshot(path)
        assert loaded.num_targets == 0
        assert loaded.follower_array(1) is None

    def test_suffixless_path_round_trips(self, tmp_path):
        from repro.graph.static_index import CsrFollowerIndex

        index = CsrFollowerIndex.from_follow_edges(EDGES)
        path = tmp_path / "s_arena"  # np.savez appends .npz on write
        index.save_npz(path)
        loaded = CsrFollowerIndex.from_snapshot(path)
        assert loaded.num_edges == index.num_edges
