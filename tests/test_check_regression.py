"""Unit tests for the CI benchmark regression gate."""

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def write_results(directory: Path, speedup: float, p99_ms: float = 1.0) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_demo.json").write_text(
        json.dumps(
            {
                "benchmark": "demo",
                "results": [
                    {
                        "params": {"cfg": "a"},
                        "metrics": {
                            "speedup_vs_batch1": speedup,
                            "p99_ms": p99_ms,
                            "events": 1000,
                        },
                    }
                ],
            }
        )
    )


class TestDirections:
    def test_metric_direction(self):
        assert check_regression.metric_direction("events_per_sec") == 1
        assert check_regression.metric_direction("speedup_vs_batch1") == 1
        assert check_regression.metric_direction("p99_ms") == -1
        assert check_regression.metric_direction("slowdown_vs_p1") == -1
        assert check_regression.metric_direction("csr_vs_packed_ratio") == -1
        assert check_regression.metric_direction("events") == 0
        # Descriptive ratios carry no quality direction -> never gated.
        assert check_regression.metric_direction("hot_over_cold_ratio") == 0

    def test_relative_markers(self):
        assert check_regression.is_relative("speedup_vs_batch1")
        assert check_regression.is_relative("slowdown_vs_p1")
        assert check_regression.is_relative("csr_vs_packed_ratio")
        assert not check_regression.is_relative("events_per_sec")


class TestGate:
    def test_passes_within_tolerance(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0)
        write_results(tmp_path / "fresh", speedup=3.5)
        code = check_regression.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "fresh"),
                "--tolerance", "0.25",
            ]
        )
        assert code == 0

    def test_fails_on_relative_regression(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0)
        write_results(tmp_path / "fresh", speedup=2.0)
        code = check_regression.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "fresh"),
                "--tolerance", "0.25",
            ]
        )
        assert code == 1

    def test_improvement_never_fails(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0, p99_ms=2.0)
        write_results(tmp_path / "fresh", speedup=9.0, p99_ms=0.5)
        code = check_regression.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "fresh"),
                "--absolute",
            ]
        )
        assert code == 0

    def test_absolute_mode_gates_latency(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0, p99_ms=1.0)
        write_results(tmp_path / "fresh", speedup=4.0, p99_ms=2.0)
        relative_only = check_regression.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert relative_only == 0  # p99 is absolute -> not gated by default
        absolute = check_regression.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "fresh"),
                "--absolute",
            ]
        )
        assert absolute == 1

    def test_missing_inputs_exit_2(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0)
        (tmp_path / "fresh").mkdir()
        code = check_regression.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert code == 2

    def test_unmeasured_configurations_are_skipped(self, tmp_path):
        write_results(tmp_path / "base", speedup=4.0)
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        (fresh / "BENCH_demo.json").write_text(
            json.dumps(
                {
                    "benchmark": "demo",
                    "results": [
                        {"params": {"cfg": "b"}, "metrics": {"speedup_vs_batch1": 1.0}}
                    ],
                }
            )
        )
        # No overlapping configuration -> nothing comparable -> exit 2, so
        # a silently-empty comparison can never masquerade as a pass.
        code = check_regression.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(fresh)]
        )
        assert code == 2
