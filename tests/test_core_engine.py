"""Unit tests for the single-machine MotifEngine."""

import pytest

from repro.core.diamond import DiamondDetector
from repro.core.engine import MotifEngine
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.snapshot import GraphSnapshot
from repro.graph.static_index import StaticFollowerIndex

from tests.conftest import A2, B1, B2, C2, FIGURE1_FOLLOWS


class TestFromSnapshot:
    def test_figure1_end_to_end(self, figure1_engine):
        assert figure1_engine.process(EdgeEvent(0.0, B1, C2)) == []
        recs = figure1_engine.process(EdgeEvent(10.0, B2, C2))
        assert [rec.recipient for rec in recs] == [A2]

    def test_default_params_are_production(self, figure1_snapshot):
        engine = MotifEngine.from_snapshot(figure1_snapshot)
        detector = engine.detectors[0]
        assert detector.params.k == 3

    def test_retention_defaults_to_tau(self, figure1_snapshot):
        engine = MotifEngine.from_snapshot(
            figure1_snapshot, DetectionParams(k=2, tau=123.0)
        )
        assert engine.dynamic_index.retention == 123.0

    def test_influencer_limit_passed_through(self):
        # User 1 follows both B's; a limit of 1 keeps only B1 -> no diamond.
        snap = GraphSnapshot.from_edges(FIGURE1_FOLLOWS, num_nodes=8)
        engine = MotifEngine.from_snapshot(
            snap, DetectionParams(k=2, tau=600.0), influencer_limit=1
        )
        engine.process(EdgeEvent(0.0, B1, C2))
        assert engine.process(EdgeEvent(1.0, B2, C2)) == []


class TestEngineMechanics:
    def test_single_insert_feeds_all_detectors(self):
        s = StaticFollowerIndex.from_follow_edges(FIGURE1_FOLLOWS)
        d = DynamicEdgeIndex(retention=600.0)
        detectors = [
            DiamondDetector(s, d, DetectionParams(k=2, tau=600.0), inserts_edges=False),
            DiamondDetector(s, d, DetectionParams(k=1, tau=600.0), inserts_edges=False),
        ]
        engine = MotifEngine(s, d, detectors)
        engine.process(EdgeEvent(0.0, B1, C2))
        assert d.inserted_total == 1  # one insert despite two programs

    def test_requires_a_detector(self):
        s = StaticFollowerIndex.from_follow_edges(FIGURE1_FOLLOWS)
        d = DynamicEdgeIndex(retention=600.0)
        with pytest.raises(ValueError):
            MotifEngine(s, d, [])

    def test_process_stream(self, figure1_engine):
        events = [EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)]
        recs = figure1_engine.process_stream(events)
        assert len(recs) == 1
        assert figure1_engine.stats.events_processed == 2
        assert figure1_engine.stats.recommendations_emitted == 1

    def test_latency_tracked(self, figure1_engine):
        figure1_engine.process(EdgeEvent(0.0, B1, C2))
        assert len(figure1_engine.stats.query_latency) == 1
        assert figure1_engine.stats.query_latency.stats.mean >= 0.0

    def test_latency_tracking_can_be_disabled(self, figure1_snapshot):
        engine = MotifEngine.from_snapshot(
            figure1_snapshot, DetectionParams(k=2, tau=600.0), track_latency=False
        )
        engine.process(EdgeEvent(0.0, B1, C2))
        assert len(engine.stats.query_latency) == 0

    def test_prune_delegates_to_dynamic_index(self, figure1_engine):
        figure1_engine.process(EdgeEvent(0.0, B1, C2))
        removed = figure1_engine.prune(now=10_000.0)
        assert removed == 1
        assert figure1_engine.dynamic_index.num_edges == 0

    def test_memory_report_keys(self, figure1_engine):
        report = figure1_engine.memory_bytes()
        assert set(report) == {"static_index", "dynamic_index"}
        assert report["static_index"] > 0
