"""Tests for diurnal background-rate modulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gen import StreamConfig, diurnal_rate_factor, generate_event_stream
from repro.gen.stream_gen import DIURNAL_TROUGH_HOUR, expected_background_events

DAY = 86_400.0


class TestDiurnalRateFactor:
    def test_trough_and_peak(self):
        trough = DIURNAL_TROUGH_HOUR * 3600.0
        peak = trough + DAY / 2
        assert diurnal_rate_factor(trough, amplitude=0.8) == pytest.approx(0.2)
        assert diurnal_rate_factor(peak, amplitude=0.8) == pytest.approx(1.0)

    def test_zero_amplitude_is_flat(self):
        for hour in range(24):
            assert diurnal_rate_factor(hour * 3600.0, 0.0) == 1.0

    def test_periodic_over_days(self):
        t = 7.5 * 3600.0
        assert diurnal_rate_factor(t, 0.5) == pytest.approx(
            diurnal_rate_factor(t + 3 * DAY, 0.5)
        )

    @given(
        t=st.floats(0, 10 * DAY),
        amplitude=st.floats(0.0, 1.0),
    )
    def test_bounded(self, t, amplitude):
        factor = diurnal_rate_factor(t, amplitude)
        assert 1.0 - amplitude - 1e-9 <= factor <= 1.0 + 1e-9


class TestDiurnalStream:
    def make(self, amplitude, seed=3):
        return generate_event_stream(
            StreamConfig(
                num_users=200,
                duration=2 * DAY,
                background_rate=0.5,
                diurnal_amplitude=amplitude,
                seed=seed,
            )
        )

    def test_night_quieter_than_day(self):
        events = self.make(amplitude=0.9)

        def in_window(event, start_hour, end_hour):
            hour = (event.created_at / 3600.0) % 24.0
            return start_hour <= hour < end_hour

        night = sum(1 for e in events if in_window(e, 2, 6))
        afternoon = sum(1 for e in events if in_window(e, 14, 18))
        assert afternoon > 2 * night

    def test_volume_matches_expectation(self):
        config = StreamConfig(
            num_users=200,
            duration=2 * DAY,
            background_rate=0.5,
            diurnal_amplitude=0.6,
            seed=5,
        )
        events = generate_event_stream(config)
        assert len(events) == pytest.approx(
            expected_background_events(config), rel=0.15
        )

    def test_flat_stream_unchanged_by_zero_amplitude(self):
        flat = self.make(amplitude=0.0)
        config = StreamConfig(
            num_users=200, duration=2 * DAY, background_rate=0.5, seed=3
        )
        assert flat == generate_event_stream(config)

    def test_amplitude_validation(self):
        with pytest.raises(ValueError, match="diurnal_amplitude"):
            StreamConfig(diurnal_amplitude=1.5)
