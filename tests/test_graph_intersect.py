"""Unit + property tests for the intersection / k-overlap kernels.

These kernels are the inner loop of motif detection; every algorithm must
agree with the obvious set-based reference on arbitrary inputs.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.intersect import (
    KOVERLAP_NUMPY_CROSSOVER,
    intersect_galloping,
    intersect_hash,
    intersect_many,
    intersect_merge,
    intersect_sorted,
    k_overlap,
    k_overlap_arrays,
    k_overlap_heap,
    k_overlap_numpy,
    k_overlap_scancount,
)

PAIR_ALGORITHMS = [
    intersect_merge,
    intersect_galloping,
    intersect_hash,
    intersect_sorted,
]

K_OVERLAP_ALGORITHMS = [
    k_overlap_scancount,
    k_overlap_heap,
    k_overlap_numpy,
    k_overlap,
]

sorted_ids = st.lists(
    st.integers(min_value=0, max_value=200), unique=True, max_size=60
).map(sorted)


def reference_intersection(lists):
    if not lists:
        return []
    common = set(lists[0])
    for other in lists[1:]:
        common &= set(other)
    return sorted(common)


def reference_k_overlap(lists, k):
    counts = {}
    for values in lists:
        for v in set(values):
            counts[v] = counts.get(v, 0) + 1
    return sorted(v for v, c in counts.items() if c >= k)


class TestPairwiseIntersection:
    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    def test_basic(self, algo):
        assert algo([1, 3, 5, 7], [3, 4, 5, 8]) == [3, 5]

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    def test_disjoint(self, algo):
        assert algo([1, 2], [3, 4]) == []

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    def test_empty_sides(self, algo):
        assert algo([], [1, 2]) == []
        assert algo([1, 2], []) == []
        assert algo([], []) == []

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    def test_identical(self, algo):
        assert algo([2, 4, 6], [2, 4, 6]) == [2, 4, 6]

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    def test_skewed_lengths(self, algo):
        short = [100, 5_000, 99_999]
        long_ = list(range(0, 100_000, 3))
        expected = sorted(set(short) & set(long_))
        assert algo(short, long_) == expected

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    @given(a=sorted_ids, b=sorted_ids)
    def test_matches_reference(self, algo, a, b):
        assert algo(a, b) == reference_intersection([a, b])

    @pytest.mark.parametrize("algo", PAIR_ALGORITHMS)
    @given(a=sorted_ids, b=sorted_ids)
    def test_commutative(self, algo, a, b):
        assert algo(a, b) == algo(b, a)

    def test_galloping_first_and_last_elements(self):
        # Regression guard for off-by-one at the gallop frontier.
        long_ = list(range(0, 1000))
        assert intersect_galloping([0], long_) == [0]
        assert intersect_galloping([999], long_) == [999]
        assert intersect_galloping([1000], long_) == []


class TestIntersectMany:
    def test_three_lists(self):
        lists = [[1, 2, 3, 9], [2, 3, 4, 9], [0, 3, 9]]
        assert intersect_many(lists) == [3, 9]

    def test_empty_input(self):
        assert intersect_many([]) == []

    def test_one_empty_list_kills_everything(self):
        assert intersect_many([[1, 2], [], [1]]) == []

    def test_single_list_copied(self):
        original = [1, 5]
        result = intersect_many([original])
        assert result == [1, 5]
        result.append(99)
        assert original == [1, 5]

    @given(st.lists(sorted_ids, min_size=1, max_size=5))
    def test_matches_reference(self, lists):
        assert intersect_many(lists) == reference_intersection(lists)


class TestKOverlap:
    @pytest.mark.parametrize("algo", K_OVERLAP_ALGORITHMS)
    def test_threshold_two_of_three(self, algo):
        lists = [[1, 2, 3], [2, 3, 4], [3, 4, 5]]
        assert algo(lists, 2) == [2, 3, 4]
        assert algo(lists, 3) == [3]

    @pytest.mark.parametrize("algo", K_OVERLAP_ALGORITHMS)
    def test_k_equals_one_is_union(self, algo):
        lists = [[1, 3], [2], [3]]
        assert algo(lists, 1) == [1, 2, 3]

    @pytest.mark.parametrize("algo", K_OVERLAP_ALGORITHMS)
    def test_k_above_list_count_raises(self, algo):
        with pytest.raises(ValueError, match="exceeds"):
            algo([[1], [2]], 3)

    @pytest.mark.parametrize("algo", K_OVERLAP_ALGORITHMS)
    def test_k_below_one_raises(self, algo):
        with pytest.raises(ValueError):
            algo([[1]], 0)

    @pytest.mark.parametrize("algo", K_OVERLAP_ALGORITHMS)
    def test_empty_lists_allowed(self, algo):
        assert algo([[], [1], [1]], 2) == [1]

    @pytest.mark.parametrize(
        "algo", [k_overlap_scancount, k_overlap_heap, k_overlap_numpy]
    )
    @given(
        lists=st.lists(sorted_ids, min_size=1, max_size=5),
        k_fraction=st.floats(0.01, 1.0),
    )
    def test_matches_reference(self, algo, lists, k_fraction):
        k = max(1, round(k_fraction * len(lists)))
        assert algo(lists, k) == reference_k_overlap(lists, k)

    @given(lists=st.lists(sorted_ids, min_size=1, max_size=4))
    def test_dispatch_k_equals_n_is_intersection(self, lists):
        assert k_overlap(lists, len(lists)) == reference_intersection(lists)

    def test_dispatch_large_input_uses_numpy_path(self):
        # Total size > the crossover exercises the numpy branch of k_overlap.
        lists = [list(range(0, 6000, 2)), list(range(0, 6000, 3))]
        expected = reference_k_overlap(lists, 1)
        assert k_overlap(lists, 1) == expected

    @pytest.mark.parametrize("offset", [-1, 0, 1])
    def test_dispatch_agrees_at_numpy_crossover_boundary(self, offset):
        """Both sides of the ScanCount/numpy crossover give identical results.

        Builds three lists (k=2 < len(lists), so the size-based dispatch —
        not the k == n intersection shortcut — runs) whose total length
        lands exactly on KOVERLAP_NUMPY_CROSSOVER + offset: offset <= 0
        takes the ScanCount branch, offset == 1 the numpy branch.
        """
        total = KOVERLAP_NUMPY_CROSSOVER + offset
        third = list(range(total // 2 - 8, total // 2 - 4))
        first = list(range(0, total // 2))
        second_len = total - len(first) - len(third)
        second = list(range(total // 2 - 10, total // 2 - 10 + second_len))
        lists = [first, second, third]
        assert sum(len(values) for values in lists) == total
        expected = reference_k_overlap(lists, 2)
        assert k_overlap(lists, 2) == expected
        assert k_overlap_scancount(lists, 2) == expected
        assert k_overlap_numpy(lists, 2) == expected
        # The overlap straddles the lists, so the result is non-trivial.
        assert expected

    @given(
        lists=st.lists(sorted_ids.filter(len), min_size=1, max_size=5),
        k_fraction=st.floats(0.01, 1.0),
    )
    def test_arrays_kernel_matches_reference(self, lists, k_fraction):
        """The batched detector's array kernel agrees with the others."""
        import numpy as np

        k = max(1, round(k_fraction * len(lists)))
        arrays = [np.asarray(values, dtype=np.int64) for values in lists]
        assert k_overlap_arrays(arrays, k).tolist() == reference_k_overlap(
            lists, k
        )

    @given(lists=st.lists(sorted_ids, min_size=2, max_size=5))
    def test_monotone_in_k(self, lists):
        """Raising k can only shrink the result set."""
        previous = None
        for k in range(1, len(lists) + 1):
            current = set(k_overlap(lists, k))
            if previous is not None:
                assert current <= previous
            previous = current
