"""Property tests for delivery-filter and queue/DES invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recommendation import Recommendation
from repro.delivery import DedupFilter, FatigueFilter, WakingHoursFilter
from repro.sim.des import DiscreteEventSimulator
from repro.sim.latency import FixedDelay
from repro.streaming import MessageQueue


def rec(recipient, candidate):
    return Recommendation(recipient=recipient, candidate=candidate, created_at=0.0)


offers = st.lists(
    st.tuples(
        st.integers(0, 5),      # recipient
        st.integers(0, 5),      # candidate
        st.floats(0, 10_000),   # offer time
    ),
    max_size=60,
)


class TestDedupProperties:
    @given(offers=offers, window=st.floats(1.0, 5_000.0))
    def test_no_pair_passes_twice_within_window(self, offers, window):
        dedup = DedupFilter(window=window)
        passed: list[tuple[int, int, float]] = []
        for recipient, candidate, t in sorted(offers, key=lambda o: o[2]):
            if dedup.allow(rec(recipient, candidate), now=t):
                passed.append((recipient, candidate, t))
        # Within any window, each pair appears at most once.
        for i, (r1, c1, t1) in enumerate(passed):
            for r2, c2, t2 in passed[i + 1 :]:
                if (r1, c1) == (r2, c2):
                    assert t2 - t1 >= window

    @given(offers=offers)
    def test_first_offer_of_each_pair_always_passes(self, offers):
        dedup = DedupFilter(window=1e9)
        seen: set[tuple[int, int]] = set()
        for recipient, candidate, t in sorted(offers, key=lambda o: o[2]):
            allowed = dedup.allow(rec(recipient, candidate), now=t)
            if (recipient, candidate) not in seen:
                assert allowed
                seen.add((recipient, candidate))
            else:
                assert not allowed


class TestFatigueProperties:
    @given(
        offers=offers,
        cap=st.integers(1, 4),
        window=st.floats(10.0, 5_000.0),
    )
    def test_cap_never_exceeded_in_any_window(self, offers, cap, window):
        fatigue = FatigueFilter(max_per_window=cap, window=window)
        delivered: dict[int, list[float]] = {}
        for recipient, candidate, t in sorted(offers, key=lambda o: o[2]):
            if fatigue.allow(rec(recipient, candidate), now=t):
                delivered.setdefault(recipient, []).append(t)
        for times in delivered.values():
            for i, start in enumerate(times):
                in_window = [t for t in times if start <= t < start + window]
                assert len(in_window) <= cap


class TestWakingProperties:
    @given(user=st.integers(0, 10_000), salt=st.integers(0, 100))
    def test_offsets_in_valid_range(self, user, salt):
        waking = WakingHoursFilter(timezone_salt=salt)
        assert -11 <= waking.timezone_offset_hours(user) <= 12

    @given(
        user=st.integers(0, 10_000),
        home=st.integers(-8, 8),
        spread=st.integers(0, 4),
    )
    def test_concentrated_offsets_near_home(self, user, home, spread):
        waking = WakingHoursFilter(
            home_offset_hours=home, offset_spread_hours=spread
        )
        offset = waking.timezone_offset_hours(user)
        assert home - spread <= offset <= home + spread

    @given(user=st.integers(0, 1_000), now=st.floats(0, 1e6))
    def test_awake_iff_local_hour_in_interval(self, user, now):
        waking = WakingHoursFilter(waking_start_hour=8, waking_end_hour=23)
        hour = waking.local_hour(user, now)
        assert waking.is_awake(user, now) == (8 <= hour < 23)

    @given(user=st.integers(0, 500))
    def test_awake_fraction_over_a_day(self, user):
        """Each user is awake for exactly the configured local interval."""
        waking = WakingHoursFilter(waking_start_hour=6, waking_end_hour=18)
        awake_hours = sum(
            waking.is_awake(user, h * 3600.0 + 1.0) for h in range(24)
        )
        assert awake_hours == 12


class TestQueueProperties:
    @given(
        items=st.lists(st.integers(), max_size=30),
        delay=st.floats(0.0, 100.0),
    )
    def test_exactly_once_delivery_per_subscriber(self, items, delay):
        sim = DiscreteEventSimulator()
        queue = MessageQueue(sim, "q", FixedDelay(delay))
        first: list[int] = []
        second: list[int] = []
        queue.subscribe(lambda item, pub, dlv: first.append(item))
        queue.subscribe(lambda item, pub, dlv: second.append(item))
        for item in items:
            queue.publish(item)
        sim.run()
        assert sorted(first) == sorted(items)
        assert sorted(second) == sorted(items)
        assert queue.stats.delivered == len(items)

    @given(
        schedule=st.lists(st.floats(0.0, 1_000.0), min_size=1, max_size=40)
    )
    def test_des_executes_in_nondecreasing_time(self, schedule):
        sim = DiscreteEventSimulator()
        executed: list[float] = []
        for t in schedule:
            sim.schedule_at(t, lambda t=t: executed.append(sim.clock.now()))
        sim.run()
        assert executed == sorted(executed)
        assert len(executed) == len(schedule)

    @settings(deadline=None)
    @given(
        delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20)
    )
    def test_chained_queues_accumulate_delay(self, delays):
        """An item relayed through N queues arrives after the delay sum."""
        sim = DiscreteEventSimulator()
        queues = [
            MessageQueue(sim, f"q{i}", FixedDelay(d))
            for i, d in enumerate(delays)
        ]
        for upstream, downstream in zip(queues, queues[1:]):
            upstream.subscribe(
                lambda item, pub, dlv, q=downstream: q.publish(item)
            )
        arrival: list[float] = []
        queues[-1].subscribe(lambda item, pub, dlv: arrival.append(dlv))
        queues[0].publish("x")
        sim.run()
        assert arrival[0] == sum(delays)
