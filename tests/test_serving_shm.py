"""In-worker serving over shared memory: cross-process contracts.

Four guarantees, each load-bearing for the worker serving mode:

* attach-by-spec readers see exactly the writer's contents across table
  growth (generation handoff), and keep working after the writer exits
  gracefully (pinned mappings survive the unlink);
* a reader *process* hammering point queries while the writer *process*
  merges and grows never observes a torn row — the cross-process flavor
  of the seqlock test in ``test_serving_cache.py``, with the same
  sentinel invariant;
* worker mode is observably identical to parent-side serving: the
  delivered multiset and the final serving contents match the inprocess
  reference exactly, on every transport;
* no /dev/shm segment outlives ``close()`` — including the data
  generations of a shard worker killed with SIGKILL, which never runs
  its own cleanup.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import shm_available
from repro.cluster.shm import sweep_segments
from repro.core.recommendation import RecommendationBatch, RecommendationGroup
from repro.delivery import DedupFilter, DeliveryPipeline, ShardedDeliveryPipeline
from repro.serving import (
    ServingCache,
    ServingCacheConfig,
    ServingCacheReader,
    ShardedServingCache,
    create_serving_arena,
)
from repro.util.procpool import default_start_method

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this host"
)

#: Transports that host shard workers in real processes.
WORKER_TRANSPORTS = ["process", "shm"]


def _segment_files(prefix: str) -> list[str]:
    """Every /dev/shm entry belonging to *prefix* (control + generations)."""
    return sorted(
        glob.glob(f"/dev/shm/{prefix}") + glob.glob(f"/dev/shm/{prefix}_g*")
    )


def _update(cache, rows):
    cache.update_columns(
        np.array([r[0] for r in rows], dtype=np.int64),
        np.array([r[1] for r in rows], dtype=np.int64),
        np.array([r[2] for r in rows], dtype=np.float64),
        np.array([r[3] for r in rows], dtype=np.float64),
    )


def _plain_pipeline(_shard: int) -> DeliveryPipeline:
    return DeliveryPipeline(filters=[])


def _dedup_pipeline(_shard: int) -> DeliveryPipeline:
    return DeliveryPipeline(filters=[DedupFilter()])


def _windows(seed: int, count: int = 4) -> list[RecommendationBatch]:
    rng = np.random.default_rng(seed)
    batches = []
    for w in range(count):
        groups = []
        for t in range(12):
            n = int(rng.integers(1, 30))
            groups.append(
                RecommendationGroup(
                    rng.integers(0, 120, n).astype(np.int64),
                    candidate=int(rng.integers(100, 115)),
                    created_at=float(w * 100 + t),
                    via=tuple(rng.integers(0, 50, 2).tolist()),
                )
            )
        batches.append(RecommendationBatch(groups))
    return batches


def _delivered_pairs(notifications):
    return sorted(
        (n.recipient, n.recommendation.candidate, n.recommendation.created_at)
        for n in notifications
    )


class TestArenaWriterReaderHandoff:
    def test_reader_tracks_writer_across_growth(self):
        spec = create_serving_arena(k=2, capacity=8)
        writer = ServingCache.attach_writer(spec)
        reader = ServingCacheReader(spec)
        try:
            for round_no in range(6):
                _update(
                    writer,
                    [
                        (u, u + 1000, float(u % 7), float(round_no))
                        for u in range(round_no * 50, round_no * 50 + 50)
                    ],
                )
                assert reader.dump() == writer.dump()
                assert reader.users_cached == writer.users_cached
            # 300 users from capacity 8: several doublings, each one a
            # fresh data generation the reader re-attached.
            assert reader.generation > 1
            assert reader.attaches > 1
            stats = reader.writer_stats()
            assert stats["updates"] == float(writer.updates)
            assert stats["rows_ingested"] == float(writer.rows_ingested)
        finally:
            final = writer.dump()
            reader.pin()  # keep the last generation mapped past the unlink
            writer.close()
            # Post-shutdown reads (CLI summaries, snapshots) still work.
            assert reader.dump() == final
            reader.reclaim_segments()
            reader.close()
            sweep_segments([spec.control_name])
        assert _segment_files(spec.control_name) == []

    def test_reader_before_first_generation_misses_cleanly(self):
        spec = create_serving_arena(k=2, capacity=8)
        reader = ServingCacheReader(spec)
        try:
            assert reader.get_recommendations(1) == []
            assert reader.users_cached == 0
            assert reader.dump() == {}
        finally:
            reader.close()
            sweep_segments([spec.control_name])

    def test_state_arrays_round_trip_into_heap_cache(self):
        spec = create_serving_arena(k=2, capacity=8)
        writer = ServingCache.attach_writer(spec)
        reader = ServingCacheReader(spec)
        try:
            _update(writer, [(u, u % 9, float(u % 5), 3.0) for u in range(70)])
            restored = ServingCache(k=2)
            restored.load_state(reader.state_arrays())
            assert restored.dump() == writer.dump()
        finally:
            reader.close()
            writer.close()
            sweep_segments([spec.control_name])


# ----------------------------------------------------------------------
# Cross-process seqlock: writer process vs reader process
# ----------------------------------------------------------------------

#: Same sentinel invariant as the threaded test: a torn row (candidate
#: from one publish, score/created_at from another) is detectable from
#: the returned values alone.
_SCORE_FACTOR = 0.5
_CREATED_FACTOR = 2.0


def _torn_read_writer(spec, stop, failed):
    """Child: merge rounds that preserve the invariant, forcing growth."""
    writer = ServingCache.attach_writer(spec)
    try:
        rng = np.random.default_rng(13)
        round_no = 0
        while not stop.is_set():
            users = rng.integers(0, 400, size=64).astype(np.int64)
            candidates = ((users * 3 + round_no) % 1000).astype(np.int64)
            writer.update_columns(
                users,
                candidates,
                candidates * _SCORE_FACTOR,
                candidates * _CREATED_FACTOR,
            )
            round_no += 1
    except BaseException:
        failed.set()
        raise
    finally:
        writer.close()


class TestCrossProcessSeqlock:
    def test_reader_process_never_observes_torn_rows(self):
        spec = create_serving_arena(k=2, capacity=16)  # small: grows live
        context = multiprocessing.get_context(default_start_method())
        stop, failed = context.Event(), context.Event()
        child = context.Process(
            target=_torn_read_writer, args=(spec, stop, failed)
        )
        child.start()
        reader = ServingCacheReader(spec)
        try:
            deadline = time.monotonic() + 10.0
            while reader.generation == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert reader.generation > 0, "writer never materialized a table"
            rng = np.random.default_rng(7)
            rows_seen = 0
            for _ in range(6_000):
                user = int(rng.integers(0, 400))
                for rec in reader.get_recommendations(user):
                    assert rec.score == rec.candidate * _SCORE_FACTOR
                    assert rec.created_at == rec.candidate * _CREATED_FACTOR
                    rows_seen += 1
            assert rows_seen > 0
            # Growth happened under the reader: 400 users never fit the
            # initial 16 slots.
            assert reader.generation > 1
        finally:
            reader.pin()
            stop.set()
            child.join(timeout=10.0)
        assert child.exitcode == 0
        assert not failed.is_set()
        reader.reclaim_segments()
        reader.close()
        sweep_segments([spec.control_name])
        assert _segment_files(spec.control_name) == []


# ----------------------------------------------------------------------
# Worker mode == parent-side serving, observably
# ----------------------------------------------------------------------

@pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
@pytest.mark.parametrize("num_shards", [1, 2])
class TestWorkerModeEquivalence:
    def test_delivered_and_served_match_inprocess_reference(
        self, transport, num_shards
    ):
        serving = ServingCacheConfig(k=2)
        reference = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_dedup_pipeline,
            transport="inprocess",
            serving=serving,
        )
        workers = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_dedup_pipeline,
            transport=transport,
            serving=serving,
        )
        control_names = [s.control_name for s in workers.serving.specs]
        try:
            expected, got = [], []
            for w, batch in enumerate(_windows(seed=21)):
                now = 50_000.0 + 1_000.0 * w
                expected.extend(reference.offer_batch(batch, now))
                got.extend(workers.offer_batch(batch, now))
            assert _delivered_pairs(got) == _delivered_pairs(expected)
            # The shard workers' arenas hold exactly what the parent-side
            # caches hold — scores, created_at, and ranking included.
            assert workers.serving.dump() == reference.serving.dump()
            assert workers.serving.users_cached == reference.serving.users_cached
        finally:
            workers.close()
            reference.close()
        for name in control_names:
            assert _segment_files(name) == []

    def test_scalar_offers_reach_the_worker_cache(self, transport, num_shards):
        from repro.core.recommendation import Recommendation

        workers = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_plain_pipeline,
            transport=transport,
            serving=ServingCacheConfig(k=2),
        )
        try:
            rec = Recommendation(
                recipient=77, candidate=4, created_at=1.0, via=(9, 11)
            )
            assert workers.offer(rec, now=2.0) is not None
            deadline = time.monotonic() + 10.0
            while (
                not workers.serving.get_recommendations(77)
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            row = workers.serving.get_recommendations(77)
            assert [r.candidate for r in row] == [4]
        finally:
            workers.close()

    def test_worker_snapshot_restores_into_heap_shards(
        self, transport, num_shards
    ):
        serving = ServingCacheConfig(k=2)
        workers = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_plain_pipeline,
            transport=transport,
            serving=serving,
        )
        try:
            for w, batch in enumerate(_windows(seed=22, count=2)):
                workers.offer_batch(batch, now=50_000.0 + 1_000.0 * w)
            payload = workers.serving.state_arrays()
            restored = ShardedServingCache(num_shards=num_shards, k=2)
            restored.load_state(payload)
            assert restored.dump() == workers.serving.dump()
        finally:
            workers.close()


# ----------------------------------------------------------------------
# Reclamation: nothing survives close(), even after kill -9
# ----------------------------------------------------------------------

class TestServingSegmentReclamation:
    @pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
    def test_sigkilled_worker_leaks_no_serving_segments(self, transport):
        # Tiny capacity: every window forces growth, so the dead worker
        # leaves multiple data generations for the parent to reclaim.
        workers = ShardedDeliveryPipeline(
            2,
            pipeline_factory=_plain_pipeline,
            transport=transport,
            serving=ServingCacheConfig(k=2, capacity=8),
        )
        control_names = [s.control_name for s in workers.serving.specs]
        try:
            batches = _windows(seed=23, count=3)
            workers.offer_batch(batches[0], now=50_000.0)
            victim = workers._workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=10.0)
            assert _segment_files(control_names[0]), (
                "the SIGKILLed worker should have left segments behind "
                "for close() to reclaim"
            )
            # The surviving shard keeps serving and ingesting.
            for w, batch in enumerate(batches[1:], start=1):
                workers.offer_batch(batch, now=50_000.0 + 1_000.0 * w)
        finally:
            workers.close()
        for name in control_names:
            assert _segment_files(name) == []

    def test_graceful_close_leaks_nothing(self):
        workers = ShardedDeliveryPipeline(
            2,
            pipeline_factory=_plain_pipeline,
            transport="shm",
            serving=ServingCacheConfig(k=2, capacity=8),
        )
        control_names = [s.control_name for s in workers.serving.specs]
        workers.offer_batch(_windows(seed=24, count=1)[0], now=50_000.0)
        summary = workers.serving.users_cached
        workers.close()
        assert summary > 0
        for name in control_names:
            assert _segment_files(name) == []
