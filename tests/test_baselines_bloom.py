"""Unit + property tests for the Bloom filter implementations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.bloom import (
    BloomFilter,
    CountingBloomFilter,
    optimal_num_bits,
    optimal_num_hashes,
)


class TestGeometry:
    def test_num_bits_grows_with_capacity(self):
        assert optimal_num_bits(10_000, 0.01) > optimal_num_bits(1_000, 0.01)

    def test_num_bits_grows_with_precision(self):
        assert optimal_num_bits(1_000, 0.001) > optimal_num_bits(1_000, 0.01)

    def test_classic_one_percent_geometry(self):
        # The textbook figure: ~9.6 bits per element at 1% FP.
        bits = optimal_num_bits(1_000, 0.01)
        assert 9_000 < bits < 10_100
        assert optimal_num_hashes(bits, 1_000) in (6, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_num_bits(0, 0.01)
        with pytest.raises(ValueError):
            optimal_num_bits(10, 0.0)
        with pytest.raises(ValueError):
            optimal_num_bits(10, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1_000, fp_rate=0.01)
        keys = list(range(0, 2_000, 2))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=2_000, fp_rate=0.01)
        for key in range(2_000):
            bloom.add(key)
        false_hits = sum(1 for probe in range(10_000, 30_000) if probe in bloom)
        rate = false_hits / 20_000
        assert rate < 0.03  # 3x slack over the 1% design point

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=100)
        assert all(key not in bloom for key in range(1_000))
        assert bloom.expected_fp_rate() == 0.0

    def test_expected_fp_rate_increases_with_fill(self):
        bloom = BloomFilter(capacity=100, fp_rate=0.01)
        rates = []
        for key in range(300):
            bloom.add(key)
            if key % 100 == 99:
                rates.append(bloom.expected_fp_rate())
        assert rates == sorted(rates)
        assert rates[-1] > 0.01  # overfilled past design capacity

    def test_memory_is_bit_array_size(self):
        bloom = BloomFilter(capacity=1_000, fp_rate=0.01)
        assert bloom.memory_bytes() == (bloom.num_bits + 7) // 8

    @given(st.sets(st.integers(0, 10_000), max_size=200))
    def test_membership_superset_property(self, keys):
        bloom = BloomFilter(capacity=max(len(keys), 1), fp_rate=0.05)
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)
        assert len(bloom) == len(keys)


class TestCountingBloomFilter:
    def test_counts_never_underestimate(self):
        counting = CountingBloomFilter(capacity=500, fp_rate=0.01)
        for _ in range(3):
            counting.increment(42)
        counting.increment(7)
        assert counting.estimate(42) >= 3
        assert counting.estimate(7) >= 1

    def test_unseen_key_usually_zero(self):
        counting = CountingBloomFilter(capacity=5_000, fp_rate=0.01)
        for key in range(100):
            counting.increment(key)
        zeros = sum(1 for probe in range(10_000, 11_000) if counting.estimate(probe) == 0)
        assert zeros > 950

    def test_increment_returns_running_estimate(self):
        counting = CountingBloomFilter(capacity=100)
        assert counting.increment(5) == 1
        assert counting.increment(5) == 2

    def test_saturation(self):
        counting = CountingBloomFilter(capacity=10)
        for _ in range(300):
            counting.increment(1)
        assert counting.estimate(1) == CountingBloomFilter.MAX_COUNT

    def test_memory_is_8x_plain_bloom(self):
        plain = BloomFilter(capacity=1_000, fp_rate=0.01)
        counting = CountingBloomFilter(capacity=1_000, fp_rate=0.01)
        ratio = counting.memory_bytes() / plain.memory_bytes()
        assert ratio == pytest.approx(8.0, rel=0.01)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=100),
        st.integers(1, 5),
    )
    def test_threshold_crossing_never_missed(self, keys, k):
        """If a key is incremented k times, estimate >= k (no false negatives)."""
        counting = CountingBloomFilter(capacity=200, fp_rate=0.05)
        from collections import Counter

        for key in keys:
            counting.increment(key)
        for key, count in Counter(keys).items():
            assert counting.estimate(key) >= min(count, 255)
