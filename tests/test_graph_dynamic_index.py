"""Unit + property tests for the D structure (DynamicEdgeIndex)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.dynamic_index import DynamicEdgeIndex, FreshEdge


def make_index(retention=100.0, cap=None):
    return DynamicEdgeIndex(retention=retention, max_edges_per_target=cap)


class TestInsertAndQuery:
    def test_fresh_sources_returns_recent_edges(self):
        index = make_index()
        index.insert(1, 50, timestamp=10.0)
        index.insert(2, 50, timestamp=20.0)
        fresh = index.fresh_sources(50, now=25.0, tau=30.0)
        assert fresh == [FreshEdge(1, 10.0), FreshEdge(2, 20.0)]

    def test_tau_filters_old_edges(self):
        index = make_index()
        index.insert(1, 50, timestamp=0.0)
        index.insert(2, 50, timestamp=90.0)
        fresh = index.fresh_sources(50, now=100.0, tau=20.0)
        assert [edge.source for edge in fresh] == [2]

    def test_future_edges_not_returned(self):
        # An edge time-stamped after `now` (clock skew) must not count.
        index = make_index()
        index.insert(1, 50, timestamp=30.0)
        assert index.fresh_sources(50, now=10.0, tau=50.0) == []

    def test_unknown_target_empty(self):
        assert make_index().fresh_sources(7, now=0.0, tau=10.0) == []

    def test_duplicate_source_keeps_latest_only(self):
        index = make_index()
        index.insert(1, 50, timestamp=10.0)
        index.insert(1, 50, timestamp=40.0)
        fresh = index.fresh_sources(50, now=50.0, tau=100.0)
        assert fresh == [FreshEdge(1, 40.0)]

    def test_results_ordered_by_timestamp(self):
        index = make_index()
        index.insert(3, 50, timestamp=30.0)
        index.insert(1, 50, timestamp=10.0)  # slightly out of order
        index.insert(2, 50, timestamp=20.0)
        fresh = index.fresh_sources(50, now=40.0, tau=100.0)
        assert [edge.source for edge in fresh] == [1, 2, 3]

    def test_tau_beyond_retention_rejected(self):
        index = make_index(retention=50.0)
        with pytest.raises(ValueError, match="retention"):
            index.fresh_sources(1, now=0.0, tau=60.0)

    def test_non_positive_tau_rejected(self):
        with pytest.raises(ValueError):
            make_index().fresh_sources(1, now=0.0, tau=0.0)


class TestPruning:
    def test_lazy_window_pruning_on_insert(self):
        index = make_index(retention=10.0)
        index.insert(1, 50, timestamp=0.0)
        index.insert(2, 50, timestamp=100.0)  # 1's edge is now stale
        assert index.num_edges == 1
        assert index.evicted_total == 1

    def test_per_target_cap_evicts_oldest(self):
        index = make_index(cap=3)
        for i in range(5):
            index.insert(i, 50, timestamp=float(i))
        fresh = index.fresh_sources(50, now=10.0, tau=100.0)
        assert [edge.source for edge in fresh] == [2, 3, 4]
        assert index.num_edges == 3
        assert index.evicted_total == 2

    def test_prune_expired_sweeps_all_targets(self):
        index = make_index(retention=10.0)
        for c in range(5):
            index.insert(1, c, timestamp=0.0)
        index.insert(1, 99, timestamp=100.0)
        removed = index.prune_expired(now=100.0)
        assert removed == 5
        assert index.num_targets == 1
        assert index.num_edges == 1

    def test_prune_idempotent(self):
        index = make_index(retention=10.0)
        index.insert(1, 50, timestamp=0.0)
        assert index.prune_expired(now=100.0) == 1
        assert index.prune_expired(now=100.0) == 0

    def test_empty_targets_removed_from_map(self):
        index = make_index(retention=10.0)
        index.insert(1, 50, timestamp=0.0)
        index.prune_expired(now=100.0)
        assert 50 not in list(index.targets())

    def test_memory_decreases_after_prune(self):
        index = make_index(retention=10.0)
        for i in range(1000):
            index.insert(i, i % 7, timestamp=0.0)
        before = index.memory_bytes()
        index.prune_expired(now=1000.0)
        assert index.memory_bytes() < before


class TestAccounting:
    def test_counters(self):
        index = make_index()
        index.insert(1, 5, timestamp=0.0)
        index.insert(2, 5, timestamp=1.0)
        index.insert(3, 6, timestamp=2.0)
        assert index.num_edges == 3
        assert index.num_targets == 2
        assert index.inserted_total == 3
        assert sorted(index.targets()) == [5, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicEdgeIndex(retention=0.0)
        with pytest.raises(ValueError):
            DynamicEdgeIndex(retention=10.0, max_edges_per_target=0)


class TestProperties:
    @given(
        inserts=st.lists(
            st.tuples(
                st.integers(0, 10),   # b
                st.integers(0, 5),    # c
                st.floats(0, 1000),   # timestamp
            ),
            max_size=80,
        ),
        tau=st.floats(1.0, 500.0),
    )
    def test_fresh_sources_matches_naive_replay(self, inserts, tau):
        """Whatever order edges arrive, freshness must match a full replay.

        The index prunes only entries that can never satisfy any tau within
        retention, so querying with `now` = max timestamp must agree with a
        brute-force scan over the full history (restricted to the window).
        """
        retention = 1000.0  # large enough that nothing is ever pruned
        index = DynamicEdgeIndex(retention=retention)
        history = []
        for b, c, t in inserts:
            index.insert(b, c, t)
            history.append((b, c, t))
        if not history:
            return
        now = max(t for _, _, t in history)
        for c in {c for _, c, _ in history}:
            expected = {}
            for b, c2, t in history:
                if c2 == c and now - tau <= t <= now:
                    expected[b] = max(expected.get(b, t), t)
            got = index.fresh_sources(c, now=now, tau=tau)
            assert {e.source: e.timestamp for e in got} == expected

    @given(
        inserts=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 3)),
            max_size=60,
        ),
        cap=st.integers(1, 10),
    )
    def test_cap_invariant(self, inserts, cap):
        """No target ever stores more than the cap."""
        index = DynamicEdgeIndex(retention=1e9, max_edges_per_target=cap)
        for i, (b, c) in enumerate(inserts):
            index.insert(b, c, float(i))
            for target in index.targets():
                assert len(index._edges[target]) <= cap

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 3), st.floats(0, 100)),
            max_size=60,
        )
    )
    def test_edge_count_consistent(self, inserts):
        """num_edges == inserted_total - evicted_total at all times."""
        index = DynamicEdgeIndex(retention=50.0, max_edges_per_target=5)
        for b, c, t in inserts:
            index.insert(b, c, t)
            assert index.num_edges == index.inserted_total - index.evicted_total


class TestRingBackend:
    """Unit coverage of the ring backend's own mechanics.

    Cross-backend equivalence on random streams lives in
    ``tests/test_backend_equivalence.py``; these tests pin promotion
    plumbing, wrap-around, growth, and accounting.
    """

    def make_ring_index(self, cap=None, threshold=4):
        return DynamicEdgeIndex(
            retention=100.0,
            max_edges_per_target=cap,
            backend="ring",
            promote_threshold=threshold,
        )

    def test_promotion_counts_hot_targets(self):
        index = self.make_ring_index(threshold=3)
        for i in range(2):
            index.insert(i, 5, float(i))
        assert index.num_hot_targets == 0
        index.insert(2, 5, 2.0)
        assert index.num_hot_targets == 1
        index.insert(3, 6, 2.0)  # a second, cold target stays a deque
        assert index.num_hot_targets == 1
        assert index.num_targets == 2

    def test_ring_wraps_under_cap_eviction(self):
        index = self.make_ring_index(cap=4, threshold=2)
        for i in range(50):
            index.insert(i, 9, float(i))
        fresh = index.fresh_sources(9, now=49.0, tau=90.0)
        assert [e.source for e in fresh] == [46, 47, 48, 49]
        assert index.num_edges == 4
        assert index.evicted_total == 46

    def test_capless_ring_grows(self):
        index = self.make_ring_index(cap=None, threshold=2)
        for i in range(500):
            index.insert(i, 9, float(i) / 100.0)  # all inside the window
        assert index.num_edges == 500
        assert len(index.fresh_sources(9, now=5.0, tau=90.0)) == 500

    def test_window_pruning_inside_ring(self):
        index = self.make_ring_index(threshold=2)
        for i in range(10):
            index.insert(i, 9, float(i))
        index.insert(99, 9, 150.0)  # cutoff 50 -> drops all ten old entries
        assert index.num_edges == 1
        assert index.evicted_total == 10
        assert [e.source for e in index.fresh_sources(9, now=150.0, tau=90.0)] == [99]

    def test_action_filter_on_ring(self):
        from repro.core import ActionType

        index = self.make_ring_index(threshold=2)
        for i in range(6):
            action = ActionType.RETWEET if i % 2 else ActionType.FOLLOW
            index.insert(i, 9, float(i), action=action)
        retweets = index.fresh_sources(9, now=6.0, tau=90.0, action=ActionType.RETWEET)
        assert [e.source for e in retweets] == [1, 3, 5]
        assert all(e.action is ActionType.RETWEET for e in retweets)
        # An action tag never inserted matches nothing.
        assert index.fresh_sources(9, now=6.0, tau=90.0, action=ActionType.FAVORITE) == []

    def test_entries_backend_neutral_view(self):
        list_index = DynamicEdgeIndex(retention=100.0, backend="list")
        ring_index = self.make_ring_index(threshold=2)
        for idx in (list_index, ring_index):
            for i in range(5):
                idx.insert(i, 9, float(i))
        assert list_index.entries(9) == ring_index.entries(9)
        assert ring_index.entries(12345) == []

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            DynamicEdgeIndex(retention=10.0, backend="columnar")


class TestRingBulkExtend:
    """Ring-aware grouped bulk inserts (insert_batch on hot targets)."""

    def test_bulk_group_into_ring_matches_sequential_inserts(self):
        from repro.core import EdgeEvent, EventBatch

        # One hot target hit 40 times inside one batch, plus background
        # singletons: the repeated group takes the bulk-safe ring path.
        events = [EdgeEvent(float(i), 1000 + i, 7) for i in range(40)]
        events += [EdgeEvent(40.0 + i, i, i + 1) for i in range(5)]
        events += [EdgeEvent(45.0 + i, 2000 + i, 7) for i in range(40)]

        reference = DynamicEdgeIndex(
            retention=1e6, backend="ring", promote_threshold=8
        )
        for e in events:
            reference.insert(e.actor, e.target, e.created_at, action=e.action)
        batched = DynamicEdgeIndex(
            retention=1e6, backend="ring", promote_threshold=8
        )
        batched.insert_batch(EventBatch.from_events(events))

        assert batched.num_hot_targets == reference.num_hot_targets == 1
        assert batched._edges == reference._edges
        assert batched.num_edges == reference.num_edges
        assert batched.inserted_total == reference.inserted_total
        assert batched.evicted_total == reference.evicted_total

    def test_bulk_extend_wraps_and_prunes(self):
        from repro.core import EdgeEvent, EventBatch

        # Advance the ring's start pointer via window pruning, then land a
        # bulk group large enough to wrap around the circular buffer.
        index = DynamicEdgeIndex(retention=50.0, backend="ring", promote_threshold=4)
        for i in range(10):
            index.insert(i, 7, float(i))
        assert index.num_hot_targets == 1
        events = [EdgeEvent(60.0 + i, 100 + i, 7) for i in range(30)]
        index.insert_batch(EventBatch.from_events(events))
        # Old edges (cutoff 89 - 50) are pruned; the bulk group survives.
        fresh = index.fresh_sources(7, now=89.0, tau=49.0)
        assert [e.source for e in fresh] == [100 + i for i in range(30)]

    def test_hotring_extend_matches_appends(self):
        import numpy as np

        from repro.graph.dynamic_index import _HotRing

        table: list = [None]
        sequential = _HotRing(8, table)
        bulk = _HotRing(8, table)
        # Rotate both rings so the bulk write must wrap.
        for ring in (sequential, bulk):
            for i in range(6):
                ring.append(float(i), i, 0)
            for _ in range(4):
                ring.popleft()
        ts = np.arange(10, dtype=np.float64)
        src = np.arange(10, dtype=np.int64) + 100
        act = np.zeros(10, dtype=np.uint16)
        for t, s, a in zip(ts, src, act):
            sequential.append(float(t), int(s), int(a))
        bulk.extend(ts, src, act)
        assert list(bulk) == list(sequential)
        assert bulk.count == sequential.count
