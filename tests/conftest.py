"""Shared fixtures: the Figure 1 fragment and small synthetic graphs."""

from __future__ import annotations

import pytest

from repro.core import DetectionParams, MotifEngine
from repro.graph import GraphSnapshot

# Vertex ids for the paper's Figure 1 fragment.
A1, A2, A3 = 0, 1, 2
B1, B2 = 3, 4
C1, C2, C3 = 5, 6, 7

#: The static A -> B follow edges visible in Figure 1.
FIGURE1_FOLLOWS = [(A1, B1), (A2, B1), (A2, B2), (A3, B2)]


@pytest.fixture
def figure1_snapshot() -> GraphSnapshot:
    """The Figure 1 fragment as an offline snapshot (8 vertices)."""
    return GraphSnapshot.from_edges(FIGURE1_FOLLOWS, num_nodes=8)


@pytest.fixture
def figure1_engine(figure1_snapshot: GraphSnapshot) -> MotifEngine:
    """Single-machine engine over Figure 1, k=2 as in the worked example."""
    return MotifEngine.from_snapshot(
        figure1_snapshot, DetectionParams(k=2, tau=600.0)
    )
