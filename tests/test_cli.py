"""Integration tests for the CLI (invoked in-process via main())."""

import io

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestFigure1Command:
    def test_prints_the_recommendation(self):
        code, output = run_cli("figure1")
        assert code == 0
        assert "recommend C2" in output
        assert "A2" in output


class TestGenerateAndRun:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        graph = tmp / "graph.npz"
        stream = tmp / "stream.csv"
        code, out = run_cli(
            "generate-graph", str(graph), "--users", "800", "--seed", "3"
        )
        assert code == 0 and "800 users" in out
        code, out = run_cli(
            "generate-stream", str(stream),
            "--users", "800", "--duration", "300", "--rate", "3",
            "--bursts", "1", "--burst-actors", "40", "--seed", "3",
        )
        assert code == 0 and "events" in out
        return graph, stream

    def test_stream_file_format(self, artifacts):
        _, stream = artifacts
        header, first = stream.read_text().splitlines()[:2]
        assert header == "created_at,actor,target,action"
        parts = first.split(",")
        assert len(parts) == 4
        float(parts[0])  # parsable timestamp

    def test_run_command(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli("run", str(graph), str(stream), "--k", "2")
        assert code == 0
        assert "events processed : " in output
        assert "raw candidates" in output
        assert "query latency" in output

    def test_run_command_batched_matches_per_event(self, artifacts):
        graph, stream = artifacts
        code_one, output_one = run_cli("run", str(graph), str(stream), "--k", "2")
        code_batched, output_batched = run_cli(
            "run", str(graph), str(stream), "--k", "2", "--batch-size", "64"
        )
        assert code_one == 0 and code_batched == 0

        def counts(output):
            return [
                line for line in output.splitlines()
                if "events processed" in line or "raw candidates" in line
            ]

        assert counts(output_one) == counts(output_batched)

    def test_run_backend_flags_change_nothing_observable(self, artifacts):
        """Every S/D backend combination prints identical detection output."""
        graph, stream = artifacts
        outputs = set()
        for s_backend in ("packed", "csr"):
            for d_backend in ("list", "ring"):
                code, output = run_cli(
                    "run", str(graph), str(stream), "--k", "2",
                    "--batch-size", "32",
                    "--s-backend", s_backend, "--d-backend", d_backend,
                )
                assert code == 0
                outputs.add(
                    "\n".join(
                        line for line in output.splitlines()
                        if "query latency" not in line  # timing varies
                    )
                )
        assert len(outputs) == 1, outputs

    def test_run_rejects_unknown_backend(self, artifacts):
        graph, stream = artifacts
        with pytest.raises(SystemExit):
            run_cli("run", str(graph), str(stream), "--s-backend", "arena")

    def test_simulate_command(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
        )
        assert code == 0
        assert "events ingested" in output
        assert "notifications" in output

    def test_simulate_command_micro_batched(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--batch-size", "16", "--max-batch-wait", "0.2",
        )
        assert code == 0
        assert "events ingested" in output

    def test_simulate_command_delivery_coalesced(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--delivery-batch-size", "64", "--delivery-max-wait", "0.3",
        )
        assert code == 0
        assert "events ingested" in output
        assert "notifications" in output

    def test_simulate_delivery_coalescing_changes_no_counts(self, artifacts):
        """The delivery window delays dispatch; with a dedup-only funnel
        and a window shorter than any dedup horizon, the notification
        count is unchanged."""
        graph, stream = artifacts
        def counts(output):
            return [
                line for line in output.splitlines()
                if "events ingested" in line or "notifications" in line
            ]
        code_plain, out_plain = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
        )
        code_coalesced, out_coalesced = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--delivery-batch-size", "256", "--delivery-max-wait", "0.05",
        )
        assert code_plain == 0 and code_coalesced == 0
        assert counts(out_plain) == counts(out_coalesced)

    def test_simulate_process_transport_matches_inprocess_counts(self, artifacts):
        """The transport changes where partitions run, not what they emit:
        same ingested-event and notification counts either way."""
        graph, stream = artifacts

        def counts(output):
            return [
                line for line in output.splitlines()
                if "events ingested" in line or "notifications" in line
            ]

        code_in, out_in = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--batch-size", "32",
        )
        code_proc, out_proc = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--batch-size", "32", "--transport", "process",
        )
        assert code_in == 0 and code_proc == 0
        assert counts(out_in) == counts(out_proc)

    def test_simulate_delivery_shards_change_no_counts(self, artifacts):
        graph, stream = artifacts

        def counts(output):
            return [
                line for line in output.splitlines()
                if "events ingested" in line or "notifications" in line
            ]

        code_one, out_one = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
        )
        code_sharded, out_sharded = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--delivery-shards", "3",
        )
        assert code_one == 0 and code_sharded == 0
        assert counts(out_one) == counts(out_sharded)

    def test_simulate_ranked_caps_deliveries(self, artifacts):
        graph, stream = artifacts

        def notifications(output):
            for line in output.splitlines():
                if "notifications" in line:
                    return int(line.split(":")[1])
            raise AssertionError("no notification count printed")

        code_plain, out_plain = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--delivery-batch-size", "256",
        )
        code_ranked, out_ranked = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--delivery-batch-size", "256", "--ranked", "--ranked-k", "1",
        )
        assert code_plain == 0 and code_ranked == 0
        assert 0 < notifications(out_ranked) <= notifications(out_plain)

    def test_simulate_adaptive_control_plane(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--adaptive", "--slo-p99", "60",
        )
        assert code == 0
        assert "control plane" in output
        assert "mode=" in output  # the controller's posture summary
        assert "promote threshold:" in output

    def test_simulate_slo_requires_adaptive(self, artifacts):
        graph, stream = artifacts
        code, _ = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--slo-p99", "60",
        )
        assert code == 2

    def test_simulate_rejects_nonpositive_delivery_shards(self, artifacts):
        graph, stream = artifacts
        with pytest.raises(ValueError, match="delivery-shards"):
            run_cli(
                "simulate", str(graph), str(stream),
                "--k", "2", "--partitions", "2", "--delivery-shards", "0",
            )

    def test_simulate_rejects_unknown_transport(self, artifacts):
        graph, stream = artifacts
        with pytest.raises(SystemExit):
            run_cli(
                "simulate", str(graph), str(stream),
                "--transport", "telegraph",
            )

    def test_analyze_command(self, artifacts):
        graph, _ = artifacts
        code, output = run_cli("analyze", str(graph))
        assert code == 0
        assert "reciprocity" in output

    def test_deterministic_generation(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        run_cli("generate-stream", str(a), "--users", "100", "--duration", "60", "--seed", "9")
        run_cli("generate-stream", str(b), "--users", "100", "--duration", "60", "--seed", "9")
        assert a.read_text() == b.read_text()


class TestExplainCommand:
    def test_catalog_motif(self):
        code, output = run_cli("explain", "diamond", "--k", "2")
        assert code == 0
        assert "motif diamond:" in output
        assert "plan for motif 'diamond'" in output
        assert "KOverlap(k=2" in output

    def test_motif_file(self, tmp_path):
        motif_file = tmp_path / "custom.motif"
        motif_file.write_text(
            "motif my-motif:\n"
            "  match a -[static]-> b\n"
            "  match b -[dynamic, within 120s]-> c\n"
            "  count distinct b >= 2\n"
            "  emit  notify a about c\n"
        )
        code, output = run_cli("explain", str(motif_file))
        assert code == 0
        assert "my-motif" in output

    def test_unknown_motif_fails(self, capsys):
        code, _ = run_cli("explain", "no-such-motif")
        assert code == 2

    def test_all_catalog_names_explainable(self):
        for name in ("diamond", "wedge", "co-retweet", "favorite-burst"):
            code, output = run_cli("explain", name)
            assert code == 0
            assert "plan for motif" in output


class TestServingCommands:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli-serving")
        graph = tmp / "graph.npz"
        stream = tmp / "stream.csv"
        code, out = run_cli(
            "generate-graph", str(graph), "--users", "800", "--seed", "3",
            "--chunked",
        )
        assert code == 0 and "800 users" in out
        code, out = run_cli(
            "generate-stream", str(stream),
            "--users", "800", "--duration", "200", "--rate", "4",
            "--bursts", "1", "--burst-actors", "40", "--seed", "3",
        )
        assert code == 0 and "events" in out
        return graph, stream

    def test_generate_graph_chunked_loads_back(self, artifacts):
        from repro.graph.snapshot import GraphSnapshot

        graph, _ = artifacts
        snap = GraphSnapshot.load(graph)
        assert snap.num_users == 800
        assert snap.num_edges > 800

    def test_simulate_query_qps_reports_serving_stats(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1",
            "--query-qps", "200", "--serving-shards", "2", "--ranked",
        )
        assert code == 0
        assert "serving reads" in output
        assert "serving cache" in output
        assert "hit rate" in output

    def test_simulate_query_load_changes_no_counts(self, artifacts):
        graph, stream = artifacts

        def counts(output):
            return [
                line for line in output.splitlines()
                if "events ingested" in line or "notifications" in line
            ]

        code_quiet, out_quiet = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1", "--ranked",
        )
        code_queried, out_queried = run_cli(
            "simulate", str(graph), str(stream),
            "--k", "2", "--partitions", "2", "--seed", "1", "--ranked",
            "--query-qps", "100",
        )
        assert code_quiet == 0 and code_queried == 0
        assert counts(out_quiet) == counts(out_queried)

    def test_serve_smoke_queries(self, artifacts):
        graph, stream = artifacts
        code, output = run_cli(
            "serve", str(graph), str(stream),
            "--partitions", "2", "--serving-shards", "2",
            "--smoke-queries", "25",
        )
        assert code == 0
        assert "materialized" in output
        assert "serving on 127.0.0.1:" in output
        assert "smoke: 25 loopback queries" in output
        assert "server saw 25" in output
