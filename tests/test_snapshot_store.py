"""Incremental snapshot store: delta encoding must be invisible on load.

The store's whole contract is that ``same``/``append``/``full`` delta
encoding is a storage optimization only: loading any snapshot — through
arbitrarily long base chains, from a fresh store object, after a crash
left tmp debris — returns bitwise the arrays that were saved.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.snapshot import SnapshotStore


def _assert_components_equal(got, expected):
    assert set(got) == set(expected)
    for component in expected:
        assert set(got[component]) == set(expected[component])
        for name, array in expected[component].items():
            loaded = got[component][name]
            assert loaded.dtype == np.asarray(array).dtype
            np.testing.assert_array_equal(loaded, array)


arrays_strategy = st.fixed_dictionaries(
    {
        "ledger": st.lists(
            st.integers(-(2**31), 2**31), min_size=0, max_size=20
        ).map(lambda xs: np.asarray(xs, dtype=np.int64)),
        "matrix": st.lists(
            st.floats(-1e9, 1e9, allow_nan=False), min_size=4, max_size=4
        ).map(lambda xs: np.asarray(xs, dtype=np.float64).reshape(2, 2)),
    }
)


@settings(max_examples=25, deadline=None)
@given(states=st.lists(arrays_strategy, min_size=1, max_size=6))
def test_every_snapshot_in_a_chain_loads_exactly(tmp_path_factory, states):
    """Each snapshot in a randomized chain loads bitwise, chained or not."""
    root = tmp_path_factory.mktemp("snaps")
    store = SnapshotStore(root)
    ids = [
        store.save({"state": arrays}, wal_seq=i, created_at=float(i))
        for i, arrays in enumerate(states)
    ]
    # A *fresh* store object (recovery's view) resolves every id too.
    for reader in (store, SnapshotStore(root)):
        for snapshot_id, arrays in zip(ids, states):
            manifest, components = reader.load(snapshot_id)
            assert manifest["id"] == snapshot_id
            _assert_components_equal(components, {"state": arrays})


def test_append_only_arrays_store_only_the_suffix(tmp_path):
    store = SnapshotStore(tmp_path)
    first = np.arange(1000, dtype=np.int64)
    store.save({"ledger": {"rows": first}}, wal_seq=0, created_at=0.0)
    grown = np.arange(1010, dtype=np.int64)
    snapshot_id = store.save(
        {"ledger": {"rows": grown}}, wal_seq=1, created_at=1.0
    )
    manifest = store.read_manifest(snapshot_id)
    entry = manifest["components"]["ledger"]["rows"]
    assert entry["kind"] == "append"
    assert entry["base_len"] == 1000
    # Only the 10-element suffix hit the disk.
    assert store.last_delta_bytes == 10 * 8
    assert store.last_full_bytes == 1010 * 8
    _, components = store.load(snapshot_id)
    np.testing.assert_array_equal(components["ledger"]["rows"], grown)


def test_unchanged_arrays_write_nothing(tmp_path):
    store = SnapshotStore(tmp_path)
    arrays = {"table": np.arange(512, dtype=np.float64)}
    store.save({"state": arrays}, wal_seq=0, created_at=0.0)
    snapshot_id = store.save({"state": arrays}, wal_seq=5, created_at=5.0)
    manifest = store.read_manifest(snapshot_id)
    assert manifest["components"]["state"]["table"]["kind"] == "same"
    assert store.last_delta_bytes == 0
    _, components = store.load(snapshot_id)
    np.testing.assert_array_equal(components["state"]["table"], arrays["table"])


def test_same_chain_resolves_through_many_bases(tmp_path):
    """A long run of unchanged snapshots still loads from the one copy."""
    store = SnapshotStore(tmp_path)
    base = np.arange(64, dtype=np.int64)
    last = None
    for i in range(6):
        last = store.save({"s": {"a": base}}, wal_seq=i, created_at=float(i))
    _, components = store.load(last)
    np.testing.assert_array_equal(components["s"]["a"], base)
    manifest = store.read_manifest(last)
    assert manifest["components"]["s"]["a"]["kind"] == "same"


def test_shape_or_dtype_change_falls_back_to_full(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save(
        {"s": {"a": np.arange(8, dtype=np.int64)}}, wal_seq=0, created_at=0.0
    )
    snapshot_id = store.save(
        {"s": {"a": np.arange(8, dtype=np.float64)}}, wal_seq=1, created_at=1.0
    )
    assert (
        store.read_manifest(snapshot_id)["components"]["s"]["a"]["kind"]
        == "full"
    )


def test_wal_high_water_mark_round_trips(tmp_path):
    store = SnapshotStore(tmp_path)
    store.save({"s": {"a": np.zeros(1)}}, wal_seq=41, created_at=7.5)
    manifest = store.latest_manifest()
    assert manifest["wal_seq"] == 41
    assert manifest["created_at"] == 7.5


def test_tmp_debris_is_ignored_and_cleaned(tmp_path):
    """A crash mid-save leaves tmp-*; it must never shadow a snapshot."""
    store = SnapshotStore(tmp_path)
    store.save({"s": {"a": np.arange(4)}}, wal_seq=0, created_at=0.0)
    debris = tmp_path / "tmp-snap-00000099"
    debris.mkdir()
    (debris / "manifest.json").write_text("{not json")
    reopened = SnapshotStore(tmp_path)
    assert not debris.exists()
    assert reopened.list_ids() == ["snap-00000000"]
    reopened.load_latest()


def test_load_latest_empty_store_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        SnapshotStore(tmp_path).load_latest()


def test_manifest_mismatch_detected(tmp_path):
    """A corrupted manifest shape claim fails loudly, not silently."""
    store = SnapshotStore(tmp_path)
    snapshot_id = store.save(
        {"s": {"a": np.arange(4, dtype=np.int64)}}, wal_seq=0, created_at=0.0
    )
    manifest_path = tmp_path / snapshot_id / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["components"]["s"]["a"]["shape"] = [5]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="manifest"):
        SnapshotStore(tmp_path).load(snapshot_id)
