"""Unit tests for the detection consumer (queue-side broker glue)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.ops import AdmissionController, AdmissionPolicy
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.consumer import CandidateBatch, DetectionConsumer
from repro.streaming.queue import MessageQueue

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


@pytest.fixture
def rig(figure1_snapshot):
    sim = DiscreteEventSimulator()
    cluster = Cluster.build(figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2))
    output: MessageQueue[CandidateBatch] = MessageQueue(sim, "push")
    breakdown = LatencyBreakdown()
    batches: list[CandidateBatch] = []
    output.subscribe(lambda batch, pub, dlv: batches.append(batch))
    return sim, cluster, output, breakdown, batches


class TestDetectionConsumer:
    def test_produces_batch_on_completed_motif(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(1.0, B2, C2), 1.0, 1.0)
        sim.run()
        assert consumer.events_consumed == 2
        assert consumer.candidates_produced == 1
        assert len(batches) == 1
        batch = batches[0]
        assert batch.recommendations[0].recipient == A2
        assert batch.detection_seconds > 0.0
        assert batch.origin_event.actor == B2

    def test_no_batch_without_candidates(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        sim.run()
        assert batches == []
        assert "detection" in breakdown.stages()

    def test_detection_time_recorded_per_event(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        for i in range(5):
            consumer(EdgeEvent(float(i), B1, C2), float(i), float(i))
        assert len(breakdown.stage("detection")) == 5

    def test_admission_sheds_before_detection(self, rig):
        sim, cluster, output, breakdown, batches = rig
        admission = AdmissionController(
            rate=1.0, burst=1.0, policy=AdmissionPolicy.DROP
        )
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission
        )
        for i in range(10):
            consumer(EdgeEvent(float(i), B1, C2), 0.0, 0.0)
        assert consumer.events_shed == 9
        assert consumer.events_consumed == 1
        # Shed events never reach the cluster.
        replica = cluster.replica_sets[0].replicas[0]
        assert replica.events_processed() == 1

    def test_shed_events_produce_no_detection_record(self, rig):
        sim, cluster, output, breakdown, batches = rig
        admission = AdmissionController(rate=1.0, burst=1.0)
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission
        )
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(0.0, B2, C2), 0.0, 0.0)  # shed
        assert len(breakdown.stage("detection")) == 1


class TestMicroBatching:
    def test_flushes_when_batch_fills(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=2, max_wait=10.0
        )
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        assert consumer.pending_events == 1  # waiting for the batch to fill
        consumer(EdgeEvent(1.0, B2, C2), 1.0, 1.0)
        assert consumer.pending_events == 0  # size trigger flushed at once
        sim.run()
        assert consumer.events_consumed == 2
        assert len(batches) == 1
        assert batches[0].recommendations[0].recipient == A2
        # Only the second event waited zero seconds; the first waited 1.0s
        # of virtual time, reported as the batching stage.
        assert batches[0].batching_seconds == 0.0
        batching = breakdown.stage("batching")
        assert len(batching) == 2
        assert batching.percentile(0) == 0.0
        assert batching.percentile(100) == 1.0

    def test_max_wait_timer_flushes_trickle(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=100, max_wait=5.0
        )

        def deliver():
            consumer(EdgeEvent(0.0, B1, C2), 0.0, sim.clock.now())
            consumer(EdgeEvent(1.0, B2, C2), 1.0, sim.clock.now())

        sim.schedule_at(0.0, deliver)
        sim.run()
        # The timer fired at +5.0s and drained the partial batch.
        assert consumer.events_consumed == 2
        assert consumer.pending_events == 0
        assert len(batches) == 1
        assert batches[0].batching_seconds == pytest.approx(5.0)

    def test_batched_output_matches_per_event(self, rig, figure1_snapshot):
        sim, cluster, output, breakdown, batches = rig
        per_event_cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        events = [EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)]
        expected = per_event_cluster.process_stream(events)

        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=2, max_wait=10.0
        )
        for event in events:
            consumer(event, event.created_at, event.created_at)
        sim.run()
        produced = [rec for batch in batches for rec in batch.recommendations]
        assert produced == expected

    def test_batch_size_one_keeps_legacy_behavior(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=1
        )
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(1.0, B2, C2), 1.0, 1.0)
        sim.run()
        assert len(batches) == 1
        assert batches[0].batching_seconds == 0.0
        assert "batching" not in breakdown.stages()

    def test_admission_sheds_before_buffering(self, rig):
        sim, cluster, output, breakdown, batches = rig
        admission = AdmissionController(
            rate=1.0, burst=1.0, policy=AdmissionPolicy.DROP
        )
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission, batch_size=4
        )
        for i in range(10):
            consumer(EdgeEvent(float(i), B1, C2), 0.0, 0.0)
        assert consumer.events_shed == 9
        assert consumer.pending_events == 1


class TestLiveReconfigure:
    """The adaptive controller's actuation path: configure() on a live rig."""

    def test_knob_properties_reflect_configure(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer.configure(batch_size=16, max_wait=1.5)
        assert consumer.batch_size == 16
        assert consumer.max_wait == 1.5

    def test_shrink_below_buffer_flushes_immediately(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=100, max_wait=50.0
        )
        for i in range(3):
            consumer(EdgeEvent(float(i), B1, C2), float(i), float(i))
        assert consumer.pending_events == 3
        consumer.configure(batch_size=2)
        # De-escalation must not strand the buffer behind the old timer.
        assert consumer.pending_events == 0
        assert consumer.events_consumed == 3
        assert consumer.cluster_calls == 1

    def test_shortened_max_wait_rearms_flush_timer(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=100, max_wait=50.0
        )

        def deliver_then_retune():
            consumer(EdgeEvent(0.0, B1, C2), 0.0, sim.clock.now())
            consumer.configure(max_wait=2.0)

        sim.schedule_at(0.0, deliver_then_retune)
        sim.run()
        # The new 2 s deadline flushed; without the re-arm the buffer
        # would have waited the stale 50 s (the superseded timer still
        # fires, harmlessly, thanks to the epoch guard).
        assert consumer.pending_events == 0
        assert consumer.events_consumed == 1
        assert breakdown.stage("batching").percentile(50) == pytest.approx(2.0)

    def test_growing_knobs_leaves_buffer_waiting(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, batch_size=4, max_wait=5.0
        )
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer.configure(batch_size=8, max_wait=10.0)
        assert consumer.pending_events == 1  # no spurious flush on escalate

    def test_configure_validates(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        with pytest.raises(ValueError):
            consumer.configure(batch_size=0)
        with pytest.raises(ValueError):
            consumer.configure(max_wait=-1.0)

    def test_cluster_calls_counts_round_trips(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(1.0, B2, C2), 1.0, 1.0)
        assert consumer.cluster_calls == 2  # per-event path: one per event

    def test_backlog_sampled_per_event_with_any_admission(self, rig):
        sim, cluster, output, breakdown, batches = rig
        # No backlog_limit: the sample must still happen (the monitor and
        # the adaptive controller read the same signal).
        admission = AdmissionController(rate=1000.0, burst=1000.0)
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission
        )
        consumer.last_backlog = -1
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        assert consumer.last_backlog == 0  # synchronous transport: drained

    def test_sample_backlog_reads_transport(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        assert consumer.sample_backlog() == 0
        assert consumer.last_backlog == 0
