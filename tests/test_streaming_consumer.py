"""Unit tests for the detection consumer (queue-side broker glue)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.ops import AdmissionController, AdmissionPolicy
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.consumer import CandidateBatch, DetectionConsumer
from repro.streaming.queue import MessageQueue

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


@pytest.fixture
def rig(figure1_snapshot):
    sim = DiscreteEventSimulator()
    cluster = Cluster.build(figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2))
    output: MessageQueue[CandidateBatch] = MessageQueue(sim, "push")
    breakdown = LatencyBreakdown()
    batches: list[CandidateBatch] = []
    output.subscribe(lambda batch, pub, dlv: batches.append(batch))
    return sim, cluster, output, breakdown, batches


class TestDetectionConsumer:
    def test_produces_batch_on_completed_motif(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(1.0, B2, C2), 1.0, 1.0)
        sim.run()
        assert consumer.events_consumed == 2
        assert consumer.candidates_produced == 1
        assert len(batches) == 1
        batch = batches[0]
        assert batch.recommendations[0].recipient == A2
        assert batch.detection_seconds > 0.0
        assert batch.origin_event.actor == B2

    def test_no_batch_without_candidates(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        sim.run()
        assert batches == []
        assert "detection" in breakdown.stages()

    def test_detection_time_recorded_per_event(self, rig):
        sim, cluster, output, breakdown, batches = rig
        consumer = DetectionConsumer(sim, cluster, output, breakdown)
        for i in range(5):
            consumer(EdgeEvent(float(i), B1, C2), float(i), float(i))
        assert len(breakdown.stage("detection")) == 5

    def test_admission_sheds_before_detection(self, rig):
        sim, cluster, output, breakdown, batches = rig
        admission = AdmissionController(
            rate=1.0, burst=1.0, policy=AdmissionPolicy.DROP
        )
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission
        )
        for i in range(10):
            consumer(EdgeEvent(float(i), B1, C2), 0.0, 0.0)
        assert consumer.events_shed == 9
        assert consumer.events_consumed == 1
        # Shed events never reach the cluster.
        replica = cluster.replica_sets[0].replicas[0]
        assert replica.events_processed() == 1

    def test_shed_events_produce_no_detection_record(self, rig):
        sim, cluster, output, breakdown, batches = rig
        admission = AdmissionController(rate=1.0, burst=1.0)
        consumer = DetectionConsumer(
            sim, cluster, output, breakdown, admission=admission
        )
        consumer(EdgeEvent(0.0, B1, C2), 0.0, 0.0)
        consumer(EdgeEvent(0.0, B2, C2), 0.0, 0.0)  # shed
        assert len(breakdown.stage("detection")) == 1
