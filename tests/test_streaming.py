"""Integration tests for queues and the end-to-end streaming topology."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.delivery import DeliveryPipeline
from repro.sim.des import DiscreteEventSimulator
from repro.sim.latency import FixedDelay
from repro.streaming import MessageQueue, ReplaySource, StreamingTopology

from tests.conftest import A2, B1, B2, C2

PARAMS = DetectionParams(k=2, tau=600.0)


class TestMessageQueue:
    def test_delivers_after_delay(self):
        sim = DiscreteEventSimulator()
        queue = MessageQueue(sim, "q", FixedDelay(2.0))
        seen = []
        queue.subscribe(lambda item, pub, dlv: seen.append((item, pub, dlv)))
        sim.schedule_at(1.0, lambda: queue.publish("hello"))
        sim.run()
        assert seen == [("hello", 1.0, 3.0)]
        assert queue.stats.published == 1
        assert queue.stats.delivered == 1
        assert queue.stats.delay.median() == 2.0

    def test_zero_delay_default(self):
        sim = DiscreteEventSimulator()
        queue = MessageQueue(sim, "q")
        seen = []
        queue.subscribe(lambda item, pub, dlv: seen.append(dlv - pub))
        queue.publish(1)
        sim.run()
        assert seen == [0.0]

    def test_fan_out_to_multiple_subscribers(self):
        sim = DiscreteEventSimulator()
        queue = MessageQueue(sim, "q")
        hits = []
        queue.subscribe(lambda item, pub, dlv: hits.append("a"))
        queue.subscribe(lambda item, pub, dlv: hits.append("b"))
        queue.publish(1)
        sim.run()
        assert hits == ["a", "b"]

    def test_replay_source_schedules_at_event_times(self):
        sim = DiscreteEventSimulator()
        queue = MessageQueue(sim, "q")
        arrivals = []
        queue.subscribe(lambda item, pub, dlv: arrivals.append((item.actor, dlv)))
        source = ReplaySource(sim, queue)
        source.load([EdgeEvent(5.0, 1, 2), EdgeEvent(2.0, 3, 4)])
        sim.run()
        assert source.events_scheduled == 2
        assert arrivals == [(3, 2.0), (1, 5.0)]


class TestStreamingTopology:
    def build_topology(self, snapshot, hop_seconds=1.0):
        cluster = Cluster.build(snapshot, PARAMS, ClusterConfig(num_partitions=2))
        hops = {name: FixedDelay(hop_seconds) for name in ("firehose", "fanout", "push")}
        # No waking-hours/fatigue here: deterministic delivery for assertions.
        delivery = DeliveryPipeline(filters=[])
        return StreamingTopology(cluster, delivery=delivery, hop_models=hops)

    def test_figure1_flows_end_to_end(self, figure1_snapshot):
        topology = self.build_topology(figure1_snapshot)
        report = topology.run(
            [EdgeEvent(0.0, B1, C2), EdgeEvent(10.0, B2, C2)]
        )
        assert report.events_ingested == 2
        assert report.candidates_detected == 1
        assert len(report.notifications) == 1
        notification = report.notifications[0]
        assert notification.recipient == A2
        # Three fixed 1 s hops plus sub-ms detection.
        assert notification.latency == pytest.approx(3.0, abs=0.1)

    def test_latency_breakdown_dominated_by_queues(self, figure1_snapshot):
        topology = self.build_topology(figure1_snapshot, hop_seconds=2.0)
        report = topology.run(
            [EdgeEvent(0.0, B1, C2), EdgeEvent(10.0, B2, C2)]
        )
        assert report.queue_share() > 0.99
        assert report.detection_share() < 0.01

    def test_breakdown_stages_present(self, figure1_snapshot):
        topology = self.build_topology(figure1_snapshot)
        report = topology.run([EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)])
        stages = set(report.breakdown.stages())
        assert {"queue:firehose", "queue:fanout", "queue:push", "detection"} <= stages

    def test_no_motif_no_notification(self, figure1_snapshot):
        topology = self.build_topology(figure1_snapshot)
        report = topology.run([EdgeEvent(0.0, B1, C2)])
        assert report.candidates_detected == 0
        assert report.notifications == []

    def test_micro_batched_topology_attributes_batching_stage(
        self, figure1_snapshot
    ):
        """With batch_size > 1 the breakdown grows a path:batching stage
        and the end-to-end decomposition still sums exactly."""
        cluster = Cluster.build(figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2))
        hops = {name: FixedDelay(1.0) for name in ("firehose", "fanout", "push")}
        topology = StreamingTopology(
            cluster,
            delivery=DeliveryPipeline(filters=[]),
            hop_models=hops,
            batch_size=8,
            max_wait=4.0,
        )
        report = topology.run([EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)])
        assert report.events_ingested == 2
        assert len(report.notifications) == 1
        breakdown = report.breakdown
        assert "path:batching" in breakdown.stages()
        # The first event waited ~3 s of virtual time for the max_wait
        # timer (it arrived at 2.0, the flush fired at 2.0 + 4.0 relative
        # to the second arrival at 3.0... exact value: flush at 6.0, the
        # triggering edge was delivered at 3.0 -> 3.0 s of batching).
        total = breakdown.total.percentile(50)
        parts = (
            breakdown.stage("path:queue").percentile(50)
            + breakdown.stage("path:processing").percentile(50)
            + breakdown.stage("path:batching").percentile(50)
        )
        assert parts == pytest.approx(total, rel=1e-9)

    def test_micro_batched_topology_same_notifications(self, figure1_snapshot):
        per_event = self.build_topology(figure1_snapshot)
        events = [EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)]
        expected = per_event.run(events)

        cluster = Cluster.build(figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2))
        hops = {name: FixedDelay(1.0) for name in ("firehose", "fanout", "push")}
        batched = StreamingTopology(
            cluster,
            delivery=DeliveryPipeline(filters=[]),
            hop_models=hops,
            batch_size=2,
            max_wait=60.0,
        )
        got = batched.run(events)
        assert [n.recipient for n in got.notifications] == [
            n.recipient for n in expected.notifications
        ]
        assert got.candidates_detected == expected.candidates_detected

    def test_delivery_coalescer_attributes_waiting_stage(self, figure1_snapshot):
        """With a delivery window, the breakdown grows path:delivery-batching
        and the end-to-end decomposition still sums exactly."""
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        hops = {name: FixedDelay(1.0) for name in ("firehose", "fanout", "push")}
        topology = StreamingTopology(
            cluster,
            delivery=DeliveryPipeline(filters=[]),
            hop_models=hops,
            delivery_batch_size=64,
            delivery_max_wait=2.5,
        )
        report = topology.run([EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)])
        assert len(report.notifications) == 1
        breakdown = report.breakdown
        assert "path:delivery-batching" in breakdown.stages()
        # The lone candidate batch waited out the full window.
        assert breakdown.stage("path:delivery-batching").percentile(
            100
        ) == pytest.approx(2.5, abs=1e-6)
        total = breakdown.total.percentile(50)
        parts = (
            breakdown.stage("path:queue").percentile(50)
            + breakdown.stage("path:processing").percentile(50)
            + breakdown.stage("path:delivery-batching").percentile(50)
        )
        assert parts == pytest.approx(total, rel=1e-9)
        assert topology.coalescer.flushes == 1

    def test_coalesced_topology_same_notifications(self, figure1_snapshot):
        expected = self.build_topology(figure1_snapshot).run(
            [EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)]
        )
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=2)
        )
        hops = {name: FixedDelay(1.0) for name in ("firehose", "fanout", "push")}
        coalesced = StreamingTopology(
            cluster,
            delivery=DeliveryPipeline(filters=[]),
            hop_models=hops,
            delivery_batch_size=8,
            delivery_max_wait=10.0,
        )
        got = coalesced.run([EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)])
        assert [n.recipient for n in got.notifications] == [
            n.recipient for n in expected.notifications
        ]
        # Merged dispatch happens later (the window), same survivors.
        assert got.notifications[0].delivered_at > (
            expected.notifications[0].delivered_at
        )

    def test_default_hop_models_near_paper_distribution(self, figure1_snapshot):
        """With calibrated hops, a single motif's latency lands in 3-40 s."""
        cluster = Cluster.build(
            figure1_snapshot, PARAMS, ClusterConfig(num_partitions=1)
        )
        topology = StreamingTopology(
            cluster, delivery=DeliveryPipeline(filters=[]), seed=5
        )
        report = topology.run([EdgeEvent(0.0, B1, C2), EdgeEvent(1.0, B2, C2)])
        assert len(report.notifications) == 1
        assert 2.0 < report.notifications[0].latency < 40.0
