"""Unit + property tests for the open-addressing numpy pair tables.

Covers the table core (probe wraparound, self-colliding bulk inserts,
full-table grow, horizon compaction) and the dedup/fatigue backend
equivalence: ``backend="table"`` must make exactly the decisions of
``backend="dict"`` — survivors, order, and observable filter state —
under non-decreasing clocks (the streaming path's contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recommendation import Recommendation, RecommendationBatch, RecommendationGroup
from repro.delivery import DedupFilter, FatigueFilter
from repro.delivery.pairtable import (
    MAX_LOAD,
    PAIR_ID_LIMIT,
    Int64KeyTable,
    pack_pair,
    pack_pairs,
    unpack_pairs,
)


def columns_of(pairs):
    """Flat candidate columns for a list of (recipient, candidate)."""
    batch = RecommendationBatch(
        [
            RecommendationGroup([recipient], candidate=candidate, created_at=0.0)
            for recipient, candidate in pairs
        ]
    )
    return batch.columns()


def keys_with_home_slot(capacity: int, slot: int, count: int) -> list[int]:
    """The first *count* keys whose splitmix64 home slot is *slot*."""
    from repro.util.hashing import splitmix64

    out = []
    key = 0
    while len(out) < count:
        if splitmix64(key) & (capacity - 1) == slot:
            out.append(key)
        key += 1
    return out


# ---------------------------------------------------------------------------
# Key packing
# ---------------------------------------------------------------------------

class TestPacking:
    def test_round_trip_including_boundaries(self):
        recipients = np.array([0, 1, PAIR_ID_LIMIT - 1, 12345], dtype=np.int64)
        candidates = np.array([PAIR_ID_LIMIT - 1, 0, 7, 54321], dtype=np.int64)
        keys = pack_pairs(recipients, candidates)
        back_r, back_c = unpack_pairs(keys)
        assert back_r.tolist() == recipients.tolist()
        assert back_c.tolist() == candidates.tolist()

    def test_scalar_matches_columnar(self):
        recipients = np.array([3, 99, 2**31], dtype=np.int64)
        candidates = np.array([5, 0, 2**31 + 1], dtype=np.int64)
        keys = pack_pairs(recipients, candidates)
        for i in range(len(recipients)):
            assert pack_pair(int(recipients[i]), int(candidates[i])) == int(keys[i])

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError):
            pack_pair(PAIR_ID_LIMIT, 0)
        with pytest.raises(ValueError):
            pack_pair(0, -1)
        with pytest.raises(ValueError):
            pack_pairs(
                np.array([PAIR_ID_LIMIT], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )


# ---------------------------------------------------------------------------
# Table core
# ---------------------------------------------------------------------------

def fresh_table(capacity=8):
    return Int64KeyTable({"time": (np.float64, 0)}, capacity=capacity)


class TestInt64KeyTable:
    def test_scalar_upsert_and_find(self):
        table = fresh_table()
        slot, inserted = table.upsert(42)
        assert inserted
        table.columns["time"][slot] = 7.0
        assert table.find(42) == slot
        again, inserted = table.upsert(42)
        assert again == slot and not inserted
        assert table.find(43) == -1
        assert len(table) == 1

    def test_vector_insert_and_lookup(self):
        table = fresh_table(capacity=64)
        keys = np.arange(20, dtype=np.uint64)
        slots = table.insert(keys)
        assert len(np.unique(slots)) == 20  # distinct slots
        assert table.lookup(keys).tolist() == slots.tolist()
        missing = table.lookup(np.array([99, 100], dtype=np.uint64))
        assert missing.tolist() == [-1, -1]

    def test_lookup_on_empty_table(self):
        table = fresh_table()
        assert table.lookup(np.array([1, 2], dtype=np.uint64)).tolist() == [-1, -1]
        assert table.find(1) == -1

    def test_probe_wraps_around_the_capacity(self):
        # Three keys whose home is the LAST slot: the probe chain must
        # wrap to slot 0 and the keys must still resolve, scalar and
        # vectorized alike.
        capacity = 8
        table = fresh_table(capacity=capacity)
        keys = keys_with_home_slot(capacity, capacity - 1, 3)
        slots = [table.upsert(key)[0] for key in keys]
        assert slots[0] == capacity - 1
        assert slots[1] == 0 and slots[2] == 1  # wrapped
        for key, slot in zip(keys, slots):
            assert table.find(key) == slot
        vector = table.lookup(np.array(keys, dtype=np.uint64))
        assert vector.tolist() == slots

    def test_self_colliding_bulk_insert(self):
        # Many new keys share one home slot *within the same insert call*;
        # the round-based claims must still give every key its own slot on
        # a valid linear probe chain.
        capacity = 32
        table = fresh_table(capacity=capacity)
        keys = np.array(
            keys_with_home_slot(capacity, 5, 9), dtype=np.uint64
        )
        slots = table.insert(keys)
        assert len(np.unique(slots)) == len(keys)
        assert table.lookup(keys).tolist() == slots.tolist()
        for key, slot in zip(keys.tolist(), slots.tolist()):
            assert table.find(key) == slot

    def test_grow_preserves_entries_and_values(self):
        table = fresh_table(capacity=8)
        keys = np.arange(100, dtype=np.uint64)
        slots = table.insert(keys)  # far beyond 8 * MAX_LOAD: multiple grows
        table.columns["time"][slots] = keys.astype(np.float64)
        assert table.capacity >= 100 / MAX_LOAD / 2  # grew
        assert table.capacity & (table.capacity - 1) == 0  # still a power of 2
        found = table.lookup(keys)
        assert (found >= 0).all()
        assert table.columns["time"][found].tolist() == keys.astype(float).tolist()
        assert len(table) == 100

    def test_scalar_upsert_grows_too(self):
        table = fresh_table(capacity=4)
        slots = {}
        for key in range(50):
            slot, inserted = table.upsert(key)
            assert inserted
            table.columns["time"][slot] = float(key)
        for key in range(50):
            slot = table.find(key)
            assert slot >= 0
            assert table.columns["time"][slot] == float(key)

    def test_reserve_keep_evicts_marked_entries(self):
        table = fresh_table(capacity=8)
        keys = np.arange(4, dtype=np.uint64)
        slots = table.insert(keys)
        table.columns["time"][slots] = np.array([0.0, 10.0, 20.0, 30.0])
        # Force a rebuild that keeps only entries with time >= 15.
        rebuilt = table.reserve(3, keep=lambda: table.columns["time"] >= 15.0)
        assert rebuilt
        assert len(table) == 2
        assert table.lookup(keys).tolist()[0:2] == [-1, -1]
        kept = table.lookup(keys[2:])
        assert (kept >= 0).all()
        assert sorted(table.columns["time"][kept].tolist()) == [20.0, 30.0]

    def test_reserve_noop_under_load_limit(self):
        table = fresh_table(capacity=64)
        table.insert(np.arange(4, dtype=np.uint64))
        column_before = table.columns["time"]
        assert not table.reserve(4)
        assert table.columns["time"] is column_before

    def test_multi_column_specs(self):
        table = Int64KeyTable(
            {"times": (np.float64, 3), "count": (np.int32, 0)}, capacity=8
        )
        slot, _ = table.upsert(5)
        table.columns["times"][slot] = [1.0, 2.0, 3.0]
        table.columns["count"][slot] = 2
        table.insert(np.arange(100, 140, dtype=np.uint64))  # force grows
        slot = table.find(5)
        assert table.columns["times"][slot].tolist() == [1.0, 2.0, 3.0]
        assert table.columns["count"][slot] == 2

    def test_rejects_non_power_of_two_capacity(self):
        with pytest.raises(ValueError):
            Int64KeyTable({"time": (np.float64, 0)}, capacity=12)


# ---------------------------------------------------------------------------
# Dedup: table backend units + equivalence
# ---------------------------------------------------------------------------

class TestDedupTableBackend:
    def test_horizon_compaction_bounds_residency(self):
        dedup = DedupFilter(window=10.0, backend="table")
        for i in range(20_000):
            assert dedup.allow(
                Recommendation(recipient=i % 4096, candidate=i, created_at=0.0),
                now=float(i),
            )
        # Expired pairs are evicted when the table needs room, so the
        # live set tracks the window (~10 pairs), not the 20k inserts.
        assert dedup.tracked_pairs() < 2_000
        assert dedup._table.capacity <= 4096

    def test_wide_ids_rejected_with_guidance(self):
        dedup = DedupFilter(backend="table")
        with pytest.raises(ValueError, match="dict"):
            dedup.allow(
                Recommendation(recipient=2**40, candidate=1, created_at=0.0),
                now=0.0,
            )

    def test_entries_snapshot_matches_dict_backend(self):
        table = DedupFilter(window=100.0, backend="table")
        ref = DedupFilter(window=100.0, backend="dict")
        pairs = [(1, 2), (1, 3), (1, 2), (4, 5)]
        for i, (r, c) in enumerate(pairs):
            rec = Recommendation(recipient=r, candidate=c, created_at=0.0)
            assert table.allow(rec, now=float(i)) == ref.allow(rec, now=float(i))
        assert table.last_sent_entries() == ref.last_sent_entries()


def pair_stream():
    """Batches of (recipient, candidate) pairs with heavy repetition."""
    return st.lists(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=12,
        ),
        min_size=1,
        max_size=6,
    )


class TestDedupBackendEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        batches=pair_stream(),
        window=st.floats(1.0, 5_000.0, allow_nan=False),
        step=st.floats(0.0, 2_000.0, allow_nan=False),
    )
    def test_mask_decisions_match_dict(self, batches, window, step):
        table = DedupFilter(window=window, backend="table")
        ref = DedupFilter(window=window, backend="dict")
        for i, batch in enumerate(batches):
            now = i * step
            columns = columns_of(batch)
            assert (
                table.allow_mask(columns, now).tolist()
                == ref.allow_mask(columns, now).tolist()
            )
        # Observable state agrees on the live horizon (backends prune
        # expired entries at different moments).
        last_now = (len(batches) - 1) * step
        cutoff = last_now - window

        def live(entries):
            return {key: t for key, t in entries.items() if t >= cutoff}

        assert live(table.last_sent_entries()) == live(ref.last_sent_entries())

    @settings(max_examples=40, deadline=None)
    @given(batches=pair_stream(), window=st.floats(1.0, 5_000.0))
    def test_scalar_allow_matches_mask(self, batches, window):
        scalar = DedupFilter(window=window, backend="table")
        masked = DedupFilter(window=window, backend="table")
        for i, batch in enumerate(batches):
            now = i * 100.0
            mask = masked.allow_mask(columns_of(batch), now)
            decisions = [
                scalar.allow(
                    Recommendation(recipient=r, candidate=c, created_at=0.0), now
                )
                for r, c in batch
            ]
            assert mask.tolist() == decisions


# ---------------------------------------------------------------------------
# Fatigue: table backend units + equivalence
# ---------------------------------------------------------------------------

class TestFatigueTableBackend:
    def test_ring_wraps_across_rolling_windows(self):
        table = FatigueFilter(max_per_window=2, window=100.0, backend="table")
        ref = FatigueFilter(max_per_window=2, window=100.0, backend="dict")
        rec = Recommendation(recipient=1, candidate=0, created_at=0.0)
        for now in (0.0, 40.0, 80.0, 120.0, 160.0, 200.0, 500.0, 510.0, 520.0):
            assert table.allow(rec, now) == ref.allow(rec, now)
            assert table.sent_in_window(1, now) == ref.sent_in_window(1, now)

    def test_horizon_compaction_evicts_dead_users(self):
        fatigue = FatigueFilter(max_per_window=1, window=5.0, backend="table")
        for i in range(10_000):
            fatigue.allow(
                Recommendation(recipient=i, candidate=0, created_at=0.0),
                now=float(i),
            )
        assert fatigue._table.capacity <= 2048

    def test_huge_user_ids_supported(self):
        # Fatigue keys on the bare recipient, so 64-bit ids are fine.
        fatigue = FatigueFilter(max_per_window=1, backend="table")
        rec = Recommendation(recipient=2**62, candidate=1, created_at=0.0)
        assert fatigue.allow(rec, now=0.0)
        assert not fatigue.allow(rec, now=1.0)
        assert fatigue.sent_in_window(2**62, now=1.0) == 1


class TestFatigueBackendEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        batches=st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=10),
            min_size=1,
            max_size=6,
        ),
        cap=st.integers(1, 4),
        window=st.floats(1.0, 5_000.0, allow_nan=False),
        step=st.floats(0.0, 2_000.0, allow_nan=False),
    )
    def test_mask_decisions_match_dict(self, batches, cap, window, step):
        table = FatigueFilter(max_per_window=cap, window=window, backend="table")
        ref = FatigueFilter(max_per_window=cap, window=window, backend="dict")
        users = sorted({u for batch in batches for u in batch})
        for i, batch in enumerate(batches):
            now = i * step
            columns = columns_of([(u, i) for u in batch])
            assert (
                table.allow_mask(columns, now).tolist()
                == ref.allow_mask(columns, now).tolist()
            )
            for user in users:
                assert table.sent_in_window(user, now) == ref.sent_in_window(
                    user, now
                )

    @settings(max_examples=40, deadline=None)
    @given(
        batches=st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=10),
            min_size=1,
            max_size=5,
        ),
        cap=st.integers(1, 3),
    )
    def test_scalar_allow_matches_mask(self, batches, cap):
        scalar = FatigueFilter(max_per_window=cap, window=300.0, backend="table")
        masked = FatigueFilter(max_per_window=cap, window=300.0, backend="table")
        for i, batch in enumerate(batches):
            now = i * 100.0
            mask = masked.allow_mask(columns_of([(u, i) for u in batch]), now)
            decisions = [
                scalar.allow(
                    Recommendation(recipient=u, candidate=i, created_at=0.0), now
                )
                for u in batch
            ]
            assert mask.tolist() == decisions


# ---------------------------------------------------------------------------
# Snapshots (delivery-tier restarts)
# ---------------------------------------------------------------------------

class TestTableSnapshots:
    SPEC = {"time": (np.float64, 0), "ring": (np.float64, 4)}

    def test_round_trip_preserves_live_state(self, tmp_path):
        table = Int64KeyTable(self.SPEC, capacity=8)
        keys = np.arange(100, dtype=np.uint64) * np.uint64(7919)
        slots = table.insert(keys)
        table.columns["time"][slots] = np.arange(100, dtype=np.float64)
        table.columns["ring"][slots] = np.arange(400, dtype=np.float64).reshape(
            100, 4
        )
        table.save_npz(tmp_path / "table")

        loaded = Int64KeyTable.from_snapshot(tmp_path / "table", self.SPEC)
        assert len(loaded) == len(table)
        found = loaded.lookup(keys)
        assert (found >= 0).all()
        np.testing.assert_array_equal(
            loaded.columns["time"][found], np.arange(100, dtype=np.float64)
        )
        np.testing.assert_array_equal(
            loaded.columns["ring"][found],
            np.arange(400, dtype=np.float64).reshape(100, 4),
        )

    def test_empty_table_round_trips(self, tmp_path):
        table = Int64KeyTable(self.SPEC)
        table.save_npz(tmp_path / "empty.npz")
        loaded = Int64KeyTable.from_snapshot(tmp_path / "empty.npz", self.SPEC)
        assert len(loaded) == 0
        assert loaded.find(123) == -1

    def test_schema_mismatch_rejected(self, tmp_path):
        table = Int64KeyTable({"time": (np.float64, 0)})
        table.upsert(5)
        table.save_npz(tmp_path / "t")
        with pytest.raises(ValueError, match="schema"):
            Int64KeyTable.from_snapshot(tmp_path / "t", {"other": (np.float64, 0)})
        with pytest.raises(ValueError, match="shape"):
            Int64KeyTable.from_snapshot(tmp_path / "t", {"time": (np.float64, 3)})

    def test_dedup_filter_survives_restart(self, tmp_path):
        before = DedupFilter(window=100.0, backend="table")
        recs = [
            Recommendation(recipient=r, candidate=c, created_at=0.0)
            for r, c in [(1, 9), (2, 9), (3, 8)]
        ]
        for rec in recs:
            assert before.allow(rec, now=50.0)
        before.save_npz(tmp_path / "dedup")

        after = DedupFilter.from_snapshot(tmp_path / "dedup", window=100.0)
        # In-window pairs stay suppressed across the restart...
        for rec in recs:
            assert not after.allow(rec, now=120.0)
        # ...and expire on the same horizon the old filter would have used.
        assert after.allow(recs[0], now=151.0)
        assert after.last_sent_entries().keys() == before.last_sent_entries().keys()

    def test_fatigue_filter_survives_restart(self, tmp_path):
        before = FatigueFilter(max_per_window=2, window=100.0, backend="table")
        rec = Recommendation(recipient=7, candidate=1, created_at=0.0)
        assert before.allow(rec, now=10.0)
        assert before.allow(rec, now=20.0)
        assert not before.allow(rec, now=30.0)
        before.save_npz(tmp_path / "fatigue")

        after = FatigueFilter.from_snapshot(
            tmp_path / "fatigue", max_per_window=2, window=100.0
        )
        assert after.sent_in_window(7, now=30.0) == 2
        # Budget still spent right after the restart, refreshed once the
        # earliest charge rolls out of the window.
        assert not after.allow(rec, now=40.0)
        assert after.allow(rec, now=115.0)

    def test_fatigue_snapshot_rejects_mismatched_cap(self, tmp_path):
        before = FatigueFilter(max_per_window=2, window=100.0, backend="table")
        before.allow(Recommendation(recipient=1, candidate=1, created_at=0.0), 1.0)
        before.save_npz(tmp_path / "fatigue")
        with pytest.raises(ValueError, match="shape"):
            FatigueFilter.from_snapshot(
                tmp_path / "fatigue", max_per_window=3, window=100.0
            )

    def test_dict_backend_refuses_snapshots(self, tmp_path):
        with pytest.raises(ValueError, match="backend='table'"):
            DedupFilter(backend="dict").save_npz(tmp_path / "nope")
        with pytest.raises(ValueError, match="backend='table'"):
            FatigueFilter(backend="dict").save_npz(tmp_path / "nope")
