"""Batch/per-candidate delivery equivalence: the columnar funnel changes
nothing.

``DeliveryPipeline.offer_batch`` exists purely for throughput; these tests
are the guarantee that it is *semantics-preserving* against sequential
``offer`` calls: identical survivors (content and order), identical
per-stage ``FunnelCounter`` accounting (key for key), identical notifier
output, and identical filter state afterwards — across random candidate
streams, random filter configurations, and both funnel entry points
(detector-emitted columnar batches and re-columned boxed lists).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ActionType, Recommendation, RecommendationBatch
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    RecommendationGroup,
)
from repro.delivery import (
    DedupFilter,
    DeliveryPipeline,
    FatigueFilter,
    PushNotifier,
    TopKPerUserBuffer,
    WakingHoursFilter,
)

HOUR = 3600.0


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def group_strategy(num_users: int = 12, num_candidates: int = 6):
    """One detection group: a recipient audience for a shared candidate."""
    return st.builds(
        lambda recipients, candidate, created_at, via: RecommendationGroup(
            sorted(set(recipients)),
            candidate=candidate,
            created_at=created_at,
            via=tuple(via),
        ),
        recipients=st.lists(
            st.integers(0, num_users - 1), min_size=1, max_size=8
        ),
        candidate=st.integers(100, 100 + num_candidates - 1),
        created_at=st.floats(0.0, 100.0, allow_nan=False),
        via=st.lists(st.integers(0, num_users - 1), min_size=0, max_size=4),
    )


def batch_strategy():
    return st.builds(
        RecommendationBatch, st.lists(group_strategy(), min_size=0, max_size=6)
    )


def filters_strategy():
    """A random funnel configuration (subset + parameters + backends,
    order fixed)."""
    return st.builds(
        lambda dedup_window, waking, fatigue_cap, use_dedup, use_fatigue, backends: [
            stage
            for stage in (
                DedupFilter(window=dedup_window, backend=backends[0])
                if use_dedup
                else None,
                WakingHoursFilter(
                    waking_start_hour=waking[0],
                    waking_end_hour=waking[1],
                    timezone_salt=waking[2],
                ),
                FatigueFilter(max_per_window=fatigue_cap, backend=backends[1])
                if use_fatigue
                else None,
            )
            if stage is not None
        ],
        dedup_window=st.floats(10.0, 1e5, allow_nan=False),
        waking=st.tuples(
            st.integers(0, 11), st.integers(12, 24), st.integers(0, 3)
        ),
        fatigue_cap=st.integers(1, 4),
        use_dedup=st.booleans(),
        use_fatigue=st.booleans(),
        backends=st.tuples(
            st.sampled_from(("table", "dict")), st.sampled_from(("table", "dict"))
        ),
    )


def assert_pipelines_equal(batched: DeliveryPipeline, sequential: DeliveryPipeline):
    assert batched.funnel.stages == sequential.funnel.stages
    assert batched.notifier.delivered_total == sequential.notifier.delivered_total
    assert batched.notifier.per_user == sequential.notifier.per_user
    assert [
        (n.recipient, n.recommendation.candidate, n.delivered_at)
        for n in batched.notifier.notifications
    ] == [
        (n.recipient, n.recommendation.candidate, n.delivered_at)
        for n in sequential.notifier.notifications
    ]


# ---------------------------------------------------------------------------
# The equivalence property
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(batch_strategy(), min_size=1, max_size=5),
    filters=filters_strategy(),
    start=st.floats(0.0, 86_400.0, allow_nan=False),
)
def test_offer_batch_equivalent_to_sequential_offers(batches, filters, start):
    """offer_batch == offer-per-candidate on random batches and funnels.

    Repeated (recipient, candidate) pairs inside and across batches
    exercise dedup's in-batch sequencing; small fatigue caps exercise the
    stateful budget; the waking filter's per-user timezones exercise the
    vectorized stage.  Filter *state* must match too, which the successive
    batches verify (batch i sees the state batches < i left behind).
    """
    import copy

    sequential_filters = copy.deepcopy(filters)
    batched = DeliveryPipeline(filters=filters, notifier=PushNotifier())
    sequential = DeliveryPipeline(
        filters=sequential_filters, notifier=PushNotifier()
    )
    for i, batch in enumerate(batches):
        now = start + i * 600.0
        delivered_batched = batched.offer_batch(batch, now)
        delivered_sequential = [
            n
            for rec in batch
            if (n := sequential.offer(rec, now)) is not None
        ]
        assert [n.recipient for n in delivered_batched] == [
            n.recipient for n in delivered_sequential
        ]
    assert_pipelines_equal(batched, sequential)


@settings(max_examples=25, deadline=None)
@given(
    batch=batch_strategy(),
    start=st.floats(0.0, 86_400.0, allow_nan=False),
)
def test_offer_batch_matches_offer_all_on_boxed_view(batch, start):
    """The boxed view of a batch offered per-candidate agrees exactly."""
    batched = DeliveryPipeline()
    sequential = DeliveryPipeline()
    batched.offer_batch(batch, start)
    sequential.offer_all(batch.to_recommendations(), start)
    assert_pipelines_equal(batched, sequential)


def test_offer_batch_falls_back_for_custom_filters():
    """A stage without allow_mask routes the batch through the exact loop."""

    class EvenRecipientsOnly:
        name = "even"

        def allow(self, rec, now):
            return rec.recipient % 2 == 0

    batch = RecommendationBatch(
        [RecommendationGroup([1, 2, 3, 4], candidate=9, created_at=0.0)]
    )
    pipeline = DeliveryPipeline(filters=[EvenRecipientsOnly()])
    delivered = pipeline.offer_batch(batch, now=0.0)
    assert [n.recipient for n in delivered] == [2, 4]
    assert pipeline.funnel.get("raw") == 4
    assert pipeline.funnel.get("dropped:even") == 2


def test_offer_batch_empty_counts_nothing():
    pipeline = DeliveryPipeline()
    assert pipeline.offer_batch(EMPTY_RECOMMENDATION_BATCH, now=0.0) == []
    assert pipeline.funnel.stages == {}


# ---------------------------------------------------------------------------
# Per-stage allow_mask units
# ---------------------------------------------------------------------------

def columns_of(pairs):
    batch = RecommendationBatch(
        [
            RecommendationGroup([recipient], candidate=candidate, created_at=0.0)
            for recipient, candidate in pairs
        ]
    )
    return batch.columns()


class TestDedupAllowMask:
    def test_in_batch_repeat_blocked(self):
        dedup = DedupFilter(window=100.0)
        mask = dedup.allow_mask(columns_of([(1, 2), (1, 2), (1, 3)]), now=0.0)
        assert mask.tolist() == [True, False, True]

    def test_window_expiry_across_calls(self):
        dedup = DedupFilter(window=100.0)
        assert dedup.allow_mask(columns_of([(1, 2)]), now=0.0).tolist() == [True]
        assert dedup.allow_mask(columns_of([(1, 2)]), now=50.0).tolist() == [False]
        assert dedup.allow_mask(columns_of([(1, 2)]), now=151.0).tolist() == [True]

    def test_mask_prunes_like_scalar_path(self):
        # The dict backend is the one with the opportunistic prune cadence
        # (the table backend compacts on occupancy instead).
        scalar = DedupFilter(window=10.0, backend="dict")
        batched = DedupFilter(window=10.0, backend="dict")
        pairs = [(i, 0) for i in range(3 * DedupFilter.PRUNE_EVERY)]
        for i, (recipient, candidate) in enumerate(pairs):
            scalar.allow(
                Recommendation(recipient, candidate, created_at=0.0), now=float(i)
            )
        # Feed the batched filter in chunks at the same times.
        chunk = DedupFilter.PRUNE_EVERY
        for offset in range(0, len(pairs), chunk):
            part = pairs[offset : offset + chunk]
            columns = columns_of(part)
            # allow_mask takes one shared now; emulate by per-item calls on
            # single-row columns to keep timestamps identical.
            for j, (recipient, candidate) in enumerate(part):
                batched.allow_mask(
                    columns_of([(recipient, candidate)]), now=float(offset + j)
                )
        assert batched._last_sent == scalar._last_sent
        assert batched.tracked_pairs() == scalar.tracked_pairs()


class TestWakingAllowMask:
    def test_matches_scalar_for_many_users_and_times(self):
        for salt in (0, 7):
            for home in (None, -5):
                waking = WakingHoursFilter(
                    timezone_salt=salt, home_offset_hours=home
                )
                recipients = list(range(300))
                for now in (0.0, 3.5 * HOUR, 13 * HOUR, 100_000.0):
                    mask = waking.allow_mask(
                        columns_of([(r, 0) for r in recipients]), now
                    )
                    scalar = [waking.is_awake(r, now) for r in recipients]
                    assert mask.tolist() == scalar

    def test_huge_user_ids(self):
        waking = WakingHoursFilter()
        users = [2**62, 2**63 - 1, 0]
        mask = waking.allow_mask(columns_of([(u, 0) for u in users]), now=0.0)
        assert mask.tolist() == [waking.is_awake(u, 0.0) for u in users]


class TestFatigueAllowMask:
    def test_budget_charged_in_order(self):
        fatigue = FatigueFilter(max_per_window=2, window=100.0)
        mask = fatigue.allow_mask(
            columns_of([(1, 0), (1, 1), (1, 2), (2, 0)]), now=0.0
        )
        assert mask.tolist() == [True, True, False, True]

    def test_window_rolls_across_calls(self):
        fatigue = FatigueFilter(max_per_window=1, window=100.0)
        assert fatigue.allow_mask(columns_of([(1, 0)]), now=0.0).tolist() == [True]
        assert fatigue.allow_mask(columns_of([(1, 0)]), now=50.0).tolist() == [False]
        assert fatigue.allow_mask(columns_of([(1, 0)]), now=150.0).tolist() == [True]
        assert fatigue.sent_in_window(1, now=150.0) == 1


# ---------------------------------------------------------------------------
# RecommendationBatch mechanics
# ---------------------------------------------------------------------------

class TestRecommendationBatch:
    def make_batch(self):
        return RecommendationBatch(
            [
                RecommendationGroup(
                    [1, 2, 3], candidate=9, created_at=5.0, via=(7, 8)
                ),
                RecommendationGroup(
                    np.array([4, 5], dtype=np.int64),
                    candidate=10,
                    created_at=6.0,
                    action=ActionType.RETWEET,
                ),
            ]
        )

    def test_lazy_boxed_view_matches_columns(self):
        batch = self.make_batch()
        recs = list(batch)
        assert len(batch) == 5
        assert [r.recipient for r in recs] == [1, 2, 3, 4, 5]
        assert [r.candidate for r in recs] == [9, 9, 9, 10, 10]
        assert recs[0].via == (7, 8)
        assert recs[3].action is ActionType.RETWEET
        columns = batch.columns()
        assert columns.recipients.tolist() == [1, 2, 3, 4, 5]
        assert columns.candidates.tolist() == [9, 9, 9, 10, 10]
        assert batch[3] == recs[3]
        assert batch[-1] == recs[-1]

    def test_ndarray_via_decodes_lazily(self):
        group = RecommendationGroup(
            [1], candidate=2, created_at=0.0, via=np.array([5, 6], dtype=np.int64)
        )
        assert group.num_witnesses == 2
        assert group.via == (5, 6)
        assert group.recommendation_at(0).via == (5, 6)

    def test_select_boxes_only_survivors(self):
        batch = self.make_batch()
        picked = batch.select(np.array([0, 2, 4]))
        assert [r.recipient for r in picked] == [1, 3, 5]
        assert [r.candidate for r in picked] == [9, 9, 10]

    def test_round_trip_through_boxed_form(self):
        batch = self.make_batch()
        rebuilt = RecommendationBatch.from_recommendations(list(batch))
        assert rebuilt == batch
        assert len(rebuilt.groups) == 2

    def test_concat_aliases_empties(self):
        batch = self.make_batch()
        assert batch.concat(EMPTY_RECOMMENDATION_BATCH) is batch
        assert EMPTY_RECOMMENDATION_BATCH.concat(batch) is batch
        merged = batch.concat(batch)
        assert len(merged) == 10
        assert not EMPTY_RECOMMENDATION_BATCH

    def test_scoring_offer_batch_equivalent(self):
        batch = self.make_batch()
        batched = TopKPerUserBuffer(k=1)
        sequential = TopKPerUserBuffer(k=1)
        batched.offer_batch(batch)
        for rec in batch:
            sequential.offer(rec)
        assert batched.offered == sequential.offered == 5
        assert batched.pending() == sequential.pending()
        assert batched.flush(now=10.0) == sequential.flush(now=10.0)
