"""Unit tests for the polling baseline (ruled-out approach #1)."""

import pytest

from repro.baselines.polling import (
    PollingDetector,
    run_polling_simulation,
)
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams

from tests.conftest import A2, B1, B2, C2, FIGURE1_FOLLOWS

PARAMS = DetectionParams(k=2, tau=600.0)


class TestPollingDetector:
    def test_no_detection_between_polls(self):
        detector = PollingDetector(FIGURE1_FOLLOWS, PARAMS)
        detector.observe(EdgeEvent(0.0, B1, C2))
        detector.observe(EdgeEvent(10.0, B2, C2))
        # Nothing surfaces until someone polls.
        found, _reads = detector.poll(20.0)
        assert [(r.recipient, r.candidate) for r in found] == [(A2, C2)]

    def test_completion_time_is_kth_source(self):
        detector = PollingDetector(FIGURE1_FOLLOWS, PARAMS)
        detector.observe(EdgeEvent(0.0, B1, C2))
        detector.observe(EdgeEvent(10.0, B2, C2))
        found, _ = detector.poll(500.0)
        assert found[0].completed_at == 10.0
        assert found[0].delay == 490.0

    def test_cross_poll_dedup(self):
        detector = PollingDetector(FIGURE1_FOLLOWS, PARAMS)
        detector.observe(EdgeEvent(0.0, B1, C2))
        detector.observe(EdgeEvent(10.0, B2, C2))
        first, _ = detector.poll(20.0)
        second, _ = detector.poll(40.0)
        assert len(first) == 1
        assert second == []

    def test_window_expiry(self):
        detector = PollingDetector(FIGURE1_FOLLOWS, PARAMS)
        detector.observe(EdgeEvent(0.0, B1, C2))
        detector.observe(EdgeEvent(10.0, B2, C2))
        found, _ = detector.poll(700.0)  # both edges stale by now
        assert found == []

    def test_reads_scale_with_users_polled(self):
        detector = PollingDetector(FIGURE1_FOLLOWS, PARAMS)
        _, reads_all = detector.poll(1.0)
        _, reads_one = detector.poll(2.0, user_ids=[A2])
        assert reads_all > reads_one
        assert reads_one == 1 + 2  # A2's list + two followings

    def test_existing_follower_not_recommended(self):
        follows = FIGURE1_FOLLOWS + [(A2, C2)]
        detector = PollingDetector(follows, PARAMS)
        detector.observe(EdgeEvent(0.0, B1, C2))
        detector.observe(EdgeEvent(10.0, B2, C2))
        found, _ = detector.poll(20.0)
        assert found == []


class TestPollingSimulation:
    def events(self):
        return [EdgeEvent(0.0, B1, C2), EdgeEvent(10.0, B2, C2)]

    def test_finds_motif_with_delay(self):
        report = run_polling_simulation(
            FIGURE1_FOLLOWS, self.events(), poll_interval=100.0, params=PARAMS
        )
        assert len(report.recommendations) == 1
        rec = report.recommendations[0]
        assert rec.completed_at == 10.0
        assert rec.detected_at == 100.0
        assert rec.delay == 90.0

    def test_smaller_interval_means_smaller_delay(self):
        slow = run_polling_simulation(
            FIGURE1_FOLLOWS, self.events(), poll_interval=300.0, params=PARAMS
        )
        fast = run_polling_simulation(
            FIGURE1_FOLLOWS, self.events(), poll_interval=30.0, params=PARAMS
        )
        assert fast.recommendations[0].delay < slow.recommendations[0].delay

    def test_smaller_interval_costs_more_reads(self):
        slow = run_polling_simulation(
            FIGURE1_FOLLOWS,
            self.events(),
            poll_interval=300.0,
            params=PARAMS,
            duration=600.0,
        )
        fast = run_polling_simulation(
            FIGURE1_FOLLOWS,
            self.events(),
            poll_interval=30.0,
            params=PARAMS,
            duration=600.0,
        )
        assert fast.adjacency_reads > slow.adjacency_reads
        assert fast.polls > slow.polls

    def test_all_events_observed(self):
        report = run_polling_simulation(
            FIGURE1_FOLLOWS, self.events(), poll_interval=50.0, params=PARAMS
        )
        assert report.events_observed == 2

    def test_empty_stream(self):
        report = run_polling_simulation(
            FIGURE1_FOLLOWS, [], poll_interval=10.0, params=PARAMS
        )
        assert report.polls == 0
        assert report.recommendations == []

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            run_polling_simulation(FIGURE1_FOLLOWS, self.events(), poll_interval=0.0)

    def test_reads_per_second(self):
        report = run_polling_simulation(
            FIGURE1_FOLLOWS, self.events(), poll_interval=5.0, params=PARAMS
        )
        assert report.reads_per_second(10.0) == report.adjacency_reads / 10.0
        assert report.reads_per_second(0.0) == 0.0
