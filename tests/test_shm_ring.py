"""Unit tests for the shared-memory ring protocol and the slab frame codec.

The equivalence suites prove the shm *transports* compute the same
answers; these tests pin the wire's own invariants — wraparound,
full-ring backpressure, torn-frame detection, overflow behaviour, and
segment reclamation — at the protocol level, where a regression would
otherwise surface as a flaky hang.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster.shm import (
    RingPair,
    ShmRing,
    TornFrameError,
    live_segment_names,
    shm_available,
    sweep_segments,
)
from repro.core.wire import (
    FRAME_EVENT_BATCH,
    FRAME_PICKLE,
    read_frame,
    write_frame,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this host"
)


def _payload(i: int) -> np.ndarray:
    return np.full(8, i, dtype=np.uint8)


class TestRingProtocol:
    def test_frames_survive_wraparound(self):
        ring = ShmRing.create(slots=4, slot_bytes=64)
        try:
            for i in range(10):  # 2.5 laps around a 4-slot ring
                mem = ring.try_acquire_slot()
                mem[:8] = _payload(i)
                ring.commit_slot(8)
                frame = ring.try_acquire_frame()
                assert frame is not None and len(frame) == 8
                assert (frame == i).all()
                ring.release_frame()
            del mem, frame  # held views would pin the mmap past close
            assert ring.occupancy() == 0
        finally:
            ring.close()

    def test_full_ring_blocks_writer_only(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            for i in range(2):
                ring.try_acquire_slot()[:8] = _payload(i)
                ring.commit_slot(8)
            assert ring.occupancy() == 2
            assert ring.try_acquire_slot() is None
            assert ring.acquire_slot(timeout=0.05) is None
            # The reader is never blocked by the full ring...
            frame = ring.try_acquire_frame()
            assert (frame == 0).all()
            ring.release_frame()
            del frame
            # ...and releasing one frame frees exactly one slot.
            assert ring.try_acquire_slot() is not None
        finally:
            ring.close()

    def test_empty_ring_returns_none_to_reader(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            assert ring.try_acquire_frame() is None
            assert ring.acquire_frame(timeout=0.05) is None
        finally:
            ring.close()

    def test_torn_frame_detected(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            # Simulate a writer that died mid-commit: seq_open stamped,
            # head published, but seq_commit never written.
            head = int(ring._ctrl[0])
            base = ring._slot_base(head)
            header = ring._mem[base : base + 24].view(np.uint64)
            header[0] = head + 1  # seq_open
            ring._ctrl[0] = head + 1  # publish without committing
            del header
            with pytest.raises(TornFrameError):
                ring.try_acquire_frame()
        finally:
            ring.close()

    def test_abandoned_slot_is_harmless(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            assert ring.try_acquire_slot() is not None  # acquired, dropped
            ring.try_acquire_slot()[:8] = _payload(7)
            ring.commit_slot(8)
            assert (ring.try_acquire_frame() == 7).all()
            ring.release_frame()
        finally:
            ring.close()

    def test_commit_rejects_oversized_frame(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            ring.try_acquire_slot()
            with pytest.raises(ValueError, match="slot capacity"):
                ring.commit_slot(65)
        finally:
            ring.close()

    def test_slot_bytes_must_be_aligned(self):
        with pytest.raises(ValueError, match="8-byte"):
            ShmRing.create(slots=2, slot_bytes=63)

    def test_close_unlinks_owned_segment(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        name = ring.name
        assert name in live_segment_names()
        assert os.path.exists(f"/dev/shm/{name}")
        ring.close()
        assert name not in live_segment_names()
        assert not os.path.exists(f"/dev/shm/{name}")
        ring.close()  # idempotent

    def test_sweep_reclaims_forgotten_segments(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        name = ring.name
        assert sweep_segments([name]) == 1
        assert not os.path.exists(f"/dev/shm/{name}")
        assert sweep_segments([name]) == 0  # already gone


class TestFrameCodec:
    def _ring(self):
        return ShmRing.create(slots=2, slot_bytes=1024)

    def test_round_trip_all_dtypes_and_blobs(self):
        ring = self._ring()
        try:
            cols = (
                np.array([1, -2, 3], dtype=np.int64),
                np.array([0.5, 1.5], dtype=np.float64),
                np.array([7], dtype=np.uint8),
                np.array([9, 10], dtype=np.uint16),
                np.array([], dtype=np.uint64),
            )
            blobs = (b"diamond\x00wedge", b"")
            mem = ring.try_acquire_slot()
            nbytes = write_frame(
                mem, FRAME_EVENT_BATCH, cols, blobs, now=42.0,
                latency=0.25, aux=-3,
            )
            assert nbytes is not None
            ring.commit_slot(nbytes)
            kind, got_cols, got_blobs, now, latency, aux = read_frame(
                ring.try_acquire_frame(), copy=True
            )
            assert kind == FRAME_EVENT_BATCH
            assert now == 42.0 and latency == 0.25 and aux == -3
            assert tuple(got_blobs) == blobs
            for want, got in zip(cols, got_cols):
                assert got.dtype == want.dtype
                assert np.array_equal(got, want)
            del mem
            ring.release_frame()
        finally:
            ring.close()

    def test_marker_frame_round_trips(self):
        ring = self._ring()
        try:
            mem = ring.try_acquire_slot()
            ring.commit_slot(write_frame(mem, FRAME_PICKLE))
            kind, cols, blobs, now, _latency, _aux = read_frame(
                ring.try_acquire_frame()
            )
            assert kind == FRAME_PICKLE
            assert list(cols) == [] and list(blobs) == [] and now is None
            del mem
            ring.release_frame()
        finally:
            ring.close()

    def test_overflow_returns_none_and_writes_nothing(self):
        ring = ShmRing.create(slots=2, slot_bytes=64)
        try:
            mem = ring.try_acquire_slot()
            big = (np.arange(1000, dtype=np.int64),)
            assert write_frame(mem, FRAME_EVENT_BATCH, big) is None
            # The slot is reusable: a fitting frame still goes through.
            nbytes = write_frame(mem, FRAME_PICKLE)
            assert nbytes is not None
            ring.commit_slot(nbytes)
            del mem
            assert read_frame(ring.try_acquire_frame())[0] == FRAME_PICKLE
            ring.release_frame()
        finally:
            ring.close()

    def test_zero_copy_views_alias_the_slab(self):
        ring = self._ring()
        try:
            col = np.array([5, 6, 7], dtype=np.int64)
            mem = ring.try_acquire_slot()
            ring.commit_slot(write_frame(mem, FRAME_EVENT_BATCH, (col,)))
            frame = ring.try_acquire_frame()
            _kind, (view,), _blobs, _now, _lat, _aux = read_frame(frame)
            assert view.base is not None  # a view, not a copy
            _kind, (copied,), *_rest = read_frame(frame, copy=True)
            assert copied.base is None or copied.base is not frame
            del mem, frame, view
            ring.release_frame()
        finally:
            ring.close()


class TestRingPair:
    def test_post_control_orders_queue_before_marker(self):
        import queue as queue_mod

        pair = RingPair.create(slots=2, slot_bytes=64)
        q = queue_mod.Queue()
        try:
            assert pair.post_control(q, ("health",))
            # Marker on the ring; payload already on the queue.
            frame = pair.request.try_acquire_frame()
            assert read_frame(frame)[0] == FRAME_PICKLE
            pair.request.release_frame()
            del frame
            assert q.get_nowait() == ("health",)
            assert pair.control_pickle == 1
        finally:
            pair.close()

    def test_spec_attach_round_trip(self):
        pair = RingPair.create(slots=2, slot_bytes=64)
        try:
            peer = RingPair.attach(pair.spec)
            mem = pair.request.try_acquire_slot()
            pair.request.commit_slot(write_frame(mem, FRAME_PICKLE))
            assert read_frame(peer.request.try_acquire_frame())[0] == FRAME_PICKLE
            peer.request.release_frame()
            del mem
            peer.close()  # non-owner close never unlinks
            assert os.path.exists(f"/dev/shm/{pair.spec.request_name}")
        finally:
            pair.close()
        assert not os.path.exists(f"/dev/shm/{pair.spec.request_name}")
        assert not os.path.exists(f"/dev/shm/{pair.spec.reply_name}")
