"""Check that relative links in markdown docs resolve to real files.

The CI docs job runs this over README.md and docs/*.md so a moved or
renamed file can't silently orphan its references.  External links
(http/https/mailto) and pure in-page anchors are skipped; a relative
link's ``#fragment`` suffix is ignored — only file existence is checked.

Usage::

    python tools/check_docs_links.py README.md docs/*.md

Exit status: 0 when every relative link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — excluding images' leading "!"
#: is unnecessary since image targets must resolve too.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: Path) -> list[str]:
    """Relative link targets in *path* that do not exist on disk."""
    broken = []
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(target)
    return broken


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_docs_links.py FILE.md [FILE.md ...]")
        return 2
    failures = 0
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"error: no such file {path}")
            failures += 1
            continue
        checked += 1
        for target in broken_links(path):
            print(f"BROKEN: {path}: ({target}) does not resolve")
            failures += 1
    print(f"checked {checked} file(s)")
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print("all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
