"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments without the ``wheel`` package (pip falls back to the legacy
``setup.py develop`` code path).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
