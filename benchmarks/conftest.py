"""Benchmark-suite plumbing: the session-wide experiment reporter.

Benchmarks register paper-versus-measured tables on the ``report``
fixture; ``pytest_terminal_summary`` prints every table after the
pytest-benchmark timing output and also writes them to
``benchmarks/results/experiments.txt`` for the record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import Reporter

_REPORTER = Reporter()

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report() -> Reporter:
    """The session-wide experiment table collector."""
    return _REPORTER


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every collected experiment table and persist them.

    Machine-readable records registered via ``report.record(...)`` are
    written as ``benchmarks/results/BENCH_<name>.json`` so the perf
    trajectory can be tracked across PRs.
    """
    if _REPORTER.records:
        for path in _REPORTER.write_json(RESULTS_DIR):
            terminalreporter.write_line(f"wrote {path}")
    if not _REPORTER.tables:
        return
    text = _REPORTER.render()
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    terminalreporter.write_line(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "experiments.txt").write_text(text + "\n")
