"""E11 — Intersection-kernel ablation: "intersections can be implemented
efficiently using well-known algorithms".

The paper keeps S's adjacency lists sorted precisely to make the
bottom-half intersections cheap.  This experiment ablates the kernel
choices on the two list shapes that matter:

* **balanced** lists (two ordinary users' followers);
* **skewed** lists (an ordinary user against a celebrity hub), where
  galloping's O(|short| log |long|) beats the linear merge;

and the k-overlap algorithms (ScanCount vs heap merge vs numpy) at the
sizes the detector actually sees.
"""

import pytest

from repro.graph.intersect import (
    intersect_galloping,
    intersect_hash,
    intersect_merge,
    k_overlap_heap,
    k_overlap_numpy,
    k_overlap_scancount,
)
from repro.util.rng import make_rng


def sorted_sample(rng, universe, size):
    return sorted(rng.sample(range(universe), size))


@pytest.fixture(scope="module")
def balanced_lists():
    rng = make_rng(5, "balanced")
    return (
        sorted_sample(rng, 200_000, 5_000),
        sorted_sample(rng, 200_000, 5_000),
    )


@pytest.fixture(scope="module")
def skewed_lists():
    rng = make_rng(5, "skewed")
    return (
        sorted_sample(rng, 2_000_000, 200),
        sorted_sample(rng, 2_000_000, 200_000),
    )


@pytest.fixture(scope="module")
def witness_lists():
    """Eight follower lists as a hot trigger would fetch them."""
    rng = make_rng(5, "witness")
    return [sorted_sample(rng, 100_000, rng.randint(500, 8_000)) for _ in range(8)]


@pytest.mark.parametrize(
    "algo", [intersect_merge, intersect_galloping, intersect_hash]
)
def test_pairwise_balanced(benchmark, algo, balanced_lists):
    benchmark.group = "E11 pairwise balanced (5k x 5k)"
    a, b = balanced_lists
    result = benchmark(lambda: algo(a, b))
    assert result == intersect_merge(a, b)


@pytest.mark.parametrize(
    "algo", [intersect_merge, intersect_galloping, intersect_hash]
)
def test_pairwise_skewed(benchmark, algo, skewed_lists):
    benchmark.group = "E11 pairwise skewed (200 x 200k)"
    a, b = skewed_lists
    result = benchmark(lambda: algo(a, b))
    assert result == intersect_merge(a, b)


@pytest.mark.parametrize(
    "algo", [k_overlap_scancount, k_overlap_heap, k_overlap_numpy]
)
def test_k_overlap_hot_trigger(benchmark, algo, witness_lists):
    benchmark.group = "E11 k-overlap (8 witness lists, k=3)"
    result = benchmark(lambda: algo(witness_lists, 3))
    assert result == k_overlap_scancount(witness_lists, 3)


def test_record_ablation_table(benchmark, balanced_lists, skewed_lists, witness_lists, report):
    """Summarise the crossovers in the experiment table (single-shot timings)."""
    import time

    def best_of(func, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            func(*args)
            best = min(best, time.perf_counter() - start)
        return best

    benchmark(lambda: intersect_galloping(*skewed_lists))

    rows = [
        ("merge, balanced", best_of(intersect_merge, *balanced_lists)),
        ("galloping, balanced", best_of(intersect_galloping, *balanced_lists)),
        ("merge, skewed", best_of(intersect_merge, *skewed_lists)),
        ("galloping, skewed", best_of(intersect_galloping, *skewed_lists)),
        ("scancount, 8 lists", best_of(k_overlap_scancount, witness_lists, 3)),
        ("heap-merge, 8 lists", best_of(k_overlap_heap, witness_lists, 3)),
        ("numpy, 8 lists", best_of(k_overlap_numpy, witness_lists, 3)),
    ]
    table = report.table(
        "E11",
        "intersection / k-overlap kernel ablation",
        ["kernel, shape", "best time"],
    )
    for name, seconds in rows:
        table.add_row(name, f"{seconds * 1e3:.3f} ms")
        kernel, shape = (part.strip() for part in name.split(","))
        report.record(
            "intersection",
            {"kernel": kernel, "shape": shape},
            {"best_ms": round(seconds * 1e3, 4)},
        )
    timings = dict(rows)
    report.record(
        "intersection",
        {"comparison": "crossovers"},
        {
            "gallop_speedup_skewed": round(
                timings["merge, skewed"] / max(timings["galloping, skewed"], 1e-9), 3
            ),
            "numpy_speedup_koverlap": round(
                timings["heap-merge, 8 lists"] / max(timings["numpy, 8 lists"], 1e-9), 3
            ),
        },
    )
    table.add_note(
        "expected shape: galloping wins on skewed pairs "
        f"({timings['merge, skewed'] / max(timings['galloping, skewed'], 1e-9):.1f}x here); "
        "numpy wins large k-overlap "
        f"({timings['heap-merge, 8 lists'] / max(timings['numpy, 8 lists'], 1e-9):.1f}x over heap)"
    )

    # The load-bearing crossover (generously margined to dodge CI noise).
    assert timings["galloping, skewed"] < timings["merge, skewed"], (
        "galloping must beat the linear merge on 1000x-skewed lists"
    )
