"""Assert the freshly recorded E18 numbers show real multicore speedup.

The CI ``scaling-record`` job re-runs the partition-scaling benches on a
multi-core runner and then invokes this script against the merged
``BENCH_ingest.json``: the P=4 worker-transport run on the hub-burst
workload must have been recorded on a host with at least ``--min-cores``
usable cores *and* beat the P=1 run (``speedup_vs_p1 > 1``) — the
repo's first real parallelism number (everything recorded in the original
1-core container measures transport overhead instead).

Usage::

    python benchmarks/verify_scaling_record.py \
        --results benchmarks/results/BENCH_ingest.json [--min-cores 4]

Exit status: 0 when the record holds, 1 when it regressed to <= 1x or
was recorded on too few cores, 2 when the expected rows are missing.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: The E18 configuration that must demonstrate the speedup: the
#: worker-process transport on the detection-heavy hub-burst workload.
RECORD_WORKLOAD = "firehose-hub-burst"
RECORD_MODE = "process"
RECORD_PARTITIONS = 4


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=Path("benchmarks/results/BENCH_ingest.json"),
        help="merged BENCH_ingest.json holding the fresh E18 rows",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="minimum usable cores the record must have been taken on",
    )
    args = parser.parse_args(argv)

    try:
        payload = json.loads(args.results.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {args.results}: {error}")
        return 2

    rows = [
        entry
        for entry in payload.get("results", [])
        if isinstance(entry, dict)
        and entry.get("params", {}).get("workload") == RECORD_WORKLOAD
        and entry.get("params", {}).get("mode") == RECORD_MODE
    ]
    if not rows:
        print(
            f"error: no {RECORD_MODE}/{RECORD_WORKLOAD} rows in {args.results}"
        )
        return 2

    print(f"{RECORD_WORKLOAD} ({RECORD_MODE} transport):")
    record = None
    for entry in sorted(rows, key=lambda e: e["params"].get("partitions", 0)):
        params, metrics = entry["params"], entry["metrics"]
        print(
            f"  P={params.get('partitions')}: "
            f"speedup_vs_p1={metrics.get('speedup_vs_p1')} "
            f"(cpu_count={metrics.get('cpu_count')}, "
            f"{metrics.get('events_per_sec')} ev/s)"
        )
        if params.get("partitions") == RECORD_PARTITIONS:
            record = metrics

    if record is None:
        print(f"error: no P={RECORD_PARTITIONS} row recorded")
        return 2
    cpu_count = record.get("cpu_count", 0)
    speedup = record.get("speedup_vs_p1", 0.0)
    if cpu_count < args.min_cores:
        print(
            f"FAIL: record taken on {cpu_count} usable cores "
            f"(need >= {args.min_cores}); this is not a multicore record"
        )
        return 1
    if not speedup > 1.0:
        print(
            f"FAIL: speedup_vs_p1={speedup} at P={RECORD_PARTITIONS} on "
            f"{cpu_count} cores — parallelism is not paying"
        )
        return 1
    print(
        f"OK: P={RECORD_PARTITIONS} speedup_vs_p1={speedup} on "
        f"{cpu_count} cores — real multicore speedup on record"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
