"""E10 — The two-hop Bloom baseline: "impractical, even using Bloom filters".

Paper: "Another approach would be to keep track of each A's two-hop
neighborhood; a rough calculation shows that this is impractical, even
using approximate data structures such as Bloom filters."

We (1) run the design for real at laptop scale to measure its write
amplification against the paper's one-insert-per-event, and (2) redo the
paper's rough calculation with measured constants: exact two-hop
neighborhood sizes on the synthetic graph and the real bytes-per-element
of the counting Bloom filters, extrapolated to Twitter scale.
"""

import pytest

from repro.baselines.bloom import CountingBloomFilter
from repro.baselines.twohop import (
    TwoHopBloomDetector,
    TwoHopMemoryModel,
    measure_two_hop_sizes,
)
from repro.bench.workloads import bursty_workload
from repro.core import DetectionParams
from repro.graph import build_follower_snapshot
from repro.util.memory import format_bytes

PARAMS = DetectionParams(k=3, tau=900.0)
TWITTER_USERS = 1e8


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=3_000, duration=600.0, background_rate=3.0, burst_actors=50
    )


def test_write_amplification(benchmark, workload, report):
    snapshot, events = workload
    static_index = build_follower_snapshot(snapshot)
    detector = TwoHopBloomDetector(
        static_index, num_users=snapshot.num_users, params=PARAMS
    )

    def run():
        for event in events:
            detector.on_edge(event)
        return detector

    benchmark.pedantic(run, rounds=1, iterations=1)

    amplification = detector.updates_performed / len(events)
    per_user = (
        detector.memory_bytes() / detector.allocated_filters()
        if detector.allocated_filters()
        else 0.0
    )

    table = report.table(
        "E10",
        "two-hop Bloom baseline: measured costs + the rough calculation",
        ["quantity", "value", "paper design (S+D)"],
    )
    table.add_row(
        "filter updates per event",
        f"{amplification:,.0f}",
        "1 insert into D",
    )
    table.add_row(
        "bytes per touched user",
        format_bytes(per_user),
        "0 (no per-A state)",
    )
    assert amplification > 10, "fan-out should dwarf one D insert"


def test_rough_calculation_at_twitter_scale(benchmark, workload, report):
    snapshot, _events = workload
    followings = {
        a: [int(b) for b in snapshot.followings_of(a)]
        for a in range(snapshot.num_users)
    }
    sample = list(range(0, snapshot.num_users, 7))

    sizes = benchmark.pedantic(
        lambda: measure_two_hop_sizes(followings, sample), rounds=1, iterations=1
    )
    mean_two_hop = sum(sizes) / len(sizes)

    # Real bytes/element of a counting Bloom at 1% FP.
    probe = CountingBloomFilter(capacity=4_096, fp_rate=0.01)
    bytes_per_element = probe.memory_bytes() / probe.capacity

    measured_model = TwoHopMemoryModel(mean_two_hop, bytes_per_element)
    # At Twitter scale users follow hundreds of accounts; published
    # measurements of the 2012 graph imply ~1e5 distinct two-hop targets.
    twitter_model = TwoHopMemoryModel(1e5, bytes_per_element)

    for t in report.tables:
        if t.experiment_id == "E10":
            t.add_row(
                f"two-hop size (measured, {snapshot.num_users} users)",
                f"{mean_two_hop:,.0f} targets/user",
                "-",
            )
            t.add_row(
                "fleet RAM at 10^8 users (measured sizes)",
                format_bytes(measured_model.total_bytes(TWITTER_USERS)),
                "~GBs for D (recent edges only)",
            )
            t.add_row(
                "fleet RAM at 10^8 users (10^5 two-hop)",
                format_bytes(twitter_model.total_bytes(TWITTER_USERS)),
                "-",
            )
            t.add_note(
                "the rough calculation, reproduced: counting Blooms need "
                f"~{bytes_per_element:.1f} B/element, so Twitter-scale two-hop "
                "tracking lands in the tens-of-TB to PB range — impractical "
                "for a 2014 memory-resident fleet"
            )
            break

    assert mean_two_hop > 50, "synthetic graph two-hop sets suspiciously small"
    assert twitter_model.total_bytes(TWITTER_USERS) > 5e13, (
        "Twitter-scale projection should be tens of terabytes or more"
    )
