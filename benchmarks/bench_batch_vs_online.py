"""E17 (extension) — the "novel twist": online detection vs batch census.

Paper §1: "Nearly all approaches to motif detection are based on a static
graph snapshot and viewed as batch computations.  Our novel 'twist' is to
identify motifs as they are being formed in real time and trigger
appropriate actions."

This experiment makes the contrast quantitative.  The classical approach
(:mod:`repro.analysis.census`, Milo-style) re-scans a static snapshot; run
every T seconds it costs a full-graph pass and surfaces motifs a mean of
T/2 late.  The online detector pays microseconds per edge and surfaces
each motif at the edge that completes it.
"""

import time

import pytest

from repro.analysis.census import count_motifs
from repro.bench.workloads import bursty_workload
from repro.core import DetectionParams, MotifEngine
from repro.graph.csr import CsrGraph


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=4_000, duration=600.0, background_rate=3.0, burst_actors=60
    )


def test_batch_census_vs_online(benchmark, workload, report):
    snapshot, events = workload
    params = DetectionParams(k=2, tau=600.0)

    # The static end-state graph a batch job would analyse: offline
    # follows plus every streamed edge.
    all_edges = list(snapshot.follow_edges()) + [
        (e.actor, e.target) for e in events
    ]
    static_graph = CsrGraph.from_edges(all_edges, num_nodes=snapshot.num_users)

    def census():
        return count_motifs(static_graph)

    started = time.perf_counter()
    counts = census()
    census_seconds = time.perf_counter() - started

    engine = MotifEngine.from_snapshot(snapshot, params)

    def online():
        engine.dynamic_index.prune_expired(float("inf"))
        return engine.process_stream(events)

    recs = benchmark.pedantic(online, rounds=1, iterations=1)
    online_seconds = benchmark.stats.stats.mean
    per_event = online_seconds / len(events)

    table = report.table(
        "E17",
        "batch motif census vs online detection (the paper's 'novel twist')",
        ["property", "batch census (Milo-style)", "online (this paper)"],
    )
    table.add_row(
        "one pass over the data",
        f"{census_seconds:.2f} s (full graph rescan)",
        f"{online_seconds:.2f} s ({per_event * 1e6:.0f} us/event, incremental)",
    )
    table.add_row(
        "what it finds",
        f"{counts.diamonds} untimed diamond instances",
        f"{len(recs)} timed, per-recipient candidates",
    )
    table.add_row(
        "freshness of a motif found",
        "stale by T/2 for rescan period T",
        "detected at the completing edge (ms)",
    )
    table.add_row(
        "supports 'trigger appropriate actions'",
        "no timestamps, no freshness window",
        "yes: tau-filtered, push-ready",
    )
    table.add_note(
        "the census counts every diamond ever formed (no tau window); the "
        "online path reports only fresh completions with recipients — "
        "different objects, which is precisely the paper's point"
    )

    assert counts.diamonds > 0, "static graph should contain diamonds"
    assert len(recs) > 0, "online detection should fire on the bursts"
    # The structural contrast: per-event online cost must be orders of
    # magnitude below one full rescan.
    assert per_event < census_seconds / 100
