"""E4 — End-to-end latency: median ~7 s, p99 ~15 s, queues dominate.

Paper: "The system operates with a median latency of ~7s and p99 latency
of ~15s, measured from the edge creation event to the delivery of the
recommendation.  Nearly all the latency comes from event propagation
delays in various message queues; the actual graph queries take only a
few milliseconds."

The queue-hop parameters are *fitted* to the paper's percentiles (see
repro.sim.latency); what this experiment genuinely verifies is (a) the
fitted three-hop pipeline reproduces the reported distribution and (b) the
**measured** graph-query time is a vanishing share of the total.
"""

import pytest

from repro.bench.workloads import bench_cluster, bursty_workload
from repro.delivery import DedupFilter, DeliveryPipeline
from repro.streaming import StreamingTopology


@pytest.fixture(scope="module")
def topology_report():
    snapshot, events = bursty_workload(
        num_users=10_000, duration=900.0, background_rate=4.0, burst_actors=100
    )
    cluster = bench_cluster(snapshot, num_partitions=4)
    # Dedup only: waking-hours/fatigue drop candidates *after* latency is
    # recorded anyway, and dedup keeps the notification count manageable.
    topology = StreamingTopology(
        cluster, delivery=DeliveryPipeline(filters=[DedupFilter()]), seed=23
    )
    return topology, events


def test_end_to_end_latency_distribution(benchmark, topology_report, report):
    topology, events = topology_report
    result = benchmark.pedantic(
        lambda: topology.run(events), rounds=1, iterations=1
    )
    summary = result.breakdown.summary()
    total = summary["total"]
    detection = summary["detection"]

    table = report.table(
        "E4",
        "end-to-end latency: edge creation -> push notification",
        ["metric", "paper", "measured"],
    )
    table.add_row("median", "~7 s", f"{total['p50']:.1f} s")
    table.add_row("p99", "~15 s", f"{total['p99']:.1f} s")
    table.add_row(
        "graph query p50 / p99",
        "a few ms",
        f"{detection['p50'] * 1e3:.2f} / {detection['p99'] * 1e3:.2f} ms",
    )
    table.add_row(
        "queue share of total", "nearly all", f"{result.queue_share():.1%}"
    )
    table.add_row(
        "detection share of total", "~0", f"{result.detection_share():.4%}"
    )
    table.add_note(
        f"{result.events_ingested} events -> {result.candidates_detected} raw "
        f"candidates -> {len(result.notifications)} notifications; "
        "queue hops fitted to the paper's distribution (DESIGN.md §4)"
    )
    report.record(
        "e2e_latency",
        {
            "workload": "bursty-topology",
            "events": result.events_ingested,
            "partitions": 4,
        },
        {
            "p50_seconds": round(total["p50"], 3),
            "p99_seconds": round(total["p99"], 3),
            "detection_p99_seconds": round(detection["p99"], 6),
            "queue_share": round(result.queue_share(), 4),
            "detection_share": round(result.detection_share(), 6),
            "notifications": len(result.notifications),
        },
    )

    assert len(result.notifications) > 50, "need a populated distribution"
    assert 5.0 < total["p50"] < 9.5, "median must land near the paper's ~7s"
    assert 11.0 < total["p99"] < 21.0, "p99 must land near the paper's ~15s"
    assert result.queue_share() > 0.95
    assert result.detection_share() < 0.01
    assert detection["p99"] < 0.050
