"""E3 — Graph query latency: "the actual graph queries take only a few
milliseconds".

Per-event detection latency (insert + freshness lookup + k-overlap +
filters) measured with a warm engine, split into cold targets (no fresh
sources — the overwhelmingly common case) and hot targets (mid-burst,
where real intersections run).
"""

import pytest

from repro.bench.workloads import bench_engine, bursty_workload
from repro.core import EdgeEvent


@pytest.fixture(scope="module")
def loaded_engine():
    snapshot, events = bursty_workload(num_users=20_000)
    engine = bench_engine(snapshot, track_latency=True)
    for event in events:
        engine.process(event)
    return snapshot, events, engine


def test_per_event_latency_distribution(benchmark, loaded_engine, report):
    snapshot, events, engine = loaded_engine
    snap = engine.stats.query_latency.snapshot()

    # Micro-benchmark one representative hot event on top of the
    # distribution already collected over the full stream.
    burst_target = snapshot.num_users - 1
    hot_event = EdgeEvent(events[-1].created_at + 1.0, 5, burst_target)
    benchmark(lambda: engine.detectors[0].on_edge(hot_event))

    table = report.table(
        "E3",
        "per-event graph query latency (warm single partition)",
        ["metric", "paper", "measured"],
    )
    table.add_row("p50", "-", f"{snap['p50'] * 1e3:.3f} ms")
    table.add_row("p90", "-", f"{snap['p90'] * 1e3:.3f} ms")
    table.add_row("p99", "a few milliseconds", f"{snap['p99'] * 1e3:.3f} ms")
    table.add_row("max", "-", f"{snap['max'] * 1e3:.3f} ms")
    table.add_note(f"distribution over {int(snap['count'])} events of the E2 stream")
    report.record(
        "query_latency",
        {"workload": "bursty", "num_users": snapshot.num_users, "metric": "per-event"},
        {
            "p50_ms": round(snap["p50"] * 1e3, 4),
            "p90_ms": round(snap["p90"] * 1e3, 4),
            "p99_ms": round(snap["p99"] * 1e3, 4),
            "events": int(snap["count"]),
        },
    )

    assert snap["p50"] < 0.005, "median query latency should be sub-5ms"
    assert snap["p99"] < 0.050, "p99 query latency should stay tens-of-ms"


def test_hot_vs_cold_target_latency(benchmark, loaded_engine, report):
    """Hot targets (many fresh sources) cost more than cold ones."""
    snapshot, events, engine = loaded_engine
    detector = engine.detectors[0]
    now = events[-1].created_at
    burst_target = snapshot.num_users - 1

    import time

    def timed(target):
        best = float("inf")
        for _ in range(50):
            start = time.perf_counter()
            detector.current_audience(target, now)
            best = min(best, time.perf_counter() - start)
        return best

    cold = timed(target=12_345)       # nobody followed this account recently
    hot = timed(target=burst_target)  # mid-burst account
    benchmark(lambda: detector.current_audience(burst_target, now))

    for t in report.tables:
        if t.experiment_id == "E3":
            t.add_row("cold-target query (min)", "-", f"{cold * 1e6:.1f} us")
            t.add_row("hot-target query (min)", "-", f"{hot * 1e6:.1f} us")
            break
    report.record(
        "query_latency",
        {"workload": "bursty", "num_users": snapshot.num_users, "metric": "hot-vs-cold"},
        {
            "cold_us": round(cold * 1e6, 2),
            "hot_us": round(hot * 1e6, 2),
            "hot_over_cold_ratio": round(hot / max(cold, 1e-9), 3),
        },
    )
    assert cold <= hot, "cold targets must be cheaper than hot ones"
