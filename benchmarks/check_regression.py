"""Compare fresh ``BENCH_*.json`` results against a committed baseline.

The CI ``bench-smoke`` job runs the fast benchmark variants, then invokes
this script to gate the build: a metric that moved past the tolerance in
the *bad* direction fails the job.

Metric direction is inferred from the name: throughputs, speedups, and
ratios-of-goodness are better-higher; latencies and memory are
better-lower; counts and sizes (``events``, ``*_total``, ``*_bytes`` when
structural) are informational and skipped unless named below.  Because
absolute throughput/latency numbers vary wildly across machines, the
default mode compares only *relative* metrics (``speedup_*``, ``*_ratio``,
``slowdown_*``) which are machine-independent; pass ``--absolute`` to gate
everything.

Usage::

    python benchmarks/check_regression.py \
        --baseline baseline-results/ --fresh benchmarks/results/ \
        [--tolerance 0.25] [--absolute]

Exit status: 0 when no gated metric regressed, 1 otherwise, 2 when the
inputs are unusable (no overlapping records at all).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Substrings marking a metric as better-higher / better-lower.  Checked
#: in order; first match wins.  Metrics matching neither (counts, sizes,
#: descriptive ratios like ``hot_over_cold_ratio``) are informational and
#: never gated.
HIGHER_IS_BETTER = ("events_per_sec", "speedup", "_per_sec", "throughput")
LOWER_IS_BETTER = (
    "_vs_packed_ratio",  # columnar-vs-reference footprint: smaller wins
    "wire_overhead",  # wall over in-process wall at the same P: smaller wins
    "frontier_",  # E20 adaptive-over-static ratios: smaller = more dominant
    "degradation",  # E21 live-over-idle read p99: smaller = less perturbed
    "cross_process_read",  # E23 attached-arena reads: smaller wins
    "bytes_per",  # E21 serving footprint / E22 WAL bytes per event
    "wal_overhead",  # E22 logged-over-unlogged ingest wall: smaller wins
    "snapshot_delta",  # E22 incremental-over-full snapshot bytes
    "_ms",
    "_us",
    "_seconds",
    "latency",
    "slowdown",
    "_bytes",
    "_mb",
)

#: Metrics that are machine-independent (comparable across hosts).
#: ``bytes_per`` qualifies because the serving cache's windows are a
#: deterministic function of the bench seed: every host materializes the
#: same users into the same capacity.
RELATIVE_MARKERS = ("speedup", "slowdown", "_ratio", "bytes_per")


def metric_direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 to skip."""
    lowered = name.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return 1
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return -1
    return 0


def is_relative(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in RELATIVE_MARKERS)


def params_key(params: dict) -> str:
    """Canonical, hashable identity of one measured configuration."""
    return json.dumps(params, sort_keys=True)


def load_results(directory: Path) -> dict[str, dict[str, dict]]:
    """``{benchmark: {params-key: metrics}}`` from every BENCH_*.json."""
    out: dict[str, dict[str, dict]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as error:
            print(f"warning: skipping unreadable {path}: {error}")
            continue
        name = payload.get("benchmark", path.stem.removeprefix("BENCH_"))
        rows = out.setdefault(name, {})
        for entry in payload.get("results", []):
            if isinstance(entry, dict) and isinstance(entry.get("params"), dict):
                rows[params_key(entry["params"])] = entry.get("metrics", {})
    return out


def compare(
    baseline: dict[str, dict[str, dict]],
    fresh: dict[str, dict[str, dict]],
    tolerance: float,
    absolute: bool,
) -> tuple[list[str], int]:
    """Return (regression messages, number of metrics compared)."""
    regressions: list[str] = []
    compared = 0
    for benchmark, base_rows in sorted(baseline.items()):
        fresh_rows = fresh.get(benchmark, {})
        for key, base_metrics in sorted(base_rows.items()):
            fresh_metrics = fresh_rows.get(key)
            if fresh_metrics is None:
                continue  # configuration not re-measured this run
            for metric, base_value in sorted(base_metrics.items()):
                direction = metric_direction(metric)
                if direction == 0 or not isinstance(base_value, (int, float)):
                    continue
                if not absolute and not is_relative(metric):
                    continue
                fresh_value = fresh_metrics.get(metric)
                if not isinstance(fresh_value, (int, float)) or base_value == 0:
                    continue
                compared += 1
                change = (fresh_value - base_value) / abs(base_value)
                regressed = (
                    change < -tolerance if direction > 0 else change > tolerance
                )
                if regressed:
                    regressions.append(
                        f"{benchmark} :: {key} :: {metric}: "
                        f"baseline={base_value} fresh={fresh_value} "
                        f"({change:+.1%}, tolerance {tolerance:.0%})"
                    )
    return regressions, compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json baseline",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="directory holding this run's BENCH_*.json results",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional move in the bad direction (default 0.25)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate machine-dependent absolute metrics "
        "(throughputs, latencies); default gates only relative ones",
    )
    args = parser.parse_args(argv)

    baseline = load_results(args.baseline)
    fresh = load_results(args.fresh)
    if not baseline:
        print(f"error: no baseline results under {args.baseline}")
        return 2
    if not fresh:
        print(f"error: no fresh results under {args.fresh}")
        return 2

    regressions, compared = compare(baseline, fresh, args.tolerance, args.absolute)
    mode = "all metrics" if args.absolute else "relative metrics only"
    print(f"compared {compared} gated metrics ({mode}, tolerance {args.tolerance:.0%})")
    if compared == 0:
        print("error: baseline and fresh results share no comparable metrics")
        return 2
    if regressions:
        print(f"{len(regressions)} regression(s):")
        for message in regressions:
            print(f"  REGRESSION: {message}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
