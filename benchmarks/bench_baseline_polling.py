"""E9 — The polling baseline: "the latency would be unacceptably large".

Paper: "One could poll each user's network periodically to see if the
motif has been formed since the last query; however, the latency would be
unacceptably large."

We sweep the poll interval and compare detection delay and query load to
the event-driven detector, which reacts within milliseconds of the edge
and touches the graph only when an edge actually arrives.
"""

import pytest

from repro.baselines.polling import run_polling_simulation
from repro.bench.workloads import bursty_workload
from repro.core import DetectionParams, MotifEngine

PARAMS = DetectionParams(k=3, tau=900.0)
POLL_INTERVALS = [10.0, 60.0, 300.0]


@pytest.fixture(scope="module")
def workload():
    # Small user count: each poll sweeps every user, the design's flaw.
    return bursty_workload(
        num_users=2_000, duration=1_200.0, background_rate=2.0, burst_actors=50
    )


def test_polling_vs_event_driven(benchmark, workload, report):
    snapshot, events = workload
    follows = list(snapshot.follow_edges())
    duration = 1_200.0

    reports = {}

    def sweep():
        for interval in POLL_INTERVALS:
            reports[interval] = run_polling_simulation(
                follows,
                events,
                poll_interval=interval,
                params=PARAMS,
                duration=duration,
            )
        return reports

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Event-driven reference: detection delay is the measured query time.
    engine = MotifEngine.from_snapshot(snapshot, PARAMS)
    engine.process_stream(events)
    event_driven_p50 = engine.stats.query_latency.percentile(50)
    event_driven_queries = len(events)

    table = report.table(
        "E9",
        "polling baseline vs event-driven detection",
        ["detector", "median delay", "p99 delay", "reads/s", "found"],
    )
    for interval in POLL_INTERVALS:
        polling = reports[interval]
        delay = polling.delay
        table.add_row(
            f"poll every {interval:g}s",
            f"{delay.median():.1f} s" if len(delay) else "-",
            f"{delay.percentile(99):.1f} s" if len(delay) else "-",
            f"{polling.reads_per_second(duration):,.0f}",
            len(polling.recommendations),
        )
    table.add_row(
        "event-driven (this paper)",
        f"{event_driven_p50 * 1e3:.2f} ms",
        f"{engine.stats.query_latency.percentile(99) * 1e3:.2f} ms",
        f"{event_driven_queries / duration:,.0f}",
        engine.stats.recommendations_emitted,
    )
    table.add_note(
        "polling delay ~ interval/2 regardless of tuning; its read volume "
        "scales with users/interval instead of with the event rate"
    )

    for interval in POLL_INTERVALS:
        delay = reports[interval].delay
        assert len(delay) > 0, f"polling at {interval}s found nothing"
        # Uniform event arrival inside the poll window: mean ~ interval/2.
        assert 0.2 * interval < delay.stats.mean < 0.95 * interval
        # The headline claim: polling latency dwarfs the event-driven path.
        assert delay.median() > 100 * event_driven_p50
    # Tighter polling costs proportionally more reads.
    reads = [reports[i].adjacency_reads for i in POLL_INTERVALS]
    assert reads[0] > reads[1] > reads[2]
