"""E8 — The influencer limit: S memory versus candidate coverage.

Paper: "For users who follow many accounts, in practice we have found it
more effective to limit the number of 'influencers' (e.g., B's) each user
can have.  This has the additional benefit of limiting the size of the S
data structures held in memory."

We sweep the per-user cap and measure S memory and recommendation recall
against the uncapped engine.
"""

import pytest

from repro.bench.workloads import BENCH_PARAMS, bursty_workload
from repro.core import MotifEngine

LIMITS = [5, 10, 25, 100, None]


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=5.0, burst_actors=80
    )


def test_influencer_limit_sweep(benchmark, workload, report):
    snapshot, events = workload
    table = report.table(
        "E8",
        "influencer limit: S memory vs candidate coverage",
        ["limit", "S edges", "S memory", "distinct pairs", "recall vs uncapped"],
    )

    results = {}

    def sweep():
        for limit in LIMITS:
            engine = MotifEngine.from_snapshot(
                snapshot,
                BENCH_PARAMS,
                influencer_limit=limit,
                track_latency=False,
            )
            pairs = {
                (r.recipient, r.candidate)
                for r in engine.process_stream(events)
            }
            results[limit] = (
                engine.static_index.num_edges,
                engine.static_index.memory_bytes(),
                pairs,
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline_pairs = results[None][2]
    for limit in LIMITS:
        edges, memory, pairs = results[limit]
        recall = (
            len(pairs & baseline_pairs) / len(baseline_pairs)
            if baseline_pairs
            else 1.0
        )
        table.add_row(
            "none" if limit is None else limit,
            edges,
            f"{memory / 1e6:.2f} MB",
            len(pairs),
            f"{recall:.1%}",
        )
    table.add_note(
        "capping influencers bounds S and sheds only low-affinity edges; "
        "the paper found moderate caps *improve* production quality"
    )

    assert baseline_pairs, "uncapped workload produced no recommendations"
    memories = [results[limit][1] for limit in (5, 10, 25, 100)]
    assert memories == sorted(memories), "S memory must grow with the cap"
    assert results[5][1] < results[None][1]
    recall_5 = len(results[5][2] & baseline_pairs) / len(baseline_pairs)
    recall_100 = len(results[100][2] & baseline_pairs) / len(baseline_pairs)
    assert recall_5 <= recall_100 + 1e-9
