"""E16 (extension) — diurnal traffic vs the waking-hours filter.

The funnel experiment (E6) drives a flat-rate day through the filters
over a *uniformly*-zoned audience — where the awake fraction is constant
by symmetry and diurnal traffic changes little.  Real deployments are
geographically concentrated (Twitter 2014 skewed heavily US), so activity
peaks line up with the audience's waking hours.  This extension runs a
flat day and a diurnal day against a concentrated-timezone audience and
measures how much less the waking-hours stage drops.
"""

import pytest

from repro.bench.workloads import bench_engine
from repro.delivery import (
    DedupFilter,
    DeliveryPipeline,
    FatigueFilter,
    PushNotifier,
    WakingHoursFilter,
)
from repro.gen import (
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)
from repro.gen.stream_gen import DIURNAL_TROUGH_HOUR

DAY = 86_400.0


@pytest.fixture(scope="module")
def snapshot():
    return generate_follow_graph(
        TwitterGraphConfig(num_users=6_000, mean_followings=12.0, seed=41)
    )


def concentrated_waking_filter():
    """An audience whose home zone's night aligns with the traffic trough.

    The generator's trough is 04:00 UTC; a home offset of 0 puts local
    04:00 (deep night) at the trough — i.e. the audience sleeps when the
    traffic sleeps, as geography makes inevitable.
    """
    return WakingHoursFilter(home_offset_hours=0, offset_spread_hours=2)


def run_day(snapshot, diurnal_amplitude):
    events = generate_event_stream(
        StreamConfig(
            num_users=snapshot.num_users,
            duration=DAY,
            background_rate=2.0,
            diurnal_amplitude=diurnal_amplitude,
            seed=41,
        )
    )
    engine = bench_engine(snapshot, track_latency=False)
    pipeline = DeliveryPipeline(
        filters=[DedupFilter(), concentrated_waking_filter(), FatigueFilter()],
        notifier=PushNotifier(keep_at_most=1_000),
    )
    for event in events:
        for rec in engine.process(event):
            pipeline.offer(rec, now=event.created_at)
    return len(events), pipeline


def test_diurnal_vs_flat_day(benchmark, snapshot, report):
    results = {}

    def sweep():
        results["flat day"] = run_day(snapshot, diurnal_amplitude=0.0)
        results["diurnal day (A=0.8)"] = run_day(snapshot, diurnal_amplitude=0.8)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = report.table(
        "E16",
        "diurnal traffic vs waking-hours filter (extension; concentrated zones)",
        ["workload", "events", "raw", "waking-hours drop", "delivered"],
    )
    shares = {}
    for name, (num_events, pipeline) in results.items():
        funnel = pipeline.funnel
        passed_dedup = funnel.get("passed:dedup")
        dropped = funnel.get("dropped:waking_hours")
        share = dropped / passed_dedup if passed_dedup else 0.0
        shares[name] = share
        table.add_row(
            name,
            num_events,
            funnel.get("raw"),
            f"{share:.1%} of deduped",
            funnel.get("delivered"),
        )
    table.add_note(
        f"audience concentrated around UTC+0 (±2h); traffic trough at "
        f"{DIURNAL_TROUGH_HOUR:02.0f}:00 UTC — diurnal candidates arrive "
        "while the audience is awake, so the filter drops far less"
    )
    for name, (num_events, pipeline) in results.items():
        funnel = pipeline.funnel
        workload = "diurnal-day" if "diurnal" in name else "flat-day"
        report.record(
            "funnel",
            {"workload": workload, "events": num_events, "path": "per-candidate"},
            {
                "raw_candidates": funnel.get("raw"),
                "delivered": funnel.get("delivered"),
                "waking_drop_share": round(shares[name], 4),
            },
        )

    assert results["flat day"][1].funnel.get("raw") > 0
    assert results["diurnal day (A=0.8)"][1].funnel.get("raw") > 0
    # Diurnal concentration must cut the waking-hours drop share by a
    # meaningful margin when zones are geographically concentrated.
    assert shares["diurnal day (A=0.8)"] < 0.8 * shares["flat day"]
