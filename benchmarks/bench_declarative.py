"""E13 — The declarative engine: overhead and plan-choice ablation.

Paper §3: "one can declaratively specify a motif, which would yield an
optimized query plan against an online graph database."

Measured here: (1) the abstraction tax — the compiled diamond plan versus
the hand-coded detector on an identical stream; (2) the planner's
cost-based k-overlap choice versus a deliberately bad forced plan.
"""

import pytest

from repro.bench.workloads import bursty_workload
from repro.core import DetectionParams
from repro.core.diamond import DiamondDetector
from repro.graph import DynamicEdgeIndex, build_follower_snapshot
from repro.motif import DeclarativeDetector, compile_motif
from repro.motif.catalog import diamond_spec

K, TAU = 3, 1800.0
PARAMS = DetectionParams(k=K, tau=TAU)


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=5.0, burst_actors=80
    )


@pytest.fixture(scope="module")
def static_index(workload):
    snapshot, _ = workload
    return build_follower_snapshot(snapshot)


def run_detector(detector, events):
    out = []
    for event in events:
        out.extend(detector.on_edge(event))
    return out


def test_hand_coded_diamond(benchmark, workload, static_index, report):
    benchmark.group = "E13 diamond implementations"
    _, events = workload

    def run():
        detector = DiamondDetector(
            static_index, DynamicEdgeIndex(retention=TAU), PARAMS
        )
        return run_detector(detector, events)

    recs = benchmark.pedantic(run, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean

    table = report.table(
        "E13",
        "declarative engine vs hand-coded diamond",
        ["implementation", "stream time", "raw candidates"],
    )
    table.add_row("hand-coded detector", f"{seconds:.2f} s", len(recs))


def test_declarative_diamond(benchmark, workload, static_index, report):
    benchmark.group = "E13 diamond implementations"
    _, events = workload

    def run():
        detector = DeclarativeDetector(
            diamond_spec(k=K, tau=TAU),
            static_index,
            DynamicEdgeIndex(retention=TAU),
            collect_statistics=True,
        )
        return run_detector(detector, events)

    recs = benchmark.pedantic(run, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean

    # Output equivalence against the hand-coded path.
    hand = DiamondDetector(
        static_index, DynamicEdgeIndex(retention=TAU), PARAMS
    )
    expected = run_detector(hand, events)
    assert {(r.recipient, r.candidate, r.created_at) for r in recs} == {
        (r.recipient, r.candidate, r.created_at) for r in expected
    }, "declarative plan changed the results"

    for t in report.tables:
        if t.experiment_id == "E13":
            t.add_row("declarative (cost-based plan)", f"{seconds:.2f} s", len(recs))
            break


def test_forced_bad_plan(benchmark, workload, static_index, report):
    """Force the pure-Python heap merge where the optimizer picks numpy."""
    benchmark.group = "E13 diamond implementations"
    _, events = workload
    spec = diamond_spec(k=K, tau=TAU)
    bad_plan = compile_motif(spec, stats=None)
    for op in bad_plan.operators:
        if type(op).__name__ == "KOverlapOp":
            op.algorithm = "heap"

    def run():
        detector = DeclarativeDetector(
            spec,
            static_index,
            DynamicEdgeIndex(retention=TAU),
            plan=bad_plan,
        )
        return run_detector(detector, events)

    recs = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = benchmark.stats.stats.mean
    for t in report.tables:
        if t.experiment_id == "E13":
            t.add_row("declarative (forced heap merge)", f"{seconds:.2f} s", len(recs))
            t.add_note(
                "the declarative layer costs a small constant factor over "
                "hand-coded; the optimizer's algorithm choice matters more "
                "than the abstraction"
            )
            break
