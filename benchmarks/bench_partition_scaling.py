"""E5 — Partition scaling: the paper's "partition by the A's" design.

Paper: "each partition (currently, 20) holds a disjoint set of source
vertices for the S data structure ... all adjacency list intersections are
local to each partition"; and the acknowledged cost: "each partition needs
to keep the complete D data structure ... every partition needs to handle
the entire stream".

The experiment sweeps P and verifies the design properties: identical
results for every P, disjoint S shards (constant total edges), and D
memory growing proportionally to P.
"""

import pytest

from repro.bench.workloads import BENCH_PARAMS, bench_cluster, bench_engine, bursty_workload

PARTITION_COUNTS = [1, 2, 4, 8, 20]


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=6.0, burst_actors=80
    )


@pytest.fixture(scope="module")
def reference(workload):
    snapshot, events = workload
    engine = bench_engine(snapshot, track_latency=False)
    recs = engine.process_stream(events)
    return sorted((r.created_at, r.recipient, r.candidate) for r in recs)


@pytest.fixture(scope="module")
def scaling_table(report):
    table = report.table(
        "E5",
        "partition scaling (paper production: P=20)",
        ["partitions", "ingest s", "S edges total", "D memory (sum)", "results"],
    )
    table.add_note(
        "identical output at every P: intersections are partition-local; "
        "D memory grows ~P (full replication), S total stays constant"
    )
    return table


@pytest.mark.parametrize("num_partitions", PARTITION_COUNTS)
def test_partition_count(benchmark, workload, reference, scaling_table, num_partitions):
    snapshot, events = workload
    cluster = bench_cluster(snapshot, num_partitions=num_partitions)

    def ingest():
        for replica_set in cluster.replica_sets:
            for replica in replica_set.replicas:
                replica.engine.dynamic_index.prune_expired(float("inf"))
        out = []
        for event in events:
            out.extend(cluster.process_event(event))
        return out

    recs = benchmark.pedantic(ingest, rounds=1, iterations=1)
    got = sorted((r.created_at, r.recipient, r.candidate) for r in recs)
    assert got == reference, f"P={num_partitions} changed the result set"

    s_edges = sum(
        rs.replicas[0].engine.static_index.num_edges
        for rs in cluster.replica_sets
    )
    d_memory = cluster.memory_report()["dynamic_index"]
    scaling_table.add_row(
        num_partitions,
        f"{benchmark.stats.stats.mean:.2f}",
        s_edges,
        f"{d_memory / 1e6:.1f} MB",
        f"{len(got)} (identical)",
    )
