"""E5 — Partition scaling: the paper's "partition by the A's" design.

Paper: "each partition (currently, 20) holds a disjoint set of source
vertices for the S data structure ... all adjacency list intersections are
local to each partition"; and the acknowledged cost: "each partition needs
to keep the complete D data structure ... every partition needs to handle
the entire stream".

The experiment sweeps P and verifies the design properties: identical
results for every P, disjoint S shards (constant total edges), and D
memory growing proportionally to P.
"""

import pytest

from repro.bench.workloads import bench_cluster, bench_engine, bursty_workload

PARTITION_COUNTS = [1, 2, 4, 8, 20]

#: Per-P ingest seconds accumulated across the parametrized sweep so each
#: configuration can record its slowdown relative to P=1 (a machine-
#: independent metric the regression gate can track).
_INGEST_SECONDS: dict[int, float] = {}


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=6.0, burst_actors=80
    )


@pytest.fixture(scope="module")
def reference(workload):
    snapshot, events = workload
    engine = bench_engine(snapshot, track_latency=False)
    recs = engine.process_stream(events)
    return sorted((r.created_at, r.recipient, r.candidate) for r in recs)


@pytest.fixture(scope="module")
def scaling_table(report):
    table = report.table(
        "E5",
        "partition scaling (paper production: P=20)",
        ["partitions", "ingest s", "S edges total", "D memory (sum)", "results"],
    )
    table.add_note(
        "identical output at every P: intersections are partition-local; "
        "D memory grows ~P (full replication), S total stays constant"
    )
    return table


@pytest.mark.parametrize("num_partitions", PARTITION_COUNTS)
def test_partition_count(
    benchmark, workload, reference, scaling_table, num_partitions, report
):
    snapshot, events = workload
    cluster = bench_cluster(snapshot, num_partitions=num_partitions)

    def ingest():
        for replica_set in cluster.replica_sets:
            for replica in replica_set.replicas:
                replica.engine.dynamic_index.prune_expired(float("inf"))
        out = []
        for event in events:
            out.extend(cluster.process_event(event))
        return out

    recs = benchmark.pedantic(ingest, rounds=1, iterations=1)
    got = sorted((r.created_at, r.recipient, r.candidate) for r in recs)
    assert got == reference, f"P={num_partitions} changed the result set"

    s_edges = sum(
        rs.replicas[0].engine.static_index.num_edges
        for rs in cluster.replica_sets
    )
    d_memory = cluster.memory_report()["dynamic_index"]
    scaling_table.add_row(
        num_partitions,
        f"{benchmark.stats.stats.mean:.2f}",
        s_edges,
        f"{d_memory / 1e6:.1f} MB",
        f"{len(got)} (identical)",
    )
    ingest_seconds = benchmark.stats.stats.mean
    _INGEST_SECONDS[num_partitions] = ingest_seconds
    metrics = {
        "ingest_seconds": round(ingest_seconds, 4),
        "events_per_sec": round(len(events) / ingest_seconds, 1),
        "s_edges_total": s_edges,
        "d_memory_mb": round(d_memory / 1e6, 2),
    }
    if 1 in _INGEST_SECONDS:
        # The single-process fan-out penalty; ~P by design (every
        # partition sees every event), and machine-independent.
        metrics["slowdown_vs_p1"] = round(ingest_seconds / _INGEST_SECONDS[1], 3)
    report.record(
        "partition_scaling",
        {
            "partitions": num_partitions,
            "workload": "bursty",
            "num_users": snapshot.num_users,
        },
        metrics,
    )
