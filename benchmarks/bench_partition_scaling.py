"""E5 / E18 / E19 — Partition scaling: the paper's "partition by the A's" design.

Paper: "each partition (currently, 20) holds a disjoint set of source
vertices for the S data structure ... all adjacency list intersections are
local to each partition"; and the acknowledged cost: "each partition needs
to keep the complete D data structure ... every partition needs to handle
the entire stream of edge creation events".

Two experiments share this module:

* **E5 (``mode=simulated``)** — the single-process fan-out sweep: every
  partition's work runs serially in one interpreter, so the recorded
  ``slowdown_vs_p1`` *is* the fan-out penalty (~P by design) and verifies
  the design invariants (identical results at every P, disjoint S shards,
  D memory ~P).
* **E18 (``mode=process``)** — the real-wall-clock sweep over
  ``WorkerProcessTransport``: each partition in its own worker process,
  batches pipelined through the columnar wire, candidates counted without
  boxing.  Records ``speedup_vs_p1`` (and the host ``cpu_count`` needed to
  interpret it) to ``BENCH_ingest.json``.  Two workload shapes: the pure
  cold firehose — where full-D-replication means every worker repeats the
  same insert-dominated work and *no* transport can buy a speedup (a
  paper-faithful negative result worth recording) — and the hub-burst
  firehose, where k-overlap intersections over sharded follower lists
  dominate and partition-parallelism genuinely pays.  The >1x speedup
  assertion is gated on the host actually having cores to run workers on.

* **E19 (``workload=hub-burst-wire``)** — the wire-overhead sweep: the
  same hub-burst stream driven through ``inprocess`` (zero-wire floor),
  ``process`` (pickled queue frames), and ``shm`` (zero-copy ring
  slabs), interleaved so machine noise cancels.  Records
  ``wire_overhead_ratio`` — wall clock over the in-process wall clock at
  the same P — and asserts the shm wire stays strictly below the pickle
  wire wherever workers exist (P >= 2).

The modes are labelled in ``params`` so ``check_regression.py`` never
compares a simulated fan-out penalty against a measured parallel speedup.
"""

import os
import time

import pytest

from repro.bench.workloads import (
    bench_cluster,
    bench_engine,
    bursty_workload,
    firehose_stream_config,
    hub_burst_stream_config,
    interleaved_best_of,
)
from repro.core.batch import iter_event_batches
from repro.gen import TwitterGraphConfig, generate_event_stream, generate_follow_graph

PARTITION_COUNTS = [1, 2, 4, 8, 20]

#: Per-P ingest seconds accumulated across the parametrized sweep so each
#: configuration can record its slowdown relative to P=1 (a machine-
#: independent metric the regression gate can track).
_INGEST_SECONDS: dict[int, float] = {}


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=6.0, burst_actors=80
    )


@pytest.fixture(scope="module")
def reference(workload):
    snapshot, events = workload
    engine = bench_engine(snapshot, track_latency=False)
    recs = engine.process_stream(events)
    return sorted((r.created_at, r.recipient, r.candidate) for r in recs)


@pytest.fixture(scope="module")
def scaling_table(report):
    table = report.table(
        "E5",
        "partition scaling, single-process simulation (paper production: P=20)",
        ["partitions", "ingest s", "S edges total", "D memory (sum)", "results"],
    )
    table.add_note(
        "identical output at every P: intersections are partition-local; "
        "D memory grows ~P (full replication), S total stays constant"
    )
    return table


@pytest.mark.parametrize("num_partitions", PARTITION_COUNTS)
def test_partition_count(
    benchmark, workload, reference, scaling_table, num_partitions, report
):
    snapshot, events = workload
    cluster = bench_cluster(snapshot, num_partitions=num_partitions)

    def ingest():
        for replica_set in cluster.replica_sets:
            for replica in replica_set.replicas:
                replica.engine.dynamic_index.prune_expired(float("inf"))
        out = []
        for event in events:
            out.extend(cluster.process_event(event))
        return out

    recs = benchmark.pedantic(ingest, rounds=1, iterations=1)
    got = sorted((r.created_at, r.recipient, r.candidate) for r in recs)
    assert got == reference, f"P={num_partitions} changed the result set"

    s_edges = sum(
        rs.replicas[0].engine.static_index.num_edges
        for rs in cluster.replica_sets
    )
    d_memory = cluster.memory_report()["dynamic_index"]
    scaling_table.add_row(
        num_partitions,
        f"{benchmark.stats.stats.mean:.2f}",
        s_edges,
        f"{d_memory / 1e6:.1f} MB",
        f"{len(got)} (identical)",
    )
    ingest_seconds = benchmark.stats.stats.mean
    _INGEST_SECONDS[num_partitions] = ingest_seconds
    metrics = {
        "ingest_seconds": round(ingest_seconds, 4),
        "events_per_sec": round(len(events) / ingest_seconds, 1),
        "s_edges_total": s_edges,
        "d_memory_mb": round(d_memory / 1e6, 2),
    }
    if 1 in _INGEST_SECONDS:
        # The single-process fan-out penalty; ~P by design (every
        # partition sees every event), and machine-independent.
        metrics["slowdown_vs_p1"] = round(ingest_seconds / _INGEST_SECONDS[1], 3)
    report.record(
        "partition_scaling",
        {
            "partitions": num_partitions,
            "workload": "bursty",
            "num_users": snapshot.num_users,
            "mode": "simulated",
        },
        metrics,
    )


# ---------------------------------------------------------------------------
# E18 — real wall clock over worker processes
# ---------------------------------------------------------------------------

PROCESS_PARTITION_COUNTS = [1, 2, 4]
PROCESS_BATCH_SIZE = 512
PROCESS_PIPELINE_DEPTH = 4


def _drive_unboxed(cluster, events) -> int:
    """Pipelined submit/gather counting candidates without boxing them.

    The throughput measurement must not pay the parent-side cost of
    materializing every raw candidate as a ``Recommendation`` — counting
    columnar group lengths is what a production broker forwarding batches
    downstream would do.
    """
    total = 0
    inflight = 0
    broker = cluster.broker
    for batch in iter_event_batches(events, PROCESS_BATCH_SIZE):
        broker.submit_batch(batch)
        inflight += 1
        if inflight >= PROCESS_PIPELINE_DEPTH:
            grouped, _ = broker.gather_batch()
            inflight -= 1
            total += sum(len(per_event) for per_event in grouped)
    while inflight:
        grouped, _ = broker.gather_batch()
        inflight -= 1
        total += sum(len(per_event) for per_event in grouped)
    return total


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def process_snapshot():
    return generate_follow_graph(
        TwitterGraphConfig(num_users=20_000, mean_followings=25.0, seed=99)
    )


@pytest.mark.parametrize(
    "workload_name, stream_config_factory",
    [
        ("firehose-cold", firehose_stream_config),
        ("firehose-hub-burst", hub_burst_stream_config),
    ],
)
def test_process_transport_wall_clock(
    process_snapshot, workload_name, stream_config_factory, report
):
    snapshot = process_snapshot
    events = generate_event_stream(
        stream_config_factory(num_users=snapshot.num_users, duration=900.0)
    )
    cores = _usable_cores()

    expected_total = len(
        bench_engine(snapshot, track_latency=False).process_stream(
            events, batch_size=PROCESS_BATCH_SIZE
        )
    )

    table = report.table(
        "E18",
        f"partition scaling, worker processes ({workload_name}, "
        f"{cores} usable cores)",
        ["partitions", "wall s", "events/sec", "speedup vs P=1", "candidates"],
    )
    table.add_note(
        "full D replication: the cold firehose's insert-dominated work is "
        "repeated in every worker (no transport can parallelize it); the "
        "hub-burst shape is intersection-dominated and shards ~1/P"
    )
    elapsed_by_p: dict[int, float] = {}
    for num_partitions in PROCESS_PARTITION_COUNTS:
        with bench_cluster(
            snapshot, num_partitions=num_partitions, transport="process"
        ) as cluster:
            best = float("inf")
            # Round 1 absorbs fork/import cold starts; best-of keeps the
            # warm rounds.  The prune resets every worker's D between
            # rounds so each repetition detects over identical state.
            for _round in range(3):
                cluster.prune(float("inf"))
                started = time.perf_counter()
                total = _drive_unboxed(cluster, events)
                best = min(best, time.perf_counter() - started)
        assert total == expected_total, (
            f"P={num_partitions} process transport changed the candidate count"
        )
        elapsed_by_p[num_partitions] = best
        speedup = elapsed_by_p[1] / best
        table.add_row(
            num_partitions,
            f"{best:.2f}",
            f"{len(events) / best:,.0f}",
            f"{speedup:.2f}x",
            total,
        )
        report.record(
            "ingest",
            {
                "workload": workload_name,
                "mode": "process",
                "partitions": num_partitions,
                "events": len(events),
                "batch_size": PROCESS_BATCH_SIZE,
            },
            {
                "ingest_seconds": round(best, 4),
                "events_per_sec": round(len(events) / best, 1),
                "speedup_vs_p1": round(speedup, 3),
                "cpu_count": cores,
            },
        )

    if workload_name == "firehose-hub-burst":
        if cores >= 4:
            assert elapsed_by_p[4] < elapsed_by_p[1], (
                "worker-process partitions showed no wall-clock speedup at "
                f"P=4 on {cores} cores for the intersection-dominated workload"
            )
        else:
            table.add_note(
                f"only {cores} usable core(s): speedup assertion skipped — "
                "workers time-share one CPU, so the recorded numbers "
                "measure transport overhead, not parallelism"
            )


# ---------------------------------------------------------------------------
# E19 — wire overhead: pickle queues vs. shared-memory rings
# ---------------------------------------------------------------------------

E19_PARTITION_COUNTS = [1, 2, 4]
E19_USERS = 8_000
E19_DURATION = 240.0


def test_transport_wire_overhead(report):
    """E19 — what does the wire itself cost at each partition count?

    The same intersection-dominated hub-burst stream drives all three
    transports interleaved (machine noise hits each equally):
    ``inprocess`` is the zero-wire floor, ``process`` pays pickling +
    queue copies, ``shm`` writes columns straight into ring slots.
    ``wire_overhead_ratio`` (wall / in-process wall at the same P) is the
    machine-independent number the regression gate watches; the shm wire
    must beat the pickle wire wherever workers actually exist (P >= 2).
    """
    from repro.cluster import shm_available

    if not shm_available():  # pragma: no cover - exercised on odd hosts
        pytest.skip("POSIX shared memory unavailable on this host")

    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=E19_USERS, mean_followings=25.0, seed=77)
    )
    events = generate_event_stream(
        hub_burst_stream_config(num_users=E19_USERS, duration=E19_DURATION)
    )
    cores = _usable_cores()
    expected_total = len(
        bench_engine(snapshot, track_latency=False).process_stream(
            events, batch_size=PROCESS_BATCH_SIZE
        )
    )

    table = report.table(
        "E19",
        f"transport wire overhead, hub-burst firehose ({len(events)} "
        f"events, {cores} usable cores)",
        ["partitions", "transport", "wall s", "overhead vs inprocess",
         "shm fallback rate"],
    )
    table.add_note(
        "overhead = wall / in-process wall at the same P: the wire's own "
        "cost; shm replaces pickled queue frames with slab writes so its "
        "ratio must sit below process's wherever P >= 2"
    )

    best_by_p: dict[int, dict[str, float]] = {}
    for num_partitions in E19_PARTITION_COUNTS:
        clusters = {
            transport: bench_cluster(
                snapshot, num_partitions=num_partitions, transport=transport
            )
            for transport in ("inprocess", "process", "shm")
        }

        def runner(cluster):
            def run():
                cluster.prune(float("inf"))
                started = time.perf_counter()
                total = _drive_unboxed(cluster, events)
                return time.perf_counter() - started, total
            return run

        try:
            # Untimed warmup: absorbs fork/import cold starts and the
            # first-touch page faults of every ring slot (the slabs are
            # tens of MB of fresh /dev/shm pages) so round 1 isn't
            # charged for them.  5 rounds because this is a cross-
            # transport *inequality* on a noisy host, not a trend line.
            warmup = events[: PROCESS_BATCH_SIZE * 8]
            for cluster in clusters.values():
                _drive_unboxed(cluster, warmup)
            best, totals = interleaved_best_of(
                {name: runner(c) for name, c in clusters.items()}, rounds=5
            )
            fallback_rate = clusters["shm"].transport.wire_stats()[
                "fallback_rate"
            ]
        finally:
            for cluster in clusters.values():
                cluster.close()
        for transport, total in totals.items():
            assert total == expected_total, (
                f"P={num_partitions} {transport} changed the candidate count"
            )
        best_by_p[num_partitions] = best

        for transport in ("inprocess", "process", "shm"):
            wall = best[transport]
            metrics = {
                "ingest_seconds": round(wall, 4),
                "events_per_sec": round(len(events) / wall, 1),
                "speedup_vs_p1": round(
                    best_by_p[1][transport] / wall, 3
                ),
                "cpu_count": cores,
            }
            overhead = ""
            if transport != "inprocess":
                metrics["wire_overhead_ratio"] = round(
                    wall / best["inprocess"], 3
                )
                overhead = f"{metrics['wire_overhead_ratio']:.2f}x"
            if transport == "shm":
                metrics["shm_fallback_rate"] = round(fallback_rate, 4)
            table.add_row(
                num_partitions,
                transport,
                f"{wall:.2f}",
                overhead,
                f"{fallback_rate:.3f}" if transport == "shm" else "",
            )
            report.record(
                "ingest",
                {
                    "workload": "hub-burst-wire",
                    "mode": transport,
                    "partitions": num_partitions,
                    "events": len(events),
                    "batch_size": PROCESS_BATCH_SIZE,
                },
                metrics,
            )

    for num_partitions in (2, 4):
        assert (
            best_by_p[num_partitions]["shm"]
            < best_by_p[num_partitions]["process"]
        ), (
            f"shm wire overhead not below the pickle wire's at "
            f"P={num_partitions}: shm {best_by_p[num_partitions]['shm']:.3f}s "
            f"vs process {best_by_p[num_partitions]['process']:.3f}s"
        )
    if cores >= 4:
        assert best_by_p[4]["shm"] < best_by_p[1]["shm"], (
            f"shm transport showed no wall-clock speedup at P=4 on "
            f"{cores} cores"
        )
    else:
        table.add_note(
            f"only {cores} usable core(s): speedup assertion skipped — "
            "the recorded numbers measure wire overhead, not parallelism"
        )
