"""E12 — The tunable parameters: "(where k and tau are tunable parameters)".

Paper: k = 2 in the worked example, k = 3 in production.  This experiment
sweeps both knobs on one workload and reports candidate volume, distinct
(user, candidate) pairs, and per-event detection cost — the trade-off
surface a production owner tunes.
"""

import itertools

import pytest

from repro.bench.workloads import bursty_workload
from repro.core import DetectionParams, MotifEngine

K_VALUES = [1, 2, 3, 4]
TAU_VALUES = [300.0, 1800.0]


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=8_000, duration=600.0, background_rate=5.0, burst_actors=80
    )


def test_k_tau_sweep(benchmark, workload, report):
    snapshot, events = workload
    results = {}

    def sweep():
        for k, tau in itertools.product(K_VALUES, TAU_VALUES):
            engine = MotifEngine.from_snapshot(
                snapshot,
                DetectionParams(k=k, tau=tau, max_trigger_sources=64),
            )
            recs = engine.process_stream(events)
            results[(k, tau)] = (
                len(recs),
                len({(r.recipient, r.candidate) for r in recs}),
                engine.stats.query_latency.percentile(99),
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = report.table(
        "E12",
        "k / tau parameter sweep (paper: k=2 example, k=3 production)",
        ["k", "tau", "raw candidates", "distinct pairs", "query p99"],
    )
    for k, tau in itertools.product(K_VALUES, TAU_VALUES):
        raw, distinct, p99 = results[(k, tau)]
        marker = "  <- production" if (k == 3 and tau == 1800.0) else ""
        table.add_row(k, f"{tau:g}s", raw, distinct, f"{p99 * 1e3:.2f} ms{marker}")
    table.add_note(
        "raising k demands more corroboration (fewer, higher-precision "
        "candidates); raising tau accepts staler corroboration (more)"
    )

    for tau in TAU_VALUES:
        volumes = [results[(k, tau)][0] for k in K_VALUES]
        assert volumes == sorted(volumes, reverse=True), (
            f"candidate volume must fall monotonically with k at tau={tau}"
        )
    for k in K_VALUES:
        assert results[(k, 300.0)][0] <= results[(k, 1800.0)][0], (
            f"larger tau must not reduce volume at k={k}"
        )
    assert results[(1, 1800.0)][0] > 5 * results[(4, 1800.0)][0], (
        "k=1 (wedge) should dwarf k=4 in raw volume"
    )
