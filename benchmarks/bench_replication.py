"""E14 — Replication: "for both fault tolerance and increased query
throughput".

Three properties measured:

* **read scaling** — with R replicas, round-robin reads put 1/R of the
  load on each replica (the throughput claim, in per-replica load terms
  since one Python process cannot parallelise);
* **fault tolerance** — killing a replica mid-stream loses nothing as
  long as one replica per partition survives;
* **ingest cost** — every replica consumes the full stream, so fleet
  ingest work scales with R (the price of the redundancy).
"""

import pytest

from repro.bench.workloads import bench_cluster, bursty_workload

REPLICAS = [1, 2, 3]


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=4_000, duration=600.0, background_rate=4.0, burst_actors=60
    )


def test_read_load_scaling(benchmark, workload, report):
    snapshot, events = workload
    table = report.table(
        "E14",
        "replication: read scaling, failover, ingest cost",
        ["replicas", "reads/replica (10k reads)", "ingest s", "fleet D copies"],
    )

    results = {}

    def sweep():
        for r in REPLICAS:
            cluster = bench_cluster(snapshot, num_partitions=2, replication_factor=r)
            import time

            started = time.perf_counter()
            for event in events:
                cluster.process_event(event)
            ingest_seconds = time.perf_counter() - started

            hot_target = snapshot.num_users - 1
            now = events[-1].created_at
            for _ in range(10_000 // 20):
                for replica_set in cluster.replica_sets:
                    for _ in range(10):
                        replica_set.query_audience(hot_target, now)
            per_replica = [
                ch.stats.calls
                for rs in cluster.replica_sets
                for ch in rs.channels
            ]
            results[r] = (max(per_replica) - len(events), ingest_seconds, 2 * r)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for r in REPLICAS:
        reads, ingest_seconds, copies = results[r]
        table.add_row(r, f"{reads:,}", f"{ingest_seconds:.2f}", copies)
    table.add_note(
        "per-replica read load falls ~1/R (horizontal read scaling); every "
        "replica ingests the full stream, so fleet work grows with R"
    )

    # Round-robin: each replica serves ~1/R of reads.
    assert results[2][0] < 0.6 * results[1][0]
    assert results[3][0] < 0.45 * results[1][0]


def test_failover_preserves_results(benchmark, workload, report):
    snapshot, events = workload
    midpoint = len(events) // 2

    def run_with_failure():
        cluster = bench_cluster(snapshot, num_partitions=2, replication_factor=2)
        out = []
        for i, event in enumerate(events):
            if i == midpoint:
                for replica_set in cluster.replica_sets:
                    replica_set.mark_down(0)  # kill every primary mid-stream
            out.extend(cluster.process_event(event))
        return out

    recs_with_failure = benchmark.pedantic(run_with_failure, rounds=1, iterations=1)

    healthy = bench_cluster(snapshot, num_partitions=2, replication_factor=1)
    expected = healthy.process_stream(events)

    got = sorted((r.created_at, r.recipient, r.candidate) for r in recs_with_failure)
    want = sorted((r.created_at, r.recipient, r.candidate) for r in expected)
    assert got == want, "failover changed the result stream"

    for t in report.tables:
        if t.experiment_id == "E14":
            t.add_row(
                "failover",
                "primary killed mid-stream",
                "-",
                f"{len(got)} recs (identical)",
            )
            break
