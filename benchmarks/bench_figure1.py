"""E1 — Figure 1: the paper's worked example, reproduced and timed.

Paper: "when the edge B2 -> C2 is created in Figure 1, we want to push C2
to A2 as a recommendation" (k = 2 in the example).
"""

import pytest

from repro.core import DetectionParams, EdgeEvent, MotifEngine
from repro.graph import GraphSnapshot

A1, A2, A3, B1, B2, C1, C2, C3 = range(8)
FOLLOWS = [(A1, B1), (A2, B1), (A2, B2), (A3, B2)]


@pytest.fixture
def engine():
    snapshot = GraphSnapshot.from_edges(FOLLOWS, num_nodes=8)
    return MotifEngine.from_snapshot(snapshot, DetectionParams(k=2, tau=600.0))


def test_figure1_detection(benchmark, engine, report):
    """Replay the two live edges and verify the narrated outcome."""

    def run():
        engine.dynamic_index.prune_expired(float("inf"))  # reset between rounds
        first = engine.process(EdgeEvent(0.0, B1, C2))
        second = engine.process(EdgeEvent(10.0, B2, C2))
        return first, second

    first, second = benchmark(run)

    assert first == []
    assert [(r.recipient, r.candidate) for r in second] == [(A2, C2)]
    assert second[0].via == (B1, B2)

    table = report.table(
        "E1",
        "Figure 1 worked example (k=2)",
        ["step", "paper", "measured"],
    )
    names = {A1: "A1", A2: "A2", A3: "A3"}
    recipient = names[second[0].recipient]
    table.add_row("B1->C2 arrives", "no recommendation yet", f"{len(first)} recs")
    table.add_row("B2->C2 arrives", "push C2 to A2", f"C2 -> {recipient}")
    table.add_row("intersection", "{A1,A2} ∩ {A2,A3} = {A2}", f"{{{recipient}}}")
    table.add_note("exact reproduction of the paper's §2 narrative")
