"""E21 — serving-tier read latency under live ingest (extension).

The paper's product serves "show me my recommendations now" for any of
millions of users while the push pipeline keeps delivering.  This
experiment measures exactly that read path: per-user point queries
against the :class:`~repro.serving.cache.ServingCache` while a writer
thread keeps merging delivery flush windows into the same columnar
store, versus the identical query load against an idle (fully
pre-merged) cache.

Two runs over the *same* precomputed flush windows and the same zipf
query sequence:

* **idle** — apply every window first, then query: the floor the
  lock-free read path can hit with no writer in sight;
* **live** — a writer thread paces the same windows across the query
  phase (~25% duty cycle, the shape of a delivery tier that is busy but
  not saturated) while the main thread queries concurrently.

The seqlock contract says the two runs must end in the *same cache* —
``dump()`` equality is asserted, so the latency comparison is at equal
delivered multiset — and that reads never tear or block the writer; the
cost of the contract is the retry laps readers take when they collide
with a merge, which is precisely what ``read_p99_degradation_ratio``
(live p99 over idle p99, gated lower-is-better) measures.  The headline
acceptance bar: live p99 within **5x** of idle p99 on a >= 1M-user
graph.

The graph builds through :func:`generate_follow_graph_chunked` — the
multi-million-user scale this bench runs at is the reason that path
exists.  Flush windows are synthesized from the graph itself: each
window picks a zipf-popular candidate account and offers it to a slice
of that account's real followers, so audience sizes and user-overlap
follow the graph's skew rather than a uniform toy distribution.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.delivery.scoring import decayed_scores
from repro.gen import TwitterGraphConfig, generate_follow_graph_chunked
from repro.gen.zipf import ZipfSampler
from repro.serving import ServingCache
from repro.util.rng import derive_seed, make_rng

#: Materialized entries per user; every query asks for the full row.
K = 3
HALF_LIFE = 1_800.0

#: Writer duty cycle in the live run: sleep this many multiples of the
#: mean window-apply time between windows (3 -> ~25% duty).
PACING_SLEEP_FACTOR = 3.0

#: The acceptance bar: live p99 within this factor of idle p99.
MAX_P99_DEGRADATION = 5.0

SCALES = {
    # CI-sized: same shape, small enough for the bench-smoke job.
    "smoke": dict(
        num_users=250_000,
        mean_followings=8.0,
        num_windows=120,
        max_audience=800,
        num_queries=8_000,
        capacity=1 << 17,
    ),
    # The record scale: the >= 1M-user acceptance run.
    "full": dict(
        num_users=1_200_000,
        mean_followings=8.0,
        num_windows=300,
        max_audience=1_500,
        num_queries=20_000,
        capacity=1 << 20,
    ),
}


def build_windows(snapshot, num_windows, max_audience, seed):
    """Precompute flush windows as aligned winner columns.

    Each window is one ``(recipients, candidates, scores, created_at)``
    tuple — exactly one :meth:`ServingCache.update_columns` call — so
    both runs replay an identical ingest sequence and the writer thread
    does no Python-side assembly while readers are live.
    """
    followers = snapshot.graph.transposed()
    candidate_sampler = ZipfSampler(
        snapshot.num_users, 1.05, make_rng(seed, "bench-serving-candidates")
    )
    rng = np.random.default_rng(derive_seed(seed, "bench-serving-windows"))
    windows = []
    total_rows = 0
    for w in range(num_windows):
        audience = np.empty(0, dtype=np.int64)
        while len(audience) == 0:
            candidate = candidate_sampler.sample()
            audience = followers.neighbors(candidate)
        if len(audience) > max_audience:
            start = int(rng.integers(0, len(audience) - max_audience + 1))
            audience = audience[start : start + max_audience]
        now = float(w + 1)
        created = np.full(len(audience), now, dtype=np.float64)
        witnesses = rng.integers(1, 5, size=len(audience)).astype(np.int64)
        windows.append(
            (
                audience,
                np.full(len(audience), candidate, dtype=np.int64),
                decayed_scores(witnesses, created, now, HALF_LIFE),
                created,
            )
        )
        total_rows += len(audience)
    return windows, total_rows


def apply_windows(cache, windows):
    """Apply every window back to back; returns busy wall seconds."""
    started = time.perf_counter()
    for recipients, candidates, scores, created_at in windows:
        cache.update_columns(recipients, candidates, scores, created_at)
    return time.perf_counter() - started


def run_queries(cache, num_users, num_queries, seed, stop_event=None):
    """Issue the zipf point-query sequence; returns latency seconds.

    With *stop_event*, keeps querying past *num_queries* until the event
    fires (the live run queries for as long as the writer is active, so
    the percentiles cover the whole ingest phase, not just its start).
    """
    sampler = ZipfSampler(num_users, 1.1, make_rng(seed, "bench-serving-query"))
    latencies = []
    issued = 0
    while issued < num_queries or (stop_event is not None and not stop_event.is_set()):
        user = sampler.sample()
        started = time.perf_counter()
        cache.get_recommendations(user)
        latencies.append(time.perf_counter() - started)
        issued += 1
        if issued >= 50 * num_queries:
            break  # safety valve: a wedged writer must not hang the bench
    return latencies


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_serving_read_latency_under_ingest(scale, report):
    params = SCALES[scale]
    seed = 21
    config = TwitterGraphConfig(
        num_users=params["num_users"],
        mean_followings=params["mean_followings"],
        seed=seed,
    )
    snapshot = generate_follow_graph_chunked(config)
    windows, total_rows = build_windows(
        snapshot, params["num_windows"], params["max_audience"], seed
    )

    # -- idle baseline: every window merged before the first query ------
    cache_idle = ServingCache(
        k=K, half_life=HALF_LIFE, capacity=params["capacity"]
    )
    ingest_seconds = apply_windows(cache_idle, windows)
    idle = run_queries(
        cache_idle, params["num_users"], params["num_queries"], seed
    )

    # -- live run: a paced writer thread merges the same windows while
    # the main thread queries ------------------------------------------
    cache_live = ServingCache(
        k=K, half_life=HALF_LIFE, capacity=params["capacity"]
    )
    pause = PACING_SLEEP_FACTOR * ingest_seconds / len(windows)
    writer_done = threading.Event()
    writer_error: list[BaseException] = []

    def writer():
        try:
            for window in windows:
                cache_live.update_columns(*window)
                time.sleep(pause)
        except BaseException as error:  # surfaced in the main thread
            writer_error.append(error)
        finally:
            writer_done.set()

    writer_thread = threading.Thread(target=writer, name="serving-writer")
    writer_thread.start()
    live = run_queries(
        cache_live,
        params["num_users"],
        params["num_queries"],
        seed,
        stop_event=writer_done,
    )
    writer_thread.join()
    assert not writer_error, f"writer thread failed: {writer_error[0]!r}"

    # Equal delivered multiset: concurrency must not change the cache.
    assert cache_live.dump() == cache_idle.dump()

    idle_us = np.asarray(idle) * 1e6
    live_us = np.asarray(live) * 1e6
    idle_p50, idle_p99 = np.percentile(idle_us, [50, 99])
    live_p50, live_p99 = np.percentile(live_us, [50, 99])
    # Floored at 1.0 for the regression record: the live run's early
    # phase is miss-heavy (the cache is still filling) and misses are
    # cheaper than hits, so sub-unity ratios are sampling composition,
    # not a real speedup — a baseline below 1 would turn that noise into
    # gate flakiness.
    degradation = max(1.0, live_p99 / max(idle_p99, 1e-9))

    table = report.table(
        "E21",
        f"serving reads under live ingest ({scale}: "
        f"{params['num_users']:,} users, {total_rows:,} winner rows)",
        ["run", "queries", "p50", "p99", "hit rate"],
    )
    table.add_row(
        "idle", len(idle), f"{idle_p50:.1f} us", f"{idle_p99:.1f} us",
        f"{cache_idle.hit_rate:.1%}",
    )
    table.add_row(
        "live ingest", len(live), f"{live_p50:.1f} us", f"{live_p99:.1f} us",
        f"{cache_live.hit_rate:.1%}",
    )
    table.add_note(
        f"p99 degradation {degradation:.2f}x (bar: <{MAX_P99_DEGRADATION:g}x) "
        f"at equal final cache contents; {cache_idle.users_cached:,} users "
        f"materialized at {cache_idle.bytes_per_user():.0f} B/user"
    )
    report.record(
        "serving",
        {
            "workload": "zipf-follower-windows",
            "num_users": params["num_users"],
            "num_windows": params["num_windows"],
            "winner_rows": total_rows,
            "k": K,
            "scale": scale,
        },
        {
            "read_p50_us_idle": round(float(idle_p50), 2),
            "read_p99_us_idle": round(float(idle_p99), 2),
            "read_p50_us_live": round(float(live_p50), 2),
            "read_p99_us_live": round(float(live_p99), 2),
            "read_p99_degradation_ratio": round(float(degradation), 4),
            "hit_rate": round(cache_live.hit_rate, 4),
            "cache_users": cache_idle.users_cached,
            "bytes_per_user": round(cache_idle.bytes_per_user(), 1),
            "ingest_rows_per_sec": round(total_rows / max(ingest_seconds, 1e-9)),
            "queries_live": len(live),
        },
    )

    assert cache_idle.users_cached > 0
    assert degradation < MAX_P99_DEGRADATION, (
        f"live p99 {live_p99:.1f}us is {degradation:.1f}x idle p99 "
        f"{idle_p99:.1f}us (bar: {MAX_P99_DEGRADATION:g}x)"
    )
