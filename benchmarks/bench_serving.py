"""E21/E23 — serving-tier reads and in-worker serving (extension).

The paper's product serves "show me my recommendations now" for any of
millions of users while the push pipeline keeps delivering.

**E21** measures exactly that read path: per-user point queries
against the :class:`~repro.serving.cache.ServingCache` while a writer
thread keeps merging delivery flush windows into the same columnar
store, versus the identical query load against an idle (fully
pre-merged) cache.

**E23** measures what moving the cache writers *into* the delivery-shard
processes buys.  The same windows run through a real
:class:`~repro.delivery.sharded.ShardedDeliveryPipeline` twice at each
shard count: once in the parent-tap posture (the parent decodes every
reply and merges delivered notifications into a parent-resident sharded
cache — PR 8's wiring) and once in the in-worker posture (each shard
worker merges its own slice into a shared-memory arena before the
funnel; the parent only posts batches).  The headline metric,
``serving_ingest_speedup_vs_parent_tap``, is parent-tap wall over
in-worker wall — with 2+ shards on a multicore host the merge work
parallelizes across workers instead of serializing in the parent, so
the ratio should sit at or above 1.  The second half prices the read
side of the trade: cross-process point queries through the attached
arenas versus the same query load against the in-process parent-tap
cache, gated at the same **5x** bar E21 applies to live-vs-idle reads.

Two runs over the *same* precomputed flush windows and the same zipf
query sequence:

* **idle** — apply every window first, then query: the floor the
  lock-free read path can hit with no writer in sight;
* **live** — a writer thread paces the same windows across the query
  phase (~25% duty cycle, the shape of a delivery tier that is busy but
  not saturated) while the main thread queries concurrently.

The seqlock contract says the two runs must end in the *same cache* —
``dump()`` equality is asserted, so the latency comparison is at equal
delivered multiset — and that reads never tear or block the writer; the
cost of the contract is the retry laps readers take when they collide
with a merge, which is precisely what ``read_p99_degradation_ratio``
(live p99 over idle p99, gated lower-is-better) measures.  The headline
acceptance bar: live p99 within **5x** of idle p99 on a >= 1M-user
graph.

The graph builds through :func:`generate_follow_graph_chunked` — the
multi-million-user scale this bench runs at is the reason that path
exists.  Flush windows are synthesized from the graph itself: each
window picks a zipf-popular candidate account and offers it to a slice
of that account's real followers, so audience sizes and user-overlap
follow the graph's skew rather than a uniform toy distribution.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.delivery.scoring import decayed_scores
from repro.gen import TwitterGraphConfig, generate_follow_graph_chunked
from repro.gen.zipf import ZipfSampler
from repro.serving import ServingCache
from repro.util.rng import derive_seed, make_rng

#: Materialized entries per user; every query asks for the full row.
K = 3
HALF_LIFE = 1_800.0

#: Writer duty cycle in the live run: sleep this many multiples of the
#: mean window-apply time between windows (3 -> ~25% duty).
PACING_SLEEP_FACTOR = 3.0

#: The acceptance bar: live p99 within this factor of idle p99.
MAX_P99_DEGRADATION = 5.0

SCALES = {
    # CI-sized: same shape, small enough for the bench-smoke job.
    "smoke": dict(
        num_users=250_000,
        mean_followings=8.0,
        num_windows=120,
        max_audience=800,
        num_queries=8_000,
        capacity=1 << 17,
    ),
    # The record scale: the >= 1M-user acceptance run.
    "full": dict(
        num_users=1_200_000,
        mean_followings=8.0,
        num_windows=300,
        max_audience=1_500,
        num_queries=20_000,
        capacity=1 << 20,
    ),
}


def build_windows(snapshot, num_windows, max_audience, seed):
    """Precompute flush windows as aligned winner columns.

    Each window is one ``(recipients, candidates, scores, created_at)``
    tuple — exactly one :meth:`ServingCache.update_columns` call — so
    both runs replay an identical ingest sequence and the writer thread
    does no Python-side assembly while readers are live.
    """
    followers = snapshot.graph.transposed()
    candidate_sampler = ZipfSampler(
        snapshot.num_users, 1.05, make_rng(seed, "bench-serving-candidates")
    )
    rng = np.random.default_rng(derive_seed(seed, "bench-serving-windows"))
    windows = []
    total_rows = 0
    for w in range(num_windows):
        audience = np.empty(0, dtype=np.int64)
        while len(audience) == 0:
            candidate = candidate_sampler.sample()
            audience = followers.neighbors(candidate)
        if len(audience) > max_audience:
            start = int(rng.integers(0, len(audience) - max_audience + 1))
            audience = audience[start : start + max_audience]
        now = float(w + 1)
        created = np.full(len(audience), now, dtype=np.float64)
        witnesses = rng.integers(1, 5, size=len(audience)).astype(np.int64)
        windows.append(
            (
                audience,
                np.full(len(audience), candidate, dtype=np.int64),
                decayed_scores(witnesses, created, now, HALF_LIFE),
                created,
            )
        )
        total_rows += len(audience)
    return windows, total_rows


def apply_windows(cache, windows):
    """Apply every window back to back; returns busy wall seconds."""
    started = time.perf_counter()
    for recipients, candidates, scores, created_at in windows:
        cache.update_columns(recipients, candidates, scores, created_at)
    return time.perf_counter() - started


def run_queries(cache, num_users, num_queries, seed, stop_event=None):
    """Issue the zipf point-query sequence; returns latency seconds.

    With *stop_event*, keeps querying past *num_queries* until the event
    fires (the live run queries for as long as the writer is active, so
    the percentiles cover the whole ingest phase, not just its start).
    """
    sampler = ZipfSampler(num_users, 1.1, make_rng(seed, "bench-serving-query"))
    latencies = []
    issued = 0
    while issued < num_queries or (stop_event is not None and not stop_event.is_set()):
        user = sampler.sample()
        started = time.perf_counter()
        cache.get_recommendations(user)
        latencies.append(time.perf_counter() - started)
        issued += 1
        if issued >= 50 * num_queries:
            break  # safety valve: a wedged writer must not hang the bench
    return latencies


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_serving_read_latency_under_ingest(scale, report):
    params = SCALES[scale]
    seed = 21
    config = TwitterGraphConfig(
        num_users=params["num_users"],
        mean_followings=params["mean_followings"],
        seed=seed,
    )
    snapshot = generate_follow_graph_chunked(config)
    windows, total_rows = build_windows(
        snapshot, params["num_windows"], params["max_audience"], seed
    )

    # -- idle baseline: every window merged before the first query ------
    cache_idle = ServingCache(
        k=K, half_life=HALF_LIFE, capacity=params["capacity"]
    )
    ingest_seconds = apply_windows(cache_idle, windows)
    idle = run_queries(
        cache_idle, params["num_users"], params["num_queries"], seed
    )

    # -- live run: a paced writer thread merges the same windows while
    # the main thread queries ------------------------------------------
    cache_live = ServingCache(
        k=K, half_life=HALF_LIFE, capacity=params["capacity"]
    )
    pause = PACING_SLEEP_FACTOR * ingest_seconds / len(windows)
    writer_done = threading.Event()
    writer_error: list[BaseException] = []

    def writer():
        try:
            for window in windows:
                cache_live.update_columns(*window)
                time.sleep(pause)
        except BaseException as error:  # surfaced in the main thread
            writer_error.append(error)
        finally:
            writer_done.set()

    writer_thread = threading.Thread(target=writer, name="serving-writer")
    writer_thread.start()
    live = run_queries(
        cache_live,
        params["num_users"],
        params["num_queries"],
        seed,
        stop_event=writer_done,
    )
    writer_thread.join()
    assert not writer_error, f"writer thread failed: {writer_error[0]!r}"

    # Equal delivered multiset: concurrency must not change the cache.
    assert cache_live.dump() == cache_idle.dump()

    idle_us = np.asarray(idle) * 1e6
    live_us = np.asarray(live) * 1e6
    idle_p50, idle_p99 = np.percentile(idle_us, [50, 99])
    live_p50, live_p99 = np.percentile(live_us, [50, 99])
    # Floored at 1.0 for the regression record: the live run's early
    # phase is miss-heavy (the cache is still filling) and misses are
    # cheaper than hits, so sub-unity ratios are sampling composition,
    # not a real speedup — a baseline below 1 would turn that noise into
    # gate flakiness.
    degradation = max(1.0, live_p99 / max(idle_p99, 1e-9))

    table = report.table(
        "E21",
        f"serving reads under live ingest ({scale}: "
        f"{params['num_users']:,} users, {total_rows:,} winner rows)",
        ["run", "queries", "p50", "p99", "hit rate"],
    )
    table.add_row(
        "idle", len(idle), f"{idle_p50:.1f} us", f"{idle_p99:.1f} us",
        f"{cache_idle.hit_rate:.1%}",
    )
    table.add_row(
        "live ingest", len(live), f"{live_p50:.1f} us", f"{live_p99:.1f} us",
        f"{cache_live.hit_rate:.1%}",
    )
    table.add_note(
        f"p99 degradation {degradation:.2f}x (bar: <{MAX_P99_DEGRADATION:g}x) "
        f"at equal final cache contents; {cache_idle.users_cached:,} users "
        f"materialized at {cache_idle.bytes_per_user():.0f} B/user"
    )
    report.record(
        "serving",
        {
            "workload": "zipf-follower-windows",
            "num_users": params["num_users"],
            "num_windows": params["num_windows"],
            "winner_rows": total_rows,
            "k": K,
            "scale": scale,
        },
        {
            "read_p50_us_idle": round(float(idle_p50), 2),
            "read_p99_us_idle": round(float(idle_p99), 2),
            "read_p50_us_live": round(float(live_p50), 2),
            "read_p99_us_live": round(float(live_p99), 2),
            "read_p99_degradation_ratio": round(float(degradation), 4),
            "hit_rate": round(cache_live.hit_rate, 4),
            "cache_users": cache_idle.users_cached,
            "bytes_per_user": round(cache_idle.bytes_per_user(), 1),
            "ingest_rows_per_sec": round(total_rows / max(ingest_seconds, 1e-9)),
            "queries_live": len(live),
        },
    )

    assert cache_idle.users_cached > 0
    assert degradation < MAX_P99_DEGRADATION, (
        f"live p99 {live_p99:.1f}us is {degradation:.1f}x idle p99 "
        f"{idle_p99:.1f}us (bar: {MAX_P99_DEGRADATION:g}x)"
    )


# ======================================================================
# E23 — in-worker serving vs parent-tap over a real sharded pipeline
# ======================================================================

#: Cross-process reads (attach + generation check + seqlock copy) may
#: cost at most this factor over in-process reads of the same contents.
MAX_CROSS_PROCESS_READ_RATIO = 5.0

#: Parent-tap wall over in-worker wall must reach this at 2+ shards on a
#: multicore host (informational on smaller hosts: with every worker
#: time-slicing one core, in-worker merge work cannot parallelize).
MIN_WORKER_INGEST_SPEEDUP = 1.0
MIN_CORES_FOR_SPEEDUP_GATE = 4

E23_SCALES = {
    "smoke": dict(
        num_users=60_000,
        num_windows=40,
        groups_per_window=10,
        max_audience=400,
        num_queries=4_000,
        shard_counts=(1, 2),
        repeats=2,
    ),
    "full": dict(
        num_users=400_000,
        num_windows=120,
        groups_per_window=12,
        max_audience=1_000,
        num_queries=12_000,
        shard_counts=(1, 2, 4),
        repeats=3,
    ),
}


def _e23_pipeline_factory(_shard: int):
    from repro.delivery import DeliveryPipeline

    return DeliveryPipeline(filters=[])


def build_batches(params, seed):
    """Precompute every flush window as a RecommendationBatch.

    Zipf-popular candidates offered to random audience slices — the same
    shape E21 draws from a generated graph, without paying for graph
    construction: E23's subject is the pipeline posture, not the graph.
    """
    from repro.core.recommendation import RecommendationBatch, RecommendationGroup

    sampler = ZipfSampler(
        params["num_users"], 1.05, make_rng(seed, "bench-e23-candidates")
    )
    rng = np.random.default_rng(derive_seed(seed, "bench-e23-windows"))
    batches, total_rows = [], 0
    for w in range(params["num_windows"]):
        groups = []
        for _ in range(params["groups_per_window"]):
            size = int(rng.integers(20, params["max_audience"]))
            groups.append(
                RecommendationGroup(
                    rng.choice(
                        params["num_users"], size=size, replace=False
                    ).astype(np.int64),
                    candidate=sampler.sample(),
                    created_at=float(w + 1),
                    via=tuple(rng.integers(0, 1_000, 1 + w % 4).tolist()),
                )
            )
            total_rows += size
        batches.append(RecommendationBatch(groups))
    return batches, total_rows


def run_ingest(num_shards, batches, serving_mode):
    """One pipeline run in the given posture; returns (wall, dump, pipeline).

    The pipeline is returned still open in worker mode so the caller can
    measure cross-process reads against the live arenas; parent mode
    closes it and hands back the parent-resident cache instead.
    """
    from repro.delivery import ShardedDeliveryPipeline
    from repro.serving import ServingCacheConfig, ShardedServingCache

    if serving_mode == "worker":
        pipeline = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_e23_pipeline_factory,
            transport="shm",
            serving=ServingCacheConfig(k=K, half_life=HALF_LIFE),
        )
        cache = pipeline.serving
    else:
        cache = ShardedServingCache(
            num_shards=num_shards, k=K, half_life=HALF_LIFE
        )
        pipeline = ShardedDeliveryPipeline(
            num_shards,
            pipeline_factory=_e23_pipeline_factory,
            transport="shm",
            serving_tap=cache.ingest_notifications,
        )
    try:
        started = time.perf_counter()
        for w, batch in enumerate(batches):
            pipeline.offer_batch(batch, now=50_000.0 + float(w))
        wall = time.perf_counter() - started
    except BaseException:
        pipeline.close()
        raise
    if serving_mode == "worker":
        return wall, cache.dump(), pipeline
    pipeline.close()
    return wall, cache.dump(), cache


@pytest.mark.parametrize("scale", sorted(E23_SCALES))
def test_in_worker_serving_vs_parent_tap(scale, report):
    import os

    from repro.cluster import shm_available

    if not shm_available():
        pytest.skip("POSIX shared memory unavailable on this host")
    params = E23_SCALES[scale]
    seed = 23
    batches, total_rows = build_batches(params, seed)
    cores = len(os.sched_getaffinity(0))

    table = report.table(
        "E23",
        f"in-worker serving vs parent-tap ({scale}: {total_rows:,} winner "
        f"rows over {params['num_windows']} windows, {cores} cores)",
        ["shards", "parent-tap", "in-worker", "speedup", "xproc p50", "xproc p99"],
    )

    for shards in params["shard_counts"]:
        parent_wall = worker_wall = float("inf")
        parent_cache = worker_pipeline = None
        worker_dump = parent_dump = None
        # Best-of-N walls: posture difference, not scheduler noise.
        for _ in range(params["repeats"]):
            wall, dump, cache = run_ingest(shards, batches, "parent")
            if wall < parent_wall:
                parent_wall, parent_dump, parent_cache = wall, dump, cache
            wall, dump, pipeline = run_ingest(shards, batches, "worker")
            if wall < worker_wall:
                if worker_pipeline is not None:
                    worker_pipeline.close()
                worker_wall, worker_dump, worker_pipeline = (
                    wall, dump, pipeline,
                )
            else:
                pipeline.close()

        try:
            # Same delivered state whichever process holds the pen.
            assert worker_dump == parent_dump
            speedup = parent_wall / max(worker_wall, 1e-9)

            # Cross-process reads through the attached arenas vs the
            # same zipf load against the in-process parent-tap cache.
            cross = run_queries(
                worker_pipeline.serving,
                params["num_users"],
                params["num_queries"],
                seed,
            )
            inproc = run_queries(
                parent_cache, params["num_users"], params["num_queries"], seed
            )
        finally:
            worker_pipeline.close()
        cross_us = np.asarray(cross) * 1e6
        cross_p50, cross_p99 = np.percentile(cross_us, [50, 99])
        inproc_p99 = float(np.percentile(np.asarray(inproc) * 1e6, 99))
        # Floored at 1.0 like E21's degradation ratio: when both sides
        # sit at a few microseconds, sub-unity ratios are timer noise a
        # baseline should not enshrine.
        read_ratio = max(1.0, float(cross_p99) / max(inproc_p99, 1e-9))

        table.add_row(
            str(shards),
            f"{parent_wall * 1e3:.0f} ms",
            f"{worker_wall * 1e3:.0f} ms",
            f"{speedup:.2f}x",
            f"{cross_p50:.1f} us",
            f"{cross_p99:.1f} us",
        )
        report.record(
            "serving",
            {
                "workload": "in-worker-vs-parent-tap",
                "num_users": params["num_users"],
                "num_windows": params["num_windows"],
                "winner_rows": total_rows,
                "k": K,
                "shards": shards,
                "scale": scale,
            },
            {
                "serving_ingest_speedup_vs_parent_tap": round(speedup, 4),
                "parent_tap_wall_ms": round(parent_wall * 1e3, 2),
                "in_worker_wall_ms": round(worker_wall * 1e3, 2),
                "ingest_rows_per_sec_worker": round(
                    total_rows / max(worker_wall, 1e-9)
                ),
                "cross_process_read_p50_us": round(float(cross_p50), 2),
                "cross_process_read_p99_us": round(float(cross_p99), 2),
                "cross_process_read_p99_ratio": round(read_ratio, 4),
                "users_served": len(worker_dump),
            },
        )

        assert len(worker_dump) > 0
        assert read_ratio < MAX_CROSS_PROCESS_READ_RATIO, (
            f"cross-process p99 {cross_p99:.1f}us is {read_ratio:.1f}x the "
            f"in-process p99 {inproc_p99:.1f}us "
            f"(bar: {MAX_CROSS_PROCESS_READ_RATIO:g}x)"
        )
        if shards >= 2 and cores >= MIN_CORES_FOR_SPEEDUP_GATE:
            assert speedup >= MIN_WORKER_INGEST_SPEEDUP, (
                f"in-worker ingest at {shards} shards ran {speedup:.2f}x "
                f"parent-tap (bar: >= {MIN_WORKER_INGEST_SPEEDUP:g}x on "
                f"{cores} cores)"
            )

    table.add_note(
        f"speedup gate active at >= 2 shards on >= "
        f"{MIN_CORES_FOR_SPEEDUP_GATE} cores (this host: {cores}); "
        f"cross-process read bar: p99 < "
        f"{MAX_CROSS_PROCESS_READ_RATIO:g}x in-process"
    )
