"""E6 — The candidate funnel: "billions of raw candidates ... millions of
push notifications".

Paper: "Each day, billions of raw candidates are generated, yielding
millions of push notifications (after eliminating duplicates, suppressing
messages during non-waking hours, controlling for fatigue, etc.)" — i.e. a
~1000:1 reduction.

We run a compressed "day" (bursty streams across 24 simulated hours) through
the production filter trio and report the per-stage survivor counts.  The
absolute ratio scales with workload size; the claim under test is the
order-of-magnitude reduction dominated by dedup.

The module also carries **E16a**, the delivery-side ablation of the
columnar candidate path: the same raw candidate stream pushed through the
funnel once per-candidate (boxed ``offer``) and once columnar
(``offer_batch``), with identical survivors required and the speedup
recorded to ``BENCH_funnel.json`` (the CI bench-smoke job gates it) —
and **E17**, the ranked-delivery ablation: the same stream through the
``TopKPerUserBuffer`` scoring stage once boxed (per-candidate ``offer``)
and once columnar (``offer_batch`` + vectorized flush), plus an
informational table-vs-dict comparison of the dedup/fatigue backends.
"""

import time

import pytest

from repro.bench.workloads import (
    assert_same_delivery,
    bench_engine,
    bursty_workload,
    interleaved_best_of,
)
from repro.core import RecommendationBatch
from repro.core.batch import iter_event_batches
from repro.delivery import (
    DedupFilter,
    DeliveryPipeline,
    FatigueFilter,
    PushNotifier,
    TopKPerUserBuffer,
    WakingHoursFilter,
)
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)

DAY = 86_400.0


@pytest.fixture(scope="module")
def burst_delivery_feed():
    """The E16a/E17 candidate stream: detection runs once, outside every
    timed region, and emits columnar batches paired with their clock."""
    snapshot, events = bursty_workload(
        num_users=6_000, duration=400.0, background_rate=4.0, burst_actors=80
    )
    engine = bench_engine(snapshot, track_latency=False)
    feed: list[tuple[float, RecommendationBatch]] = []
    for chunk in iter_event_batches(events, 256):
        grouped = engine.process_batch_grouped(chunk)
        groups = [group for batch in grouped for group in batch.groups]
        if groups:
            # One delivery batch per micro-batch, offered at the batch's
            # newest event time (all paths use the same clock).
            feed.append((float(chunk.timestamps[-1]), RecommendationBatch(groups)))
    total = sum(len(batch) for _, batch in feed)
    assert total > 50_000, "need a meaningful raw candidate volume"
    return feed, total


@pytest.fixture(scope="module")
def day_workload():
    num_users = 10_000
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=15.0, seed=31)
    )
    # Six viral moments spread across the day + light background churn.
    bursts = tuple(
        BurstSpec(
            target=num_users - 1 - i,
            start=DAY * (i + 0.5) / 7,
            duration=1_800.0,
            num_actors=100,
        )
        for i in range(6)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=DAY,
            background_rate=1.0,
            bursts=bursts,
            seed=31,
        )
    )
    return snapshot, events


def test_daily_funnel(benchmark, day_workload, report):
    snapshot, events = day_workload

    def run_day():
        engine = bench_engine(snapshot, track_latency=False)
        pipeline = DeliveryPipeline(
            notifier=PushNotifier(keep_at_most=10_000)
        )
        for event in events:
            for rec in engine.process(event):
                pipeline.offer(rec, now=event.created_at)
        return pipeline

    pipeline = benchmark.pedantic(run_day, rounds=1, iterations=1)
    funnel = pipeline.funnel

    table = report.table(
        "E6",
        "daily candidate -> notification funnel",
        ["stage", "count", "survival"],
    )
    raw = funnel.get("raw")
    table.add_row("raw candidates", raw, "100%")
    for stage in ("dedup", "waking_hours", "fatigue"):
        passed = funnel.get(f"passed:{stage}")
        table.add_row(
            f"after {stage}", passed, f"{passed / raw:.2%}" if raw else "-"
        )
    delivered = funnel.get("delivered")
    table.add_row("push notifications", delivered, f"{delivered / raw:.2%}")
    table.add_row(
        "reduction ratio", f"{pipeline.reduction_ratio():,.0f} : 1",
        "paper: ~1000:1 (billions -> millions)",
    )
    table.add_note(
        f"workload: {len(events)} events over one simulated day; the ratio "
        "grows with scale because hot candidates re-fire more often"
    )

    elapsed = benchmark.stats.stats.mean
    report.record(
        "funnel",
        {"workload": "daily", "events": len(events), "path": "per-candidate"},
        {
            "raw_candidates": raw,
            "delivered": delivered,
            "reduction_ratio": round(pipeline.reduction_ratio(), 2),
            "dedup_survival": round(funnel.get("passed:dedup") / raw, 4) if raw else 0.0,
            "candidates_per_sec": round(raw / elapsed, 1),
        },
    )

    assert raw > 100_000, "need a meaningful raw candidate volume"
    assert pipeline.reduction_ratio() > 50, (
        "funnel must eliminate the overwhelming majority of raw candidates"
    )
    assert funnel.get("dropped:dedup") > funnel.get("dropped:fatigue"), (
        "dedup should be the dominant eliminator, as in production"
    )


def test_funnel_columnar_vs_boxed(report, burst_delivery_feed):
    """E16a — the delivery funnel: columnar ``offer_batch`` vs boxed ``offer``.

    Detection runs once (outside the timed region) and emits the burst-heavy
    candidate stream as columnar batches; the timed region is delivery only,
    replayed through (a) the per-candidate path — box every candidate, then
    ``offer`` each — and (b) the columnar path — ``offer_batch`` straight
    from the recipient columns.  Both must land identical funnels and
    survivor sequences; the columnar path must win, because the boxed path
    pays a dataclass construction plus four dict/method dispatches per raw
    candidate while the columnar path pays them only per survivor.
    Interleaved best-of rounds, fast enough for the CI smoke job.
    """
    feed, total = burst_delivery_feed

    def run_boxed():
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        started = time.perf_counter()
        for now, batch in feed:
            for rec in batch:  # boxes every raw candidate, like PR 2's path
                pipeline.offer(rec, now)
        return time.perf_counter() - started, pipeline

    def run_columnar():
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        started = time.perf_counter()
        for now, batch in feed:
            pipeline.offer_batch(batch, now)
        return time.perf_counter() - started, pipeline

    best, funnels = interleaved_best_of(
        {"boxed": run_boxed, "columnar": run_columnar}
    )
    # The columnar path must change nothing but the speed.
    assert_same_delivery(funnels["boxed"], funnels["columnar"])

    speedup = best["boxed"] / best["columnar"]
    table = report.table(
        "E16a",
        "delivery funnel: columnar offer_batch vs boxed offer",
        ["path", "raw candidates", "candidates/sec", "speedup"],
    )
    for key in ("boxed", "columnar"):
        table.add_row(
            key,
            total,
            f"{total / best[key]:,.0f}",
            f"{best['boxed'] / best[key]:.2f}x",
        )
    delivered = funnels["columnar"].funnel.get("delivered")
    table.add_note(
        f"{total} raw -> {delivered} delivered; only survivors are boxed on "
        "the columnar path"
    )
    for key in ("boxed", "columnar"):
        report.record(
            "funnel",
            {"workload": "burst-delivery", "candidates": total, "path": key},
            {
                "candidates_per_sec": round(total / best[key], 1),
                "speedup_vs_boxed": round(best["boxed"] / best[key], 3),
            },
        )
    assert speedup >= 1.5, (
        f"columnar funnel only {speedup:.2f}x over boxed; the batched "
        "delivery path failed to amortize"
    )


def test_ranked_delivery_columnar_vs_boxed(report, burst_delivery_feed):
    """E17 — ranked delivery: vectorized top-k scoring vs boxed offers.

    The ranked configuration inserts a ``TopKPerUserBuffer`` between
    detection and the funnel; before this ablation's tentpole the buffer
    walked recipients per group in Python.  Both paths here share the
    identical vectorized flush and the identical downstream funnel — the
    ablated region is *offering*: (a) boxed — iterate the batch (boxing
    every raw candidate) and ``offer`` each into the buffer; (b) columnar
    — ``offer_batch`` buffers each group's recipient column by reference.
    Released winners must be identical (content and order), and so must
    the downstream funnels.  Recorded to ``BENCH_funnel.json``; the CI
    bench-smoke job gates ``speedup_vs_boxed``.
    """
    feed, total = burst_delivery_feed

    def run_boxed():
        buffer = TopKPerUserBuffer(k=2)
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        started = time.perf_counter()
        for now, batch in feed:
            for rec in batch:  # boxes every raw candidate
                buffer.offer(rec)
            pipeline.offer_all(buffer.flush(now), now)
        return time.perf_counter() - started, pipeline

    def run_columnar():
        buffer = TopKPerUserBuffer(k=2)
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        started = time.perf_counter()
        for now, batch in feed:
            buffer.offer_batch(batch)  # recipient columns by reference
            pipeline.offer_all(buffer.flush(now), now)
        return time.perf_counter() - started, pipeline

    best, funnels = interleaved_best_of(
        {"boxed": run_boxed, "columnar": run_columnar}
    )
    # Identical winners, identical funnels: the columnar scoring path
    # changes nothing but the speed.
    assert_same_delivery(funnels["boxed"], funnels["columnar"])

    speedup = best["boxed"] / best["columnar"]
    table = report.table(
        "E17",
        "ranked delivery: columnar top-k scoring vs boxed offers",
        ["path", "raw candidates", "candidates/sec", "speedup"],
    )
    for key in ("boxed", "columnar"):
        table.add_row(
            key,
            total,
            f"{total / best[key]:,.0f}",
            f"{best['boxed'] / best[key]:.2f}x",
        )
    released = funnels["columnar"].funnel.get("raw")
    table.add_note(
        f"{total} raw -> {released} released by top-2-per-user scoring -> "
        f"{funnels['columnar'].funnel.get('delivered')} delivered; both "
        "paths share the vectorized flush and funnel — the ablation is "
        "offer boxing"
    )
    for key in ("boxed", "columnar"):
        report.record(
            "funnel",
            {"workload": "ranked-delivery", "candidates": total, "path": key},
            {
                "candidates_per_sec": round(total / best[key], 1),
                "speedup_vs_boxed": round(best["boxed"] / best[key], 3),
            },
        )
    assert speedup >= 2.0, (
        f"columnar scoring only {speedup:.2f}x over boxed offers; the "
        "vectorized top-k failed to amortize"
    )


def test_funnel_pair_table_vs_dict(report, burst_delivery_feed):
    """E17 (companion) — the funnel's dedup/fatigue state backends.

    The same columnar candidate stream through ``offer_batch`` twice:
    once with the numpy pair tables (default) and once with the reference
    dict maps.  Decisions must be identical — this is the workload-scale
    mirror of the Hypothesis equivalence suite — and the recorded
    throughputs (informational, machine-dependent, not gated) track
    whether the vectorized probes keep their edge.  Memory is the
    structural win: the pair table holds a live pair in ~17 bytes of
    columns versus ~100+ bytes per dict entry.
    """
    feed, total = burst_delivery_feed

    def run_with(backend: str):
        def run():
            pipeline = DeliveryPipeline(
                filters=[
                    DedupFilter(backend=backend),
                    WakingHoursFilter(),
                    FatigueFilter(backend=backend),
                ],
                notifier=PushNotifier(keep_at_most=10_000),
            )
            started = time.perf_counter()
            for now, batch in feed:
                pipeline.offer_batch(batch, now)
            return time.perf_counter() - started, pipeline
        return run

    best, funnels = interleaved_best_of(
        {"table": run_with("table"), "dict": run_with("dict")}
    )
    assert_same_delivery(funnels["dict"], funnels["table"])

    table = report.table(
        "E17b",
        "funnel state backends: numpy pair table vs dict",
        ["backend", "raw candidates", "candidates/sec"],
    )
    for key in ("dict", "table"):
        table.add_row(key, total, f"{total / best[key]:,.0f}")
        report.record(
            "funnel",
            {"workload": "burst-delivery-backend", "candidates": total, "path": key},
            {"candidates_per_sec": round(total / best[key], 1)},
        )
    table.add_note(
        "identical survivors and funnel counts by construction "
        "(assert_same_delivery); throughputs informational"
    )


def test_ranked_precut_crossover(report):
    """E17c — the top-k flush's argpartition pre-cut and its crossover.

    ``TopKPerUserBuffer.flush`` ranks with one lexsort over every deduped
    row; above :data:`~repro.delivery.scoring.PRECUT_THRESHOLD` each
    recipient segment is first cut to its top-k score range with an O(n)
    introselect so the O(n log n) sort only sees potential winners.  This
    record measures both sides of that threshold: the pre-cut must *pay*
    on viral-scale buffers and is allowed to cost on small ones (which is
    why it sits behind the threshold at all).  Winners must be identical
    — the pre-cut keeps every boundary score tie, so the (-score,
    candidate) tie-break sees the same rows.
    """
    import numpy as np

    from repro.core import RecommendationGroup
    from repro.delivery.scoring import PRECUT_THRESHOLD

    def build_feed(num_groups, audience, num_users, seed):
        rng = np.random.default_rng(seed)
        return RecommendationBatch(
            [
                RecommendationGroup(
                    np.unique(
                        rng.integers(0, num_users, audience)
                    ).astype(np.int64),
                    candidate=int(rng.integers(10_000, 12_000)),
                    created_at=float(g),
                    via=tuple(range(int(rng.integers(1, 5)))),
                )
                for g in range(num_groups)
            ]
        )

    shapes = {
        # Below the threshold: one coalescing window's typical haul.
        "small": build_feed(40, 40, 400, seed=5),
        # Viral burst: hundreds of wide groups over few recipients, the
        # many-candidates-per-user shape the pre-cut exists for.
        "viral": build_feed(900, 500, 1_200, seed=5),
    }

    table = report.table(
        "E17c",
        f"top-k flush: argpartition pre-cut crossover "
        f"(threshold {PRECUT_THRESHOLD} rows)",
        ["shape", "rows", "lexsort ms", "pre-cut ms", "pre-cut speedup"],
    )
    speedups = {}
    for shape, batch in shapes.items():
        rows = sum(len(g) for g in batch.groups)

        def run_with(threshold):
            def run():
                buffer = TopKPerUserBuffer(k=2, precut_threshold=threshold)
                buffer.offer_batch(batch)
                started = time.perf_counter()
                released = buffer.flush(now=1_000.0)
                return time.perf_counter() - started, released
            return run

        best, released = interleaved_best_of(
            # Thresholds force the path: the pure lexsort vs. always-cut.
            {"lexsort": run_with(10**9), "precut": run_with(1)}, rounds=5
        )
        assert [
            (r.recipient, r.candidate) for r in released["precut"]
        ] == [(r.recipient, r.candidate) for r in released["lexsort"]], (
            f"pre-cut changed the {shape} winners"
        )
        speedups[shape] = best["lexsort"] / best["precut"]
        table.add_row(
            shape,
            rows,
            f"{best['lexsort'] * 1e3:.2f}",
            f"{best['precut'] * 1e3:.2f}",
            f"{speedups[shape]:.2f}x",
        )
        # The viral win is gated (speedup_*); the small shape's sub-1.0
        # ratio is the threshold's justification, recorded informationally
        # under a name the regression checker treats as descriptive.
        metric = (
            "speedup_vs_lexsort"
            if rows >= PRECUT_THRESHOLD
            else "precut_vs_lexsort_cost_ratio"
        )
        report.record(
            "funnel",
            {"workload": "ranked-precut", "shape": shape, "rows": rows},
            {
                "flush_ms": round(best["precut"] * 1e3, 3),
                metric: round(speedups[shape], 3),
            },
        )
    table.add_note(
        "the small shape justifies the threshold: below it the extra "
        "pass costs more than the smaller sort saves"
    )
    assert speedups["viral"] > 1.0, (
        f"argpartition pre-cut did not pay on the viral shape "
        f"({speedups['viral']:.2f}x)"
    )
