"""E6 — The candidate funnel: "billions of raw candidates ... millions of
push notifications".

Paper: "Each day, billions of raw candidates are generated, yielding
millions of push notifications (after eliminating duplicates, suppressing
messages during non-waking hours, controlling for fatigue, etc.)" — i.e. a
~1000:1 reduction.

We run a compressed "day" (bursty streams across 24 simulated hours) through
the production filter trio and report the per-stage survivor counts.  The
absolute ratio scales with workload size; the claim under test is the
order-of-magnitude reduction dominated by dedup.
"""

import pytest

from repro.bench.workloads import bench_engine
from repro.delivery import DeliveryPipeline, PushNotifier
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)

DAY = 86_400.0


@pytest.fixture(scope="module")
def day_workload():
    num_users = 10_000
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=15.0, seed=31)
    )
    # Six viral moments spread across the day + light background churn.
    bursts = tuple(
        BurstSpec(
            target=num_users - 1 - i,
            start=DAY * (i + 0.5) / 7,
            duration=1_800.0,
            num_actors=100,
        )
        for i in range(6)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=DAY,
            background_rate=1.0,
            bursts=bursts,
            seed=31,
        )
    )
    return snapshot, events


def test_daily_funnel(benchmark, day_workload, report):
    snapshot, events = day_workload

    def run_day():
        engine = bench_engine(snapshot, track_latency=False)
        pipeline = DeliveryPipeline(
            notifier=PushNotifier(keep_at_most=10_000)
        )
        for event in events:
            for rec in engine.process(event):
                pipeline.offer(rec, now=event.created_at)
        return pipeline

    pipeline = benchmark.pedantic(run_day, rounds=1, iterations=1)
    funnel = pipeline.funnel

    table = report.table(
        "E6",
        "daily candidate -> notification funnel",
        ["stage", "count", "survival"],
    )
    raw = funnel.get("raw")
    table.add_row("raw candidates", raw, "100%")
    for stage in ("dedup", "waking_hours", "fatigue"):
        passed = funnel.get(f"passed:{stage}")
        table.add_row(
            f"after {stage}", passed, f"{passed / raw:.2%}" if raw else "-"
        )
    delivered = funnel.get("delivered")
    table.add_row("push notifications", delivered, f"{delivered / raw:.2%}")
    table.add_row(
        "reduction ratio", f"{pipeline.reduction_ratio():,.0f} : 1",
        "paper: ~1000:1 (billions -> millions)",
    )
    table.add_note(
        f"workload: {len(events)} events over one simulated day; the ratio "
        "grows with scale because hot candidates re-fire more often"
    )

    assert raw > 100_000, "need a meaningful raw candidate volume"
    assert pipeline.reduction_ratio() > 50, (
        "funnel must eliminate the overwhelming majority of raw candidates"
    )
    assert funnel.get("dropped:dedup") > funnel.get("dropped:fatigue"), (
        "dedup should be the dominant eliminator, as in production"
    )
