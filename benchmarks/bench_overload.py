"""E15/E20 — overload: graceful shedding and the adaptive frontier.

The paper fixes an ingest budget (O(10^4)/s) and says nothing about what
happens when a viral moment exceeds it.  This extension experiment runs
the same burst through three postures — no control, token-bucket DROP,
and token-bucket SAMPLE — and measures what each salvages.

The shape to expect: shedding loses recall roughly in proportion to the
shed fraction, but keeps the pipeline inside its budget; SAMPLE retains a
thin statistical trace of the overload where DROP goes dark.

The module also carries the *real-wall-clock* overload posture
(``mode=process``): the same burst fired at worker-process partitions as
fast as the parent can submit, with a backlog-gated admission controller
reading the transport's actual request-queue depth — the paper's "fixed
ingest budget" turned into feedback from a live queue instead of a model.

E20 closes the loop: the same fixed event budget run under three *knob*
postures — static latency-mode (batch=1 everywhere), static
throughput-mode (big batches + long windows held all run), and the
adaptive controller (floor knobs when idle, throughput knobs only while
the burst's backlog is live).  All three are lossless (no shedding), so
recall is equal by construction, and the frontier is read off the other
two axes: end-to-end p99 (virtual time — static-throughput pays its
windows on every calm event, adaptive doesn't) and cluster round-trips
(the deterministic cost proxy — static-latency pays one per event,
adaptive coalesces the burst).  Adaptive must strictly beat
static-throughput on p99 *and* strictly beat static-latency on cost at
equal recall, i.e. dominate each static posture on at least one axis.
The ratios are recorded to ``BENCH_overload.json`` and regression-gated
(lower is better) by ``check_regression.py`` in the bench-smoke job.
"""

import time

import pytest

from repro.baselines.batch import BatchDiamondDetector
from repro.bench.workloads import bursty_workload
from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.delivery import DeliveryPipeline
from repro.gen import BurstSpec, StreamConfig, generate_event_stream
from repro.ops import AdmissionController, AdmissionPolicy, ControllerConfig
from repro.sim.latency import FixedDelay
from repro.streaming import StreamingTopology

#: Uncapped parameters: the lossless-baseline comparison against batch
#: ground truth needs exact (not pruned) detection semantics.
EXACT_PARAMS = DetectionParams(k=3, tau=1800.0)


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=4_000,
        duration=300.0,
        background_rate=2.0,
        num_bursts=2,
        burst_actors=150,
    )


def run_posture(snapshot, events, admission):
    cluster = Cluster.build(
        snapshot, EXACT_PARAMS, ClusterConfig(num_partitions=2)
    )
    topology = StreamingTopology(
        cluster,
        delivery=DeliveryPipeline(filters=[]),
        hop_models={n: FixedDelay(0.5) for n in ("firehose", "fanout", "push")},
        admission=admission,
    )
    report = topology.run(events)
    pairs = {
        (n.recipient, n.recommendation.candidate) for n in report.notifications
    }
    return topology.consumer, pairs


def test_overload_postures(benchmark, workload, report):
    snapshot, events = workload
    truth = BatchDiamondDetector(
        list(snapshot.follow_edges()), EXACT_PARAMS
    ).distinct_pairs(events)
    # Budget deliberately below the stream's mean rate (~3 ev/s of
    # virtual time): the bursts must overflow it.
    rate, burst = 1.0, 20.0

    results = {}

    def sweep():
        results["no control"] = run_posture(snapshot, events, None)
        results["drop"] = run_posture(
            snapshot,
            events,
            AdmissionController(rate=rate, burst=burst, policy=AdmissionPolicy.DROP),
        )
        results["sample 1-in-10"] = run_posture(
            snapshot,
            events,
            AdmissionController(
                rate=rate,
                burst=burst,
                policy=AdmissionPolicy.SAMPLE,
                sample_one_in=10,
            ),
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = report.table(
        "E15",
        f"overload shedding postures (extension; budget {rate:g} ev/s + {burst:g} burst)",
        ["posture", "events shed", "shed %", "distinct pairs", "recall"],
    )
    for posture, (consumer, pairs) in results.items():
        total = consumer.events_consumed + consumer.events_shed
        recall = len(pairs & truth) / len(truth) if truth else 1.0
        table.add_row(
            posture,
            consumer.events_shed,
            f"{consumer.events_shed / total:.0%}" if total else "-",
            len(pairs),
            f"{recall:.1%}",
        )
        report.record(
            "overload",
            {
                "workload": "bursty-overload",
                "events": len(events),
                "posture": posture,
                "budget_rate": rate,
                "budget_burst": burst,
            },
            {
                "events_shed": consumer.events_shed,
                "shed_fraction": round(consumer.events_shed / total, 4) if total else 0.0,
                "distinct_pairs": len(pairs),
                "recall": round(recall, 4),
            },
        )
    table.add_note(
        "budget is set far below the burst on purpose; the shape under "
        "test is graceful degradation, not absolute numbers"
    )

    no_control = results["no control"]
    drop = results["drop"]
    sample = results["sample 1-in-10"]
    assert no_control[0].events_shed == 0
    assert len(no_control[1] & truth) == len(truth), "uncontrolled run must be lossless"
    assert drop[0].events_shed > 0.5 * len(events)
    assert len(drop[1]) < len(no_control[1])
    # SAMPLE keeps strictly more signal than DROP under the same budget.
    assert sample[0].events_shed < drop[0].events_shed
    assert len(sample[1]) >= len(drop[1])


def test_backlog_gated_admission_wall_clock(workload, report):
    """Real-wall-clock overload: backlog feedback from worker queues.

    The parent fires micro-batches at 2 worker-process partitions as fast
    as it can; an :class:`AdmissionController` with ``backlog_limit``
    sheds whole batches whenever the transport's *measured* request-queue
    depth is over the limit.  The invariants under test are mechanical,
    not threshold-flaky: everything admitted is gathered, the backlog
    signal is the one the queues actually reported, and the run finishes
    with the workers drained.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.core.batch import iter_event_batches

    snapshot, events = workload
    batch_size = 64
    backlog_limit = 4
    admission = AdmissionController(
        rate=1e9, burst=1e9, backlog_limit=backlog_limit
    )
    max_backlog = 0
    gathered_events = 0
    gathered_candidates = 0
    shed_batches = 0
    admitted_batches = 0
    admitted_events = 0
    inflight = 0
    started = time.perf_counter()
    with Cluster.build(
        snapshot,
        EXACT_PARAMS,
        ClusterConfig(num_partitions=2, transport="process"),
    ) as cluster:
        broker = cluster.broker
        transport = cluster.transport
        for batch in iter_event_batches(events, batch_size):
            backlog = transport.backlog()
            max_backlog = max(max_backlog, backlog)
            # One admission decision per micro-batch, fed the *measured*
            # queue depth: the wall-clock analogue of the virtual-time
            # token-bucket postures above.
            if not admission.admit(time.perf_counter() - started, backlog=backlog):
                shed_batches += 1
                continue
            admitted_batches += 1
            admitted_events += len(batch)
            broker.submit_batch(batch)
            inflight += 1
            # No gather barrier per batch: drain opportunistically past a
            # pipelining window so the backlog can actually build.
            while inflight > 16:
                grouped, _ = broker.gather_batch()
                inflight -= 1
                gathered_events += len(grouped)
                gathered_candidates += sum(len(g) for g in grouped)
        while inflight:
            grouped, _ = broker.gather_batch()
            inflight -= 1
            gathered_events += len(grouped)
            gathered_candidates += sum(len(g) for g in grouped)
    wall_seconds = time.perf_counter() - started

    total_batches = admitted_batches + shed_batches
    report.record(
        "overload",
        {
            "workload": "bursty-overload",
            "events": len(events),
            "posture": "backlog drop",
            "mode": "process",
            "backlog_limit": backlog_limit,
            "batch_size": batch_size,
        },
        {
            "wall_seconds": round(wall_seconds, 4),
            "max_backlog": max_backlog,
            "shed_batches": shed_batches,
            "admitted_batches": admitted_batches,
            "shed_fraction": round(shed_batches / total_batches, 4),
            "candidates": gathered_candidates,
        },
    )
    table = report.table(
        "E15b",
        f"backlog-gated admission over worker processes (limit {backlog_limit})",
        ["batches", "admitted", "shed", "max backlog seen", "wall s"],
    )
    table.add_row(
        total_batches, admitted_batches, shed_batches, max_backlog,
        f"{wall_seconds:.2f}",
    )
    table.add_note(
        "shedding here responds to measured queue depth, not a rate model; "
        "a fast host may never build backlog (0 shed is a pass)"
    )
    # Mechanical invariants: every admitted event was gathered, and the
    # admission ledger matches what we observed.
    assert gathered_events == admitted_events
    assert admission.shed_fraction() == pytest.approx(
        shed_batches / total_batches
    )
    assert cluster.broker.stats.partitions_lost_events == 0


# ----------------------------------------------------------------------
# E20 — the adaptive-vs-static overload frontier
# ----------------------------------------------------------------------

#: Throughput-mode knobs: what the ceiling posture holds statically and
#: the adaptive ladder reaches only under backlog.
THROUGHPUT_KNOBS = dict(
    batch_size=32,
    max_wait=2.0,
    delivery_batch_size=64,
    delivery_max_wait=2.0,
)

#: The adaptive controller for this workload: floor = latency-mode knobs,
#: ceiling = THROUGHPUT_KNOBS, watermarks sized so the ~2 ev/s background
#: (a handful of events mid-hop at any instant) stays under ``backlog_low``
#: while a burst's arrival spike clears ``backlog_high`` immediately.  No
#: SLO: E20's frontier is lossless by construction (recall equality is the
#: controlled variable, p99 and cluster cost are the measured axes).
ADAPTIVE_CONFIG = ControllerConfig(
    interval=0.25,
    backlog_high=24,
    backlog_low=6,
    max_level=4,
    batch_ceiling=THROUGHPUT_KNOBS["batch_size"],
    wait_ceiling=THROUGHPUT_KNOBS["max_wait"],
    delivery_batch_ceiling=THROUGHPUT_KNOBS["delivery_batch_size"],
    delivery_wait_ceiling=THROUGHPUT_KNOBS["delivery_max_wait"],
    cooldown_ticks=1,
    recover_ticks=1,
    slo_p99=None,
)


@pytest.fixture(scope="module")
def frontier_workload(workload):
    """The module snapshot with *violent* bursts for the E20 frontier.

    The E15 stream's bursts are diffuse (~2 extra ev/s over 75 s) — the
    overload shape for shedding experiments.  The frontier instead needs
    the paper's viral-moment shape: a calm background with short spikes
    an order of magnitude over it, so the adaptive controller has a real
    regime change to react to (and a calm majority not to punish).
    """
    snapshot, _ = workload
    num_users = snapshot.num_users
    duration = 300.0
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=duration,
            background_rate=2.0,
            bursts=tuple(
                BurstSpec(
                    target=num_users - 1 - i,
                    start=duration * (i + 0.5) / 3,
                    duration=6.0,
                    num_actors=300,
                )
                for i in range(2)
            ),
            seed=17,
        )
    )
    return snapshot, events


def run_knob_posture(snapshot, events, **kwargs):
    """One lossless run; returns (topology, distinct pairs, p99)."""
    cluster = Cluster.build(
        snapshot, EXACT_PARAMS, ClusterConfig(num_partitions=2)
    )
    topology = StreamingTopology(
        cluster,
        delivery=DeliveryPipeline(filters=[]),
        hop_models={n: FixedDelay(0.5) for n in ("firehose", "fanout", "push")},
        **kwargs,
    )
    result = topology.run(events)
    pairs = {
        (n.recipient, n.recommendation.candidate) for n in result.notifications
    }
    return topology, pairs, result.breakdown.total.percentile(99.0)


def test_adaptive_vs_static_frontier(frontier_workload, report):
    """E20: adaptive dominates each static posture on at least one axis."""
    snapshot, events = frontier_workload
    truth = BatchDiamondDetector(
        list(snapshot.follow_edges()), EXACT_PARAMS
    ).distinct_pairs(events)

    latency_top, latency_pairs, latency_p99 = run_knob_posture(
        snapshot, events
    )
    throughput_top, throughput_pairs, throughput_p99 = run_knob_posture(
        snapshot, events, **THROUGHPUT_KNOBS
    )
    adaptive_top, adaptive_pairs, adaptive_p99 = run_knob_posture(
        snapshot, events, controller_config=ADAPTIVE_CONFIG
    )

    postures = {
        "static latency": (latency_top, latency_pairs, latency_p99),
        "static throughput": (throughput_top, throughput_pairs, throughput_p99),
        "adaptive": (adaptive_top, adaptive_pairs, adaptive_p99),
    }
    table = report.table(
        "E20",
        "adaptive vs static overload frontier (lossless; fixed event budget)",
        ["posture", "p99 (virtual s)", "cluster calls", "recall"],
    )
    for name, (topology, pairs, p99) in postures.items():
        recall = len(pairs & truth) / len(truth) if truth else 1.0
        table.add_row(
            name,
            f"{p99:.2f}",
            topology.consumer.cluster_calls,
            f"{recall:.1%}",
        )
        report.record(
            "overload",
            {
                "workload": "bursty-overload",
                "events": len(events),
                "experiment": "E20",
                "posture": name,
            },
            {
                "p99_virtual_seconds": round(p99, 4),
                "cluster_calls": topology.consumer.cluster_calls,
                "recall": round(recall, 4),
            },
        )
    table.add_note(
        "recall is equal by construction (nothing sheds); the frontier is "
        "p99 vs cluster round-trips — adaptive takes static-latency's p99 "
        "at a fraction of its cost"
    )

    # Equal recall: every posture is lossless against batch ground truth.
    assert latency_pairs == truth
    assert throughput_pairs == truth
    assert adaptive_pairs == truth
    # The controller actually reacted to the bursts (and came back down).
    controller = adaptive_top.controller
    assert controller is not None
    assert controller.escalations > 0
    assert controller.shed_engagements == 0
    # Frontier dominance at equal recall: strictly better p99 than the
    # static throughput posture...
    assert adaptive_p99 < throughput_p99
    # ...and strictly fewer detection round-trips than static latency.
    adaptive_calls = adaptive_top.consumer.cluster_calls
    latency_calls = latency_top.consumer.cluster_calls
    assert adaptive_calls < latency_calls

    report.record(
        "overload",
        {
            "workload": "bursty-overload",
            "events": len(events),
            "experiment": "E20",
            "posture": "frontier",
        },
        {
            # Both gated lower-is-better by check_regression.py; relative
            # (virtual-time / call-count) so they compare across hosts.
            "frontier_p99_ratio": round(adaptive_p99 / throughput_p99, 4),
            "frontier_calls_ratio": round(adaptive_calls / latency_calls, 4),
            "controller_escalations": controller.escalations,
            "controller_deescalations": controller.deescalations,
        },
    )
