"""E15 (extension) — overload shedding: graceful degradation past budget.

The paper fixes an ingest budget (O(10^4)/s) and says nothing about what
happens when a viral moment exceeds it.  This extension experiment runs
the same burst through three postures — no control, token-bucket DROP,
and token-bucket SAMPLE — and measures what each salvages.

The shape to expect: shedding loses recall roughly in proportion to the
shed fraction, but keeps the pipeline inside its budget; SAMPLE retains a
thin statistical trace of the overload where DROP goes dark.
"""

import pytest

from repro.baselines.batch import BatchDiamondDetector
from repro.bench.workloads import bursty_workload
from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams
from repro.delivery import DeliveryPipeline
from repro.ops import AdmissionController, AdmissionPolicy
from repro.sim.latency import FixedDelay
from repro.streaming import StreamingTopology

#: Uncapped parameters: the lossless-baseline comparison against batch
#: ground truth needs exact (not pruned) detection semantics.
EXACT_PARAMS = DetectionParams(k=3, tau=1800.0)


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(
        num_users=4_000,
        duration=300.0,
        background_rate=2.0,
        num_bursts=2,
        burst_actors=150,
    )


def run_posture(snapshot, events, admission):
    cluster = Cluster.build(
        snapshot, EXACT_PARAMS, ClusterConfig(num_partitions=2)
    )
    topology = StreamingTopology(
        cluster,
        delivery=DeliveryPipeline(filters=[]),
        hop_models={n: FixedDelay(0.5) for n in ("firehose", "fanout", "push")},
        admission=admission,
    )
    report = topology.run(events)
    pairs = {
        (n.recipient, n.recommendation.candidate) for n in report.notifications
    }
    return topology.consumer, pairs


def test_overload_postures(benchmark, workload, report):
    snapshot, events = workload
    truth = BatchDiamondDetector(
        list(snapshot.follow_edges()), EXACT_PARAMS
    ).distinct_pairs(events)
    # Budget deliberately below the stream's mean rate (~3 ev/s of
    # virtual time): the bursts must overflow it.
    rate, burst = 1.0, 20.0

    results = {}

    def sweep():
        results["no control"] = run_posture(snapshot, events, None)
        results["drop"] = run_posture(
            snapshot,
            events,
            AdmissionController(rate=rate, burst=burst, policy=AdmissionPolicy.DROP),
        )
        results["sample 1-in-10"] = run_posture(
            snapshot,
            events,
            AdmissionController(
                rate=rate,
                burst=burst,
                policy=AdmissionPolicy.SAMPLE,
                sample_one_in=10,
            ),
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = report.table(
        "E15",
        f"overload shedding postures (extension; budget {rate:g} ev/s + {burst:g} burst)",
        ["posture", "events shed", "shed %", "distinct pairs", "recall"],
    )
    for posture, (consumer, pairs) in results.items():
        total = consumer.events_consumed + consumer.events_shed
        recall = len(pairs & truth) / len(truth) if truth else 1.0
        table.add_row(
            posture,
            consumer.events_shed,
            f"{consumer.events_shed / total:.0%}" if total else "-",
            len(pairs),
            f"{recall:.1%}",
        )
        report.record(
            "overload",
            {
                "workload": "bursty-overload",
                "events": len(events),
                "posture": posture,
                "budget_rate": rate,
                "budget_burst": burst,
            },
            {
                "events_shed": consumer.events_shed,
                "shed_fraction": round(consumer.events_shed / total, 4) if total else 0.0,
                "distinct_pairs": len(pairs),
                "recall": round(recall, 4),
            },
        )
    table.add_note(
        "budget is set far below the burst on purpose; the shape under "
        "test is graceful degradation, not absolute numbers"
    )

    no_control = results["no control"]
    drop = results["drop"]
    sample = results["sample 1-in-10"]
    assert no_control[0].events_shed == 0
    assert len(no_control[1] & truth) == len(truth), "uncontrolled run must be lossless"
    assert drop[0].events_shed > 0.5 * len(events)
    assert len(drop[1]) < len(no_control[1])
    # SAMPLE keeps strictly more signal than DROP under the same budget.
    assert sample[0].events_shed < drop[0].events_shed
    assert len(sample[1]) >= len(drop[1])
