"""E2 — Edge-ingest throughput: the paper's O(10^4) insertions/second target.

Paper: "The system must be able to handle a highly dynamic graph — our
design targets O(10^4) edge insertions per second."

Four measurements:

* **firehose ingest** — an uncorrelated background stream (the shape of
  the real firehose, where nearly every insertion completes no motif);
  this is the paper's design-target number and must exceed 10^4/s;
* **burst-heavy ingest** — the same machinery under an adversarially
  bursty stream, where hot targets trigger large k-overlaps (bounded by
  the max_trigger_sources cap);
* **cluster ingest** — 4 partitions in one Python process; production
  recovers the fan-out factor by running partitions in parallel;
* **micro-batching sweep** — the per-event path versus the columnar
  ``EventBatch`` path at batch sizes {1, 16, 64, 256} on the cold
  firehose workload, showing how batching amortizes per-event
  interpreter overhead.  Emits machine-readable results to
  ``benchmarks/results/BENCH_ingest.json``;
* **burst-heavy emission ablation (E16)** — the full detect + deliver
  path with recommendations crossing the detector -> delivery boundary
  boxed (one ``Recommendation`` dataclass per raw candidate, PR 2's
  shape) versus columnar (``RecommendationBatch`` straight into
  ``offer_batch``), on the burst-heavy workload where candidate volume
  dwarfs event volume.
"""

import time

import pytest

from repro.bench.workloads import (
    BENCH_D_CAP,
    BENCH_PARAMS,
    assert_same_delivery,
    bench_cluster,
    bench_engine,
    bursty_workload,
    firehose_stream_config,
    interleaved_best_of,
    viral_firehose_stream_config,
)
from repro.core import DiamondDetector, MotifEngine, RecommendationBatch
from repro.core.batch import iter_event_batches
from repro.delivery import DeliveryPipeline, PushNotifier
from repro.gen import StreamConfig, generate_event_batch, generate_event_stream
from repro.graph import DynamicEdgeIndex, build_follower_snapshot


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(num_users=20_000, duration=1_200.0, background_rate=10.0)


@pytest.fixture(scope="module")
def background_events(workload):
    snapshot, _ = workload
    return generate_event_stream(
        StreamConfig(
            num_users=snapshot.num_users,
            duration=1_200.0,
            background_rate=12.0,
            bursts=(),
            seed=99,
        )
    )


def test_firehose_ingest_throughput(benchmark, workload, background_events, report):
    snapshot, _ = workload
    events = background_events

    def ingest():
        engine = bench_engine(snapshot, track_latency=False)
        for event in events:
            engine.process(event)
        return engine

    benchmark.pedantic(ingest, rounds=3, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    table = report.table(
        "E2",
        "edge-ingest throughput (full detection path)",
        ["configuration", "events", "events/sec", "paper target"],
    )
    table.add_row(
        "single partition, firehose", len(events), f"{throughput:,.0f}", "O(10^4)"
    )
    report.record(
        "ingest",
        {"workload": "firehose", "events": len(events), "path": "per-event"},
        {"events_per_sec": round(throughput, 1)},
    )
    assert throughput >= 10_000, (
        f"firehose ingest {throughput:,.0f}/s misses the paper's 10^4/s target"
    )


def test_burst_heavy_ingest_throughput(benchmark, workload, report):
    snapshot, events = workload

    def ingest():
        engine = bench_engine(snapshot, track_latency=False)
        for event in events:
            engine.process(event)
        return engine

    engine = benchmark.pedantic(ingest, rounds=1, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    for t in report.tables:
        if t.experiment_id == "E2":
            t.add_row(
                "single partition, burst-heavy",
                len(events),
                f"{throughput:,.0f}",
                "-",
            )
            break
    assert engine.stats.recommendations_emitted > 0, "workload never triggered"
    assert throughput >= 2_000, "burst-heavy ingest collapsed"


#: Micro-batch sizes swept by the per-event-vs-batched comparison.
SWEEP_BATCH_SIZES = (1, 16, 64, 256)


def test_batched_ingest_sweep(workload, report):
    """Per-event vs columnar-batched ingest at batch sizes {1, 16, 64, 256}.

    Runs on the cold firehose workload (the design-target premise: nearly
    every insertion completes no motif), with the static index built once
    outside the timed region so only stream ingestion is measured.  The
    batched path must amortize: batch=256 has to beat batch=1 by >= 3x.
    Measurements are interleaved round-robin so machine noise hits every
    configuration equally; each configuration keeps its best round.
    """
    snapshot, _ = workload
    config = firehose_stream_config(num_users=snapshot.num_users)
    events = generate_event_stream(config)
    event_batch = generate_event_batch(config)
    n = len(events)
    static_index = build_follower_snapshot(snapshot)

    def make_engine():
        dynamic_index = DynamicEdgeIndex(
            retention=BENCH_PARAMS.tau, max_edges_per_target=BENCH_D_CAP
        )
        detector = DiamondDetector(
            static_index, dynamic_index, BENCH_PARAMS, inserts_edges=False
        )
        return MotifEngine(
            static_index, dynamic_index, [detector], track_latency=False
        )

    def run_per_event():
        engine = make_engine()
        started = time.perf_counter()
        for event in events:
            engine.process(event)
        return time.perf_counter() - started, engine

    def run_batched(batch_size):
        engine = make_engine()
        started = time.perf_counter()
        for start in range(0, n, batch_size):
            engine.process_batch(event_batch.slice(start, min(start + batch_size, n)))
        return time.perf_counter() - started, engine

    configurations = [("per-event", run_per_event)] + [
        (size, lambda size=size: run_batched(size)) for size in SWEEP_BATCH_SIZES
    ]
    best: dict[object, float] = {}
    emitted: dict[object, int] = {}
    for _round in range(3):
        for key, run in configurations:
            elapsed, engine = run()
            best[key] = min(best.get(key, float("inf")), elapsed)
            emitted[key] = engine.stats.recommendations_emitted

    # Every configuration must have produced identical output.
    assert len(set(emitted.values())) == 1, f"paths diverged: {emitted}"

    table = report.table(
        "E13",
        "micro-batched ingest sweep (cold firehose, static index prebuilt)",
        ["configuration", "events/sec", "vs per-event", "vs batch=1"],
    )
    per_event_elapsed = best["per-event"]
    for key, _run in configurations:
        throughput = n / best[key]
        label = "per-event path" if key == "per-event" else f"batch={key}"
        table.add_row(
            label,
            f"{throughput:,.0f}",
            f"{per_event_elapsed / best[key]:.2f}x",
            f"{best[1] / best[key]:.2f}x",
        )
        report.record(
            "ingest",
            {
                "workload": "firehose-cold",
                "num_users": snapshot.num_users,
                "events": n,
                "batch_size": None if key == "per-event" else key,
                "path": "per-event" if key == "per-event" else "batched",
            },
            {
                "events_per_sec": round(throughput, 1),
                "speedup_vs_per_event": round(per_event_elapsed / best[key], 3),
                "speedup_vs_batch1": round(best[1] / best[key], 3),
            },
        )
    table.add_note(
        "batch=1 pays the full per-batch constant cost per event; the sweep "
        "shows that cost amortizing away as the micro-batch grows"
    )
    assert best[1] / best[256] >= 3.0, (
        f"batch=256 only {best[1] / best[256]:.2f}x over batch=1; "
        "the batched hot path failed to amortize"
    )


#: The S x D storage-backend matrix swept at batch=256.
BACKEND_MATRIX = (
    ("packed", "list"),
    ("csr", "list"),
    ("packed", "ring"),
    ("csr", "ring"),
)


def test_backend_matrix_batch256(workload, report):
    """S/D storage-backend matrix at batch=256 (E14).

    Sweeps {packed, csr} x {list, ring} over two firehose shapes:

    * **firehose-cold** — the design-target stream (PR 1's packed/list
      configuration is the baseline row); the columnar backends must not
      tax the cold path, and in practice edge out the baseline;
    * **firehose-viral** — the cold stream plus one persistently-viral
      target whose D entry sits at the cap, where the ring's vectorized
      freshness scan is the whole point.

    Also records the deterministic structural wins: csr's S memory
    footprint versus packed, and the ring-vs-list freshness-scan
    microbenchmark at cap depth.  Measurements are interleaved round-robin
    (best round kept) so machine noise hits every configuration equally.
    """
    snapshot, _ = workload
    statics = {
        backend: build_follower_snapshot(snapshot, backend=backend)
        for backend in ("packed", "csr")
    }

    def run(event_batch, n, s_backend, d_backend):
        dynamic_index = DynamicEdgeIndex(
            retention=BENCH_PARAMS.tau,
            max_edges_per_target=BENCH_D_CAP,
            backend=d_backend,
        )
        detector = DiamondDetector(
            statics[s_backend], dynamic_index, BENCH_PARAMS, inserts_edges=False
        )
        engine = MotifEngine(
            statics[s_backend], dynamic_index, [detector], track_latency=False
        )
        started = time.perf_counter()
        for start in range(0, n, 256):
            engine.process_batch(event_batch.slice(start, min(start + 256, n)))
        return time.perf_counter() - started, engine.stats.recommendations_emitted

    table = report.table(
        "E14",
        "storage-backend matrix (batch=256, best of interleaved rounds)",
        ["workload", "S backend", "D backend", "events/sec", "vs packed/list"],
    )
    speedups = {}
    for workload_name, config in (
        ("firehose-cold", firehose_stream_config(num_users=snapshot.num_users)),
        ("firehose-viral", viral_firehose_stream_config(num_users=snapshot.num_users)),
    ):
        event_batch = generate_event_batch(config)
        n = len(event_batch)
        best: dict[tuple, float] = {}
        emitted: dict[tuple, int] = {}
        for _round in range(4):
            for combo in BACKEND_MATRIX:
                elapsed, recs = run(event_batch, n, *combo)
                best[combo] = min(best.get(combo, float("inf")), elapsed)
                emitted[combo] = recs
        # Representation must never change results.
        assert len(set(emitted.values())) == 1, f"backends diverged: {emitted}"
        baseline = best[("packed", "list")]
        for combo in BACKEND_MATRIX:
            speedup = baseline / best[combo]
            speedups[(workload_name, combo)] = speedup
            table.add_row(
                workload_name, combo[0], combo[1],
                f"{n / best[combo]:,.0f}", f"{speedup:.2f}x",
            )
            report.record(
                "ingest",
                {
                    "workload": workload_name,
                    "num_users": snapshot.num_users,
                    "events": n,
                    "batch_size": 256,
                    "path": "batched",
                    "s_backend": combo[0],
                    "d_backend": combo[1],
                },
                {
                    "events_per_sec": round(n / best[combo], 1),
                    "speedup_vs_packed_list": round(speedup, 3),
                },
            )

    # Deterministic structural wins, recorded alongside the timings.
    s_memory = {b: statics[b].memory_bytes() for b in ("packed", "csr")}
    memory_ratio = s_memory["csr"] / s_memory["packed"]
    scan = _viral_scan_best_times(entries=BENCH_D_CAP)
    scan_speedup = scan["list"] / scan["ring"]
    table.add_note(
        f"csr S memory: {memory_ratio:.2f}x of packed "
        f"({s_memory['csr'] / 1e6:.1f} vs {s_memory['packed'] / 1e6:.1f} MB); "
        f"ring freshness scan at cap depth: {scan_speedup:.2f}x over list"
    )
    report.record(
        "ingest",
        {"workload": "s-memory", "num_users": snapshot.num_users},
        {
            "packed_bytes": s_memory["packed"],
            "csr_bytes": s_memory["csr"],
            "csr_vs_packed_ratio": round(memory_ratio, 3),
        },
    )
    report.record(
        "ingest",
        {"workload": "viral-scan", "entries": BENCH_D_CAP},
        {
            "list_us": round(scan["list"] * 1e6, 2),
            "ring_us": round(scan["ring"] * 1e6, 2),
            "ring_speedup": round(scan_speedup, 3),
        },
    )

    # The headline acceptance: the columnar pair must beat PR 1's
    # packed/list configuration where the ring matters, and must not tax
    # the cold path.  Margins are deliberately looser than the locally
    # measured ~1.19x / ~1.01x: shared CI runners swing several percent
    # even with interleaved best-of rounds (the regression gate applies
    # its own 35% tolerance for the same reason).
    assert speedups[("firehose-viral", ("csr", "ring"))] >= 1.05, (
        f"csr+ring only {speedups[('firehose-viral', ('csr', 'ring'))]:.2f}x "
        "over packed/list on the viral firehose"
    )
    assert speedups[("firehose-cold", ("csr", "ring"))] >= 0.90, (
        f"csr+ring taxes the cold firehose: "
        f"{speedups[('firehose-cold', ('csr', 'ring'))]:.2f}x"
    )
    assert memory_ratio <= 0.85, f"csr S memory ratio {memory_ratio:.2f}"
    assert scan_speedup >= 1.1, (
        f"ring freshness scan only {scan_speedup:.2f}x over list at cap depth"
    )


def test_burst_heavy_emission_columnar_vs_boxed(workload, report):
    """E16 — recommendation emission: columnar batches vs boxed dataclasses.

    The whole hot path runs both ways on the burst-heavy workload at
    batch=256 — ingest, detection, *and* delivery — differing only in how
    candidates cross the detector -> delivery boundary:

    * **boxed** — ``process_batch`` materializes one ``Recommendation``
      per raw candidate and the funnel takes them one ``offer`` at a time
      (PR 2's shape, where profiles put candidate boxing at ~60% of the
      burst-heavy run);
    * **columnar** — ``process_batch_grouped`` hands the funnel
      ``RecommendationBatch`` columns and only final survivors are boxed.

    Identical funnels and notification sequences required; measurements
    interleave round-robin with each path keeping its best round.
    """
    snapshot, events = workload
    static_index = build_follower_snapshot(snapshot)
    batch_size = 256

    def make_engine():
        dynamic_index = DynamicEdgeIndex(
            retention=BENCH_PARAMS.tau,
            max_edges_per_target=BENCH_D_CAP,
        )
        detector = DiamondDetector(
            static_index, dynamic_index, BENCH_PARAMS, inserts_edges=False
        )
        return MotifEngine(
            static_index, dynamic_index, [detector], track_latency=False
        )

    def run_boxed():
        engine = make_engine()
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        offer = pipeline.offer
        started = time.perf_counter()
        for chunk in iter_event_batches(events, batch_size):
            now = float(chunk.timestamps[-1])
            for rec in engine.process_batch(chunk):
                offer(rec, now)
        return time.perf_counter() - started, (engine, pipeline)

    def run_columnar():
        engine = make_engine()
        pipeline = DeliveryPipeline(notifier=PushNotifier(keep_at_most=10_000))
        offer_batch = pipeline.offer_batch
        started = time.perf_counter()
        for chunk in iter_event_batches(events, batch_size):
            now = float(chunk.timestamps[-1])
            grouped = engine.process_batch_grouped(chunk)
            groups = [group for batch in grouped for group in batch.groups]
            if groups:
                offer_batch(RecommendationBatch(groups), now)
        return time.perf_counter() - started, (engine, pipeline)

    best, outcomes = interleaved_best_of(
        {"boxed": run_boxed, "columnar": run_columnar}
    )

    # Representation must never change results: same raw volume, same
    # funnel accounting, same notification sequence.
    boxed_engine, boxed_pipeline = outcomes["boxed"]
    columnar_engine, columnar_pipeline = outcomes["columnar"]
    candidates = boxed_engine.stats.recommendations_emitted
    assert candidates == columnar_engine.stats.recommendations_emitted
    assert candidates > 100_000, "burst-heavy workload never went hot"
    assert_same_delivery(boxed_pipeline, columnar_pipeline)

    n = len(events)
    speedup = best["boxed"] / best["columnar"]
    table = report.table(
        "E16",
        "burst-heavy emission: columnar RecommendationBatch vs boxed (batch=256)",
        ["emission", "events/sec", "candidates/sec", "speedup"],
    )
    for key in ("boxed", "columnar"):
        table.add_row(
            key,
            f"{n / best[key]:,.0f}",
            f"{candidates / best[key]:,.0f}",
            f"{best['boxed'] / best[key]:.2f}x",
        )
        report.record(
            "ingest",
            {
                "workload": "burst-heavy-emission",
                "num_users": snapshot.num_users,
                "events": n,
                "batch_size": batch_size,
                "path": key,
            },
            {
                "events_per_sec": round(n / best[key], 1),
                "candidates_per_sec": round(candidates / best[key], 1),
                "speedup_vs_boxed": round(best["boxed"] / best[key], 3),
            },
        )
    table.add_note(
        f"{candidates} raw candidates from {n} events; the boxed path "
        "constructs one dataclass per candidate, the columnar path only "
        "per funnel survivor"
    )
    assert speedup >= 1.5, (
        f"columnar emission only {speedup:.2f}x over boxed on the "
        "burst-heavy workload"
    )


def _viral_scan_best_times(entries: int, queries: int = 512) -> dict[str, float]:
    """Best per-query freshness-scan time for one cap-depth hot target."""
    out: dict[str, float] = {}
    for d_backend, threshold in (("list", 1 << 30), ("ring", 8)):
        index = DynamicEdgeIndex(
            retention=1e9, backend=d_backend, promote_threshold=threshold
        )
        for i in range(entries):
            index.insert(i % max(entries * 2 // 3, 1), 7, float(i))
        targets = [7] * 64
        nows = [float(entries)] * 64
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            for _ in range(queries // 64):
                index.fresh_sources_multi(targets, nows, tau=1e8, min_count=3, raw=True)
            best = min(best, time.perf_counter() - started)
        out[d_backend] = best / queries
    return out


def test_cluster_throughput(benchmark, workload, report):
    """Every partition sees every event: ~P times the work per event in
    one process (the paper's D-replication trade-off)."""
    snapshot, events = workload

    def ingest():
        cluster = bench_cluster(snapshot, num_partitions=4)
        for event in events:
            cluster.process_event(event)
        return cluster

    benchmark.pedantic(ingest, rounds=1, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    report.record(
        "ingest",
        {
            "workload": "bursty",
            "events": len(events),
            "path": "per-event",
            "partitions": 4,
        },
        {"events_per_sec": round(throughput, 1)},
    )
    for t in report.tables:
        if t.experiment_id == "E2":
            t.add_row("4-partition cluster (1 proc)", len(events), f"{throughput:,.0f}", "-")
            t.add_note(
                "cluster row simulates 4 machines in one process; production "
                "runs partitions in parallel and regains the fan-out factor"
            )
            break
