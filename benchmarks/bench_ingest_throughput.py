"""E2 — Edge-ingest throughput: the paper's O(10^4) insertions/second target.

Paper: "The system must be able to handle a highly dynamic graph — our
design targets O(10^4) edge insertions per second."

Three measurements:

* **firehose ingest** — an uncorrelated background stream (the shape of
  the real firehose, where nearly every insertion completes no motif);
  this is the paper's design-target number and must exceed 10^4/s;
* **burst-heavy ingest** — the same machinery under an adversarially
  bursty stream, where hot targets trigger large k-overlaps (bounded by
  the max_trigger_sources cap);
* **cluster ingest** — 4 partitions in one Python process; production
  recovers the fan-out factor by running partitions in parallel.
"""

import pytest

from repro.bench.workloads import bench_cluster, bench_engine, bursty_workload
from repro.gen import StreamConfig, generate_event_stream


@pytest.fixture(scope="module")
def workload():
    return bursty_workload(num_users=20_000, duration=1_200.0, background_rate=10.0)


@pytest.fixture(scope="module")
def background_events(workload):
    snapshot, _ = workload
    return generate_event_stream(
        StreamConfig(
            num_users=snapshot.num_users,
            duration=1_200.0,
            background_rate=12.0,
            bursts=(),
            seed=99,
        )
    )


def test_firehose_ingest_throughput(benchmark, workload, background_events, report):
    snapshot, _ = workload
    events = background_events

    def ingest():
        engine = bench_engine(snapshot, track_latency=False)
        for event in events:
            engine.process(event)
        return engine

    benchmark.pedantic(ingest, rounds=3, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    table = report.table(
        "E2",
        "edge-ingest throughput (full detection path)",
        ["configuration", "events", "events/sec", "paper target"],
    )
    table.add_row(
        "single partition, firehose", len(events), f"{throughput:,.0f}", "O(10^4)"
    )
    assert throughput >= 10_000, (
        f"firehose ingest {throughput:,.0f}/s misses the paper's 10^4/s target"
    )


def test_burst_heavy_ingest_throughput(benchmark, workload, report):
    snapshot, events = workload

    def ingest():
        engine = bench_engine(snapshot, track_latency=False)
        for event in events:
            engine.process(event)
        return engine

    engine = benchmark.pedantic(ingest, rounds=1, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    for t in report.tables:
        if t.experiment_id == "E2":
            t.add_row(
                "single partition, burst-heavy",
                len(events),
                f"{throughput:,.0f}",
                "-",
            )
            break
    assert engine.stats.recommendations_emitted > 0, "workload never triggered"
    assert throughput >= 2_000, "burst-heavy ingest collapsed"


def test_cluster_throughput(benchmark, workload, report):
    """Every partition sees every event: ~P times the work per event in
    one process (the paper's D-replication trade-off)."""
    snapshot, events = workload

    def ingest():
        cluster = bench_cluster(snapshot, num_partitions=4)
        for event in events:
            cluster.process_event(event)
        return cluster

    benchmark.pedantic(ingest, rounds=1, iterations=1)
    throughput = len(events) / benchmark.stats.stats.mean

    for t in report.tables:
        if t.experiment_id == "E2":
            t.add_row("4-partition cluster (1 proc)", len(events), f"{throughput:,.0f}", "-")
            t.add_note(
                "cluster row simulates 4 machines in one process; production "
                "runs partitions in parallel and regains the fan-out factor"
            )
            break
