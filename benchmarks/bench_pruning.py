"""E7 — D pruning: memory versus recall.

Paper: "memory pressure can be alleviated by pruning the D data structure
to only retain the most recent edges (since we desire timely results)".

Two pruning knobs are swept against batch ground truth:

* the retention window (time-based pruning) — retention >= tau must give
  perfect recall; retention < tau trades recall for memory;
* the per-target cap (size-based pruning) — viral targets lose their
  oldest fresh edges first.
"""

import pytest

from repro.baselines.batch import BatchDiamondDetector
from repro.core import DetectionParams, MotifEngine
from repro.graph import DynamicEdgeIndex, build_follower_snapshot
from repro.core.diamond import DiamondDetector
from repro.bench.workloads import bursty_workload

PARAMS = DetectionParams(k=3, tau=900.0)


@pytest.fixture(scope="module")
def workload():
    snapshot, events = bursty_workload(
        num_users=6_000, duration=1_200.0, background_rate=4.0, burst_actors=60
    )
    follows = list(snapshot.follow_edges())
    truth = BatchDiamondDetector(follows, PARAMS).distinct_pairs(events)
    return snapshot, events, truth


def run_with_dynamic_index(snapshot, events, retention, cap):
    static_index = build_follower_snapshot(snapshot)
    dynamic_index = DynamicEdgeIndex(
        retention=retention, max_edges_per_target=cap
    )
    params = PARAMS if retention >= PARAMS.tau else DetectionParams(
        k=PARAMS.k, tau=retention
    )
    detector = DiamondDetector(
        static_index, dynamic_index, params, inserts_edges=False
    )
    engine = MotifEngine(static_index, dynamic_index, [detector], track_latency=False)
    pairs = set()
    peak_memory = 0
    for event in events:
        for rec in engine.process(event):
            pairs.add((rec.recipient, rec.candidate))
        if engine.stats.events_processed % 500 == 0:
            peak_memory = max(peak_memory, dynamic_index.memory_bytes())
    peak_memory = max(peak_memory, dynamic_index.memory_bytes())
    return pairs, peak_memory


def test_retention_window_sweep(benchmark, workload, report):
    snapshot, events, truth = workload
    table = report.table(
        "E7",
        "D pruning: retention window and per-target cap vs recall",
        ["policy", "D peak memory", "pairs found", "recall"],
    )

    results = {}

    def sweep():
        for retention in (60.0, 300.0, 900.0, 1800.0):
            results[f"window={retention:g}s"] = run_with_dynamic_index(
                snapshot, events, retention, cap=None
            )
        for cap in (8, 32, 128):
            results[f"cap={cap}/target"] = run_with_dynamic_index(
                snapshot, events, retention=900.0, cap=cap
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    recalls = {}
    for policy, (pairs, memory) in results.items():
        recall = len(pairs & truth) / len(truth) if truth else 1.0
        recalls[policy] = recall
        table.add_row(
            policy, f"{memory / 1024:.0f} KB", len(pairs), f"{recall:.1%}"
        )
    table.add_note(
        f"ground truth: {len(truth)} distinct (recipient, candidate) pairs "
        f"from batch replay with tau={PARAMS.tau:g}s, k={PARAMS.k}"
    )

    assert truth, "workload produced no ground-truth motifs"
    # Retention >= tau keeps every fresh edge: perfect recall.
    assert recalls["window=900s"] == 1.0
    assert recalls["window=1800s"] == 1.0
    # Shrinking the window can only lose motifs, monotonically.
    assert recalls["window=60s"] <= recalls["window=300s"] <= recalls["window=900s"]
    # The cap trades a little recall for a hard memory bound.
    assert recalls["cap=8/target"] <= recalls["cap=128/target"]
    cap_memory = results["cap=8/target"][1]
    full_memory = results["window=900s"][1]
    assert cap_memory < full_memory
