"""E22 — durability tax and replay-to-now recovery speed (extension).

The durable tier exists so a crashed deployment can rebuild its exact
delivered state, but it rides the hot ingest path to do it: every flush
batch is CRC-framed into the WAL before the cluster sees it, and
periodic incremental snapshots checkpoint every state arena.  This
experiment prices that insurance and the payout:

* **wal_overhead_ratio** — wall clock of the identical batched
  ingest+delivery loop with WAL logging and periodic snapshots, over the
  same loop with durability off.  The acceptance bar is **< 1.5x**: the
  log is a userspace-buffered sequential append, so the tax must stay
  a fraction of the detection work it protects.
* **recovery_seconds_per_million_events** — full cold replay (snapshot
  ignored) through the cluster's normal batched ingest, normalized per
  million WAL events.
* **snapshot_delta_ratio** — bytes the second-and-later incremental
  snapshots actually write, over the bytes a full checkpoint would copy;
  the append-only arenas (event log, delivered ledger) should make
  deltas a small fraction of state size.

Recovery is also checked for *correctness* here, not just speed: the
replayed deployment's delivered triple multiset must equal the live WAL
run's exactly (the crash suite proves the SIGKILL cases; this bench
pins the uninterrupted one at scale).
"""

from __future__ import annotations

import shutil
import time

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent
from repro.core.batch import EventBatch
from repro.core.recommendation import RecommendationBatch
from repro.delivery.dedup import DedupFilter
from repro.delivery.pipeline import DeliveryPipeline
from repro.durability import DurabilityManager, prepare_root, recover
from repro.gen import TwitterGraphConfig, generate_follow_graph
from repro.util.rng import derive_seed

K = 2
TAU = 600.0
PARTITIONS = 2

#: The acceptance bar: logged ingest within this factor of unlogged.
MAX_WAL_OVERHEAD = 1.5

SCALES = {
    # CI-sized: same shape, small enough for the bench-smoke job.
    "smoke": dict(
        num_users=3_000,
        mean_followings=10.0,
        num_batches=500,
        batch_size=8,
        snapshot_every=125,
    ),
    "full": dict(
        num_users=20_000,
        mean_followings=12.0,
        num_batches=2_500,
        batch_size=16,
        snapshot_every=500,
    ),
}


def build_batches(params, seed):
    """Deterministic flush batches: one EventBatch per consumer flush."""
    rng = np.random.default_rng(derive_seed(seed, "bench-durability"))
    batches = []
    clock = 0.0
    hot = max(2, params["num_users"] // 10)
    for _ in range(params["num_batches"]):
        events = []
        for _ in range(params["batch_size"]):
            clock += 0.01
            events.append(
                EdgeEvent(
                    clock,
                    int(rng.integers(0, params["num_users"])),
                    # Skew targets toward a hot set so diamonds do close
                    # and the delivery funnel sees real traffic.
                    int(rng.integers(0, hot)),
                )
            )
        batches.append((EventBatch.from_events(events), clock))
    return batches


def run_ingest(cluster, batches, durability=None, snapshot_every=0):
    """The topology's flush loop, minus the DES: ingest + deliver.

    With *durability*, every batch is WAL-logged first and a snapshot is
    taken every *snapshot_every* batches — the live tier's exact write
    path.  Returns (busy wall seconds, delivered triples, notifications).
    """
    delivery = DeliveryPipeline(filters=[DedupFilter()])
    notifications = []
    started = time.perf_counter()
    for i, (batch, now) in enumerate(batches):
        if durability is not None:
            durability.log_batch(batch, now)
        grouped, _latency = cluster.broker.process_batch(batch, now=now)
        merged = RecommendationBatch.concat_all(grouped)
        if len(merged):
            notifications.extend(delivery.offer_batch(merged, now))
        if durability is not None and snapshot_every and (
            (i + 1) % snapshot_every == 0
        ):
            durability.snapshot(
                now, delivery=delivery, notifications=notifications
            )
    elapsed = time.perf_counter() - started
    triples = sorted(
        (n.recommendation.recipient, n.recommendation.candidate,
         n.recommendation.created_at)
        for n in notifications
    )
    return elapsed, triples, notifications


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_durability_overhead_and_recovery(scale, report, tmp_path):
    params = SCALES[scale]
    seed = 22
    snapshot = generate_follow_graph(
        TwitterGraphConfig(
            num_users=params["num_users"],
            mean_followings=params["mean_followings"],
            seed=seed,
        )
    )
    detection = DetectionParams(k=K, tau=TAU)
    config = ClusterConfig(num_partitions=PARTITIONS)
    batches = build_batches(params, seed)
    total_events = params["num_batches"] * params["batch_size"]

    # -- baseline: the same loop with durability off --------------------
    with Cluster.build(snapshot, detection, config) as cluster:
        plain_seconds, plain_triples, _ = run_ingest(cluster, batches)

    # -- logged run: WAL tap on every batch + periodic snapshots --------
    root = tmp_path / "root"
    prepare_root(
        root,
        snapshot,
        {"k": K, "tau": TAU, "num_partitions": PARTITIONS},
    )
    with Cluster.build(snapshot, detection, config) as cluster:
        durability = DurabilityManager(root, cluster, gc_segments=False)
        with durability:
            wal_seconds, wal_triples, _ = run_ingest(
                cluster,
                batches,
                durability=durability,
                snapshot_every=params["snapshot_every"],
            )
        stats = durability.stats()

    # Durability must be pure overhead, never a behavior change.
    assert wal_triples == plain_triples

    # -- cold recovery: full WAL replay through the normal ingest -------
    recovery_started = time.perf_counter()
    result = recover(root, use_snapshot=False)
    try:
        recovery_seconds = time.perf_counter() - recovery_started
        assert result.replayed_events == total_events
        recovered = sorted(t[:3] for t in result.delivered)
        assert recovered == wal_triples
    finally:
        result.close()

    overhead = wal_seconds / max(plain_seconds, 1e-9)
    per_million = recovery_seconds * 1e6 / total_events
    delta_ratio = stats["snapshot_delta_bytes"] / max(
        stats["snapshot_full_bytes"], 1.0
    )
    wal_bytes_per_event = stats["wal_bytes"] / total_events

    table = report.table(
        "E22",
        f"durability tax and recovery ({scale}: "
        f"{params['num_users']:,} users, {total_events:,} events)",
        ["run", "wall", "events/s", "delivered"],
    )
    table.add_row(
        "ingest (no WAL)", f"{plain_seconds:.2f} s",
        f"{total_events / plain_seconds:,.0f}", f"{len(plain_triples):,}",
    )
    table.add_row(
        "ingest + WAL + snapshots", f"{wal_seconds:.2f} s",
        f"{total_events / wal_seconds:,.0f}", f"{len(wal_triples):,}",
    )
    table.add_row(
        "cold recovery (replay)", f"{recovery_seconds:.2f} s",
        f"{total_events / recovery_seconds:,.0f}", f"{len(recovered):,}",
    )
    table.add_note(
        f"overhead {overhead:.2f}x (bar: <{MAX_WAL_OVERHEAD:g}x), "
        f"{stats['wal_bytes'] / 1e6:.1f} MB WAL "
        f"({wal_bytes_per_event:.0f} B/event), "
        f"{int(stats['snapshot_count'])} snapshots, last delta "
        f"{delta_ratio:.1%} of full state"
    )
    report.record(
        "durability",
        {
            "workload": "skewed-batched-ingest",
            "num_users": params["num_users"],
            "num_batches": params["num_batches"],
            "batch_size": params["batch_size"],
            "snapshot_every": params["snapshot_every"],
            "scale": scale,
        },
        {
            "wal_overhead_ratio": round(float(overhead), 4),
            "recovery_seconds_per_million_events": round(per_million, 2),
            "recovery_events_per_sec": round(total_events / recovery_seconds),
            "ingest_events_per_sec": round(total_events / plain_seconds),
            "snapshot_delta_ratio": round(float(delta_ratio), 4),
            "wal_bytes_per_event": round(float(wal_bytes_per_event), 1),
            "delivered": len(wal_triples),
        },
    )

    assert len(wal_triples) > 0
    assert overhead < MAX_WAL_OVERHEAD, (
        f"WAL ingest {wal_seconds:.2f}s is {overhead:.2f}x the unlogged "
        f"{plain_seconds:.2f}s (bar: {MAX_WAL_OVERHEAD:g}x)"
    )
    shutil.rmtree(root, ignore_errors=True)
