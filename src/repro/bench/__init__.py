"""Benchmark-harness helpers: experiment tables and workload builders.

The benchmark suite under ``benchmarks/`` regenerates every quantitative
claim in the paper (see DESIGN.md §6 for the experiment index).  This
package holds the shared machinery: aligned table rendering for the
pytest terminal summary, and the standard workloads benchmarks share.
"""

from repro.bench.report import ExperimentTable, Reporter, format_table
from repro.bench.workloads import (
    assert_same_delivery,
    bench_cluster,
    bench_engine,
    bursty_events,
    bursty_workload,
    drive_stream,
    firehose_stream_config,
    interleaved_best_of,
)

__all__ = [
    "ExperimentTable",
    "Reporter",
    "format_table",
    "assert_same_delivery",
    "bench_cluster",
    "bench_engine",
    "bursty_events",
    "bursty_workload",
    "drive_stream",
    "firehose_stream_config",
    "interleaved_best_of",
]
