"""Benchmark-harness helpers: experiment tables and workload builders.

The benchmark suite under ``benchmarks/`` regenerates every quantitative
claim in the paper (see DESIGN.md §6 for the experiment index).  This
package holds the shared machinery: aligned table rendering for the
pytest terminal summary, and the standard workloads benchmarks share.
"""

from repro.bench.report import ExperimentTable, Reporter, format_table
from repro.bench.workloads import (
    bench_cluster,
    bench_engine,
    bursty_events,
    bursty_workload,
    drive_stream,
    firehose_stream_config,
)

__all__ = [
    "ExperimentTable",
    "Reporter",
    "format_table",
    "bench_cluster",
    "bench_engine",
    "bursty_events",
    "bursty_workload",
    "drive_stream",
    "firehose_stream_config",
]
