"""Paper-versus-measured tables for the benchmark terminal summary."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """One experiment's results, rendered at the end of the bench run.

    Attributes:
        experiment_id: the DESIGN.md experiment id, e.g. ``"E4"``.
        title: what the table shows.
        headers: column names.
        rows: cell values (stringified on render).
        notes: free-form caveats / paper references printed under the table.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cells are stringified on render)."""
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        """Append one caption note."""
        self.notes.append(note)


def format_table(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` with aligned columns."""
    cells = [[str(c) for c in row] for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(parts: list[str]) -> str:
        return "  ".join(part.ljust(widths[i]) for i, part in enumerate(parts))

    out = [f"[{table.experiment_id}] {table.title}"]
    out.append(line(table.headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    out.extend(f"  note: {note}" for note in table.notes)
    return "\n".join(out)


class Reporter:
    """Collects experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self.tables: list[ExperimentTable] = []

    def table(
        self,
        experiment_id: str,
        title: str,
        headers: list[str],
    ) -> ExperimentTable:
        """Create, register, and return a new table."""
        table = ExperimentTable(experiment_id, title, headers)
        self.tables.append(table)
        return table

    def render(self) -> str:
        """All tables, ordered by experiment id, as one text block."""
        ordered = sorted(
            self.tables,
            key=lambda t: (len(t.experiment_id), t.experiment_id),
        )
        return "\n\n".join(format_table(t) for t in ordered)
