"""Paper-versus-measured tables for the benchmark terminal summary,
plus machine-readable ``BENCH_*.json`` result files.

The JSON side exists so the performance trajectory can be tracked across
PRs: each benchmark registers one or more records (name + params +
metrics), and the session writes one ``BENCH_<name>.json`` per benchmark
name containing every record under a ``results`` key.  The format is
documented in the README ("Benchmark result files")."""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ExperimentTable:
    """One experiment's results, rendered at the end of the bench run.

    Attributes:
        experiment_id: the DESIGN.md experiment id, e.g. ``"E4"``.
        title: what the table shows.
        headers: column names.
        rows: cell values (stringified on render).
        notes: free-form caveats / paper references printed under the table.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cells are stringified on render)."""
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        """Append one caption note."""
        self.notes.append(note)


def format_table(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` with aligned columns."""
    cells = [[str(c) for c in row] for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(parts: list[str]) -> str:
        return "  ".join(part.ljust(widths[i]) for i, part in enumerate(parts))

    out = [f"[{table.experiment_id}] {table.title}"]
    out.append(line(table.headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    out.extend(f"  note: {note}" for note in table.notes)
    return "\n".join(out)


@dataclass(frozen=True)
class BenchRecord:
    """One machine-readable benchmark measurement.

    Attributes:
        benchmark: result-file key (``BENCH_<benchmark>.json``).
        params: the configuration measured (batch size, partitions, ...).
        metrics: the numbers observed (events/s, p99 seconds, ...).
    """

    benchmark: str
    params: dict
    metrics: dict


class Reporter:
    """Collects experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self.tables: list[ExperimentTable] = []
        self.records: list[BenchRecord] = []

    def record(self, benchmark: str, params: dict, metrics: dict) -> None:
        """Register one machine-readable measurement for JSON output."""
        self.records.append(BenchRecord(benchmark, dict(params), dict(metrics)))

    def write_json(self, directory: Path) -> list[Path]:
        """Write one ``BENCH_<name>.json`` per benchmark name.

        Each file holds ``{"benchmark": name, "results": [{"params": ...,
        "metrics": ...}, ...]}`` with records in registration order.
        Results are *merged* into an existing file by their ``params``: a
        partial benchmark run refreshes the configurations it measured and
        leaves the rest of the tracked trajectory intact instead of
        clobbering it.  Returns the written paths.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        by_name: dict[str, list[BenchRecord]] = {}
        for record in self.records:
            by_name.setdefault(record.benchmark, []).append(record)
        written: list[Path] = []
        for name, records in by_name.items():
            path = directory / f"BENCH_{name}.json"
            results = self._load_existing_results(path)
            for record in records:
                row = {"params": record.params, "metrics": record.metrics}
                for i, existing in enumerate(results):
                    if existing.get("params") == record.params:
                        results[i] = row
                        break
                else:
                    results.append(row)
            payload = {"benchmark": name, "results": results}
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            written.append(path)
        return written

    @staticmethod
    def _load_existing_results(path: Path) -> list[dict]:
        """Previously-written results to merge into, or ``[]``.

        A corrupt, truncated, or wrong-shaped existing file (a killed
        benchmark run, a bad manual edit) must never sink the fresh run's
        results: any malformed payload — or malformed individual entries —
        is dropped with a warning and the file is rewritten from what
        remains.
        """
        if not path.exists():
            return []
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as error:
            warnings.warn(
                f"existing benchmark results file {path} is corrupt "
                f"({error}); rewriting it from this run's records",
                stacklevel=3,
            )
            return []
        results = payload.get("results") if isinstance(payload, dict) else None
        if not isinstance(results, list):
            warnings.warn(
                f"existing benchmark results file {path} has no usable "
                "'results' list; rewriting it from this run's records",
                stacklevel=3,
            )
            return []
        well_formed = [
            entry
            for entry in results
            if isinstance(entry, dict) and isinstance(entry.get("params"), dict)
        ]
        if len(well_formed) != len(results):
            warnings.warn(
                f"dropping {len(results) - len(well_formed)} malformed "
                f"entries from {path}",
                stacklevel=3,
            )
        return well_formed

    def table(
        self,
        experiment_id: str,
        title: str,
        headers: list[str],
    ) -> ExperimentTable:
        """Create, register, and return a new table."""
        table = ExperimentTable(experiment_id, title, headers)
        self.tables.append(table)
        return table

    def render(self) -> str:
        """All tables, ordered by experiment id, as one text block."""
        ordered = sorted(
            self.tables,
            key=lambda t: (len(t.experiment_id), t.experiment_id),
        )
        return "\n\n".join(format_table(t) for t in ordered)
