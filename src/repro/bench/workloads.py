"""Canonical workloads shared across the benchmark suite.

All benchmark modules draw from the same graph/stream shapes so numbers
are comparable across experiments.  Sizes are laptop-scale; the structural
knobs (skew exponents, burst shapes) match DESIGN.md §4.  The module also
hosts the shared ablation harness (:func:`interleaved_best_of`,
:func:`assert_same_delivery`) used by the columnar-vs-boxed emission
experiments.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.cluster import Cluster, ClusterConfig
from repro.core import DetectionParams, EdgeEvent, MotifEngine
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
)
from repro.graph import GraphSnapshot

#: Default parameters used by the benchmark workloads: production k, plus
#: the viral-target expansion cap (only the newest 32 fresh witnesses are
#: expanded — the same flavour of bound as the paper's influencer limit).
BENCH_PARAMS = DetectionParams(k=3, tau=1800.0, max_trigger_sources=32)


def bursty_workload(
    num_users: int = 20_000,
    duration: float = 1_200.0,
    background_rate: float = 10.0,
    num_bursts: int = 3,
    burst_actors: int = 120,
    seed: int = 17,
) -> tuple[GraphSnapshot, list[EdgeEvent]]:
    """A follow graph plus a temporally-correlated event stream.

    Bursts target high-id (unpopular) accounts so recommendations are
    non-trivial, spaced evenly across the stream.
    """
    snapshot = generate_follow_graph(
        TwitterGraphConfig(num_users=num_users, mean_followings=15.0, seed=seed)
    )
    bursts = tuple(
        BurstSpec(
            target=num_users - 1 - i,
            start=duration * (i + 0.5) / (num_bursts + 1),
            duration=duration / (num_bursts + 2),
            num_actors=burst_actors,
        )
        for i in range(num_bursts)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=duration,
            background_rate=background_rate,
            bursts=bursts,
            seed=seed,
        )
    )
    return snapshot, events


def bursty_events(
    snapshot: GraphSnapshot,
    duration: float = 1_200.0,
    background_rate: float = 10.0,
    num_bursts: int = 3,
    burst_actors: int = 120,
    seed: int = 17,
) -> list[EdgeEvent]:
    """A stream matching :func:`bursty_workload` for an existing snapshot."""
    num_users = snapshot.num_users
    bursts = tuple(
        BurstSpec(
            target=num_users - 1 - i,
            start=duration * (i + 0.5) / (num_bursts + 1),
            duration=duration / (num_bursts + 2),
            num_actors=burst_actors,
        )
        for i in range(num_bursts)
    )
    return generate_event_stream(
        StreamConfig(
            num_users=num_users,
            duration=duration,
            background_rate=background_rate,
            bursts=bursts,
            seed=seed,
        )
    )


#: Per-target D cap used by benchmark engines — the paper's D-pruning
#: mitigation, which bounds worst-case work on viral targets.
BENCH_D_CAP = 256


def bench_engine(
    snapshot: GraphSnapshot,
    params: DetectionParams | None = None,
    track_latency: bool = True,
    s_backend: str = "csr",
    d_backend: str = "ring",
) -> MotifEngine:
    """A single-machine engine with the benchmark's default parameters."""
    return MotifEngine.from_snapshot(
        snapshot,
        params or BENCH_PARAMS,
        max_edges_per_target=BENCH_D_CAP,
        track_latency=track_latency,
        s_backend=s_backend,
        d_backend=d_backend,
    )


def firehose_stream_config(
    num_users: int = 20_000,
    duration: float = 1_200.0,
    rate: float = 12.0,
    seed: int = 99,
) -> StreamConfig:
    """The design-target firehose: uncorrelated, cold-target event stream.

    The paper's O(10^4)/s ingest target is about the raw firehose, where
    "nearly every insertion completes no motif"; a mild target skew
    (exponent 0.4 instead of the bursty workload's 0.8) keeps the target
    distribution cold enough that below-threshold early exits dominate,
    matching that premise.  Used by the ingest micro-batching sweep.
    """
    return StreamConfig(
        num_users=num_users,
        duration=duration,
        background_rate=rate,
        target_popularity_exponent=0.4,
        bursts=(),
        seed=seed,
    )


def viral_firehose_stream_config(
    num_users: int = 20_000,
    duration: float = 1_200.0,
    rate: float = 12.0,
    burst_actors: int = 1_500,
    num_bursts: int = 4,
    seed: int = 99,
) -> StreamConfig:
    """The cold firehose plus one persistently viral target.

    Same uncorrelated background as :func:`firehose_stream_config`, with
    repeated bursts aimed at a single high-id account so its D entry sits
    at the per-target cap for most of the stream — the workload shape the
    columnar ring backend exists for (the paper's "pruning the D data
    structure" scenario: a viral C whose freshness scan runs on every hit).
    Burst actors are sampled without popularity bias so the S-side work
    stays modest and the D scan dominates the hot path.
    """
    return StreamConfig(
        num_users=num_users,
        duration=duration,
        background_rate=rate,
        target_popularity_exponent=0.4,
        bursts=tuple(
            BurstSpec(
                target=num_users - 1,
                start=duration * 0.1 + (duration * 0.8 / num_bursts) * i,
                duration=duration * 0.8 / num_bursts * 0.8,
                num_actors=burst_actors,
                actor_popularity_bias=0.0,
            )
            for i in range(num_bursts)
        ),
        seed=seed,
    )


def hub_burst_stream_config(
    num_users: int = 20_000,
    duration: float = 900.0,
    rate: float = 20.0,
    burst_actors: int = 400,
    num_bursts: int = 4,
    seed: int = 99,
) -> StreamConfig:
    """The cold firehose plus bursts acted by *heavily-followed* accounts.

    Same uncorrelated cold background as :func:`firehose_stream_config`,
    with bursts whose actors are sampled with full popularity bias — the
    fresh B's completing motifs are hub accounts with long follower
    lists.  This is the workload shape where partition-parallel execution
    pays: the k-overlap intersections run over follower lists that shard
    ~1/P per partition (the length-proportional work splits), while the
    replicated D-side work stays modest.  The partition-scaling wall-clock
    experiment (E18) uses it alongside the pure cold firehose, where
    full-D-replication means there is nothing to parallelize.
    """
    return StreamConfig(
        num_users=num_users,
        duration=duration,
        background_rate=rate,
        target_popularity_exponent=0.4,
        bursts=tuple(
            BurstSpec(
                target=num_users - 1 - i,
                start=duration * 0.1 + (duration * 0.8 / num_bursts) * i,
                duration=duration * 0.8 / num_bursts * 0.75,
                num_actors=burst_actors,
                actor_popularity_bias=1.0,
            )
            for i in range(num_bursts)
        ),
        seed=seed,
    )


def drive_stream(system, events: list[EdgeEvent], batch_size: int = 1):
    """Replay *events* through an engine or cluster, optionally batched.

    ``batch_size == 1`` uses the per-event path; larger sizes chunk the
    stream into columnar :class:`~repro.core.batch.EventBatch` micro-batches
    (identical output either way).  Returns all emitted recommendations.
    """
    return system.process_stream(events, batch_size=batch_size)


_T = TypeVar("_T")


def interleaved_best_of(
    runners: dict[str, Callable[[], tuple[float, _T]]],
    rounds: int = 3,
) -> tuple[dict[str, float], dict[str, _T]]:
    """Run competing measurements round-robin; keep each one's best time.

    Interleaving means machine noise (this container swings 2x) hits every
    configuration equally instead of biasing whichever ran during a quiet
    stretch.  Each runner returns ``(elapsed_seconds, outcome)``; the
    result maps each key to its minimum elapsed time and its most recent
    outcome (for post-hoc equivalence checks).
    """
    best = {key: float("inf") for key in runners}
    outcomes: dict[str, _T] = {}
    for _round in range(rounds):
        for key, run in runners.items():
            elapsed, outcome = run()
            best[key] = min(best[key], elapsed)
            outcomes[key] = outcome
    return best, outcomes


def assert_same_delivery(reference, candidate) -> None:
    """Two delivery pipelines must have seen the exact same funnel.

    The representation-ablation contract: identical per-stage
    ``FunnelCounter`` accounting (key for key) and an identical
    notification sequence — (recipient, candidate) pairs in delivery
    order.  Used by the columnar-vs-boxed experiments, where any
    divergence means the columnar path changed semantics, not just speed.
    """
    assert candidate.funnel.stages == reference.funnel.stages, (
        f"funnels diverged: {candidate.funnel.stages} "
        f"vs {reference.funnel.stages}"
    )
    candidate_sequence = [
        (n.recipient, n.recommendation.candidate)
        for n in candidate.notifier.notifications
    ]
    reference_sequence = [
        (n.recipient, n.recommendation.candidate)
        for n in reference.notifier.notifications
    ]
    assert candidate_sequence == reference_sequence, (
        "notification sequences diverged"
    )


def bench_cluster(
    snapshot: GraphSnapshot,
    num_partitions: int,
    replication_factor: int = 1,
    params: DetectionParams | None = None,
    s_backend: str = "csr",
    d_backend: str = "ring",
    transport: str = "inprocess",
) -> Cluster:
    """A cluster with the benchmark's default parameters.

    ``transport="process"`` builds the worker-process deployment; callers
    own the ``close()`` (use the cluster as a context manager).
    """
    return Cluster.build(
        snapshot,
        params or BENCH_PARAMS,
        ClusterConfig(
            num_partitions=num_partitions,
            replication_factor=replication_factor,
            max_edges_per_target=BENCH_D_CAP,
            s_backend=s_backend,
            d_backend=d_backend,
            transport=transport,
        ),
    )
