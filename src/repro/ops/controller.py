"""The adaptive control plane: one loop instead of four static knobs.

The paper's system survives a Twitter firehose by *adapting its posture to
load*; until this module, the reproduction ran on four static knobs —
detection ``batch_size``/``max_wait``, the delivery coalescing window, the
ring ``promote_threshold``, and the admission shed posture — while the
end-to-end bench showed ``queue_share: 0.999``: virtually all p99 is
queueing, exactly the thing a controller can trade against throughput.

The loop is **signal → decision → actuation**:

* **Signal** — a :class:`LoadSignal` sampled every ``interval`` (virtual)
  seconds: the transport's real request backlog (``transport.backlog()``,
  the queue depth the partition fleet actually failed to drain), events in
  flight in the upstream queue stages, buffered micro-batch events, and
  the p99 of end-to-end latencies observed since the last tick.
* **Decision** — a discrete posture *level* on a monotone ladder with
  hysteresis: pressure at/above ``backlog_high`` escalates one level per
  ``cooldown_ticks``; pressure at/below ``backlog_low`` for
  ``recover_ticks`` consecutive ticks de-escalates one level.  Pressure in
  the band between the watermarks holds the current posture — the gap is
  what prevents knob flapping under oscillating load.
* **Actuation** — each level maps to a geometric point between the
  latency-mode floor knobs and the throughput-mode ceiling knobs for both
  micro-batching windows.  Shedding is the *last* rung: it engages only
  when the ladder is already saturated **and** the observed p99 breaches
  the configured SLO, and it releases *first* on recovery (the mirror of
  the escalation order).  Every actuation is published as a gauge so the
  posture history is observable.

The fourth static knob — the ring ``promote_threshold`` — is not a
runtime actuation (promotion happens inside every replica's D index) but
a deployment-time derivation: :func:`derive_promote_threshold` reads the
recorded viral-scan ablation from the bench-smoke trajectory and places
the threshold at the measured list-scan/ring-scan cost crossover instead
of the hard-coded laptop value.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.ops.metrics import MetricsRegistry
from repro.util.validation import require, require_non_negative, require_positive

__all__ = [
    "ControlMode",
    "LoadSignal",
    "ControllerConfig",
    "AdaptiveController",
    "derive_promote_threshold",
]


class ControlMode(enum.Enum):
    """The controller's externally visible posture."""

    #: Floor knobs: smallest batches and windows, lowest added latency.
    LATENCY = "latency"
    #: Escalated knobs: batches and windows grown toward the ceiling.
    THROUGHPUT = "throughput"
    #: The ladder is saturated and the SLO is breached: admission sheds.
    SHED = "shed"


@dataclass(frozen=True)
class LoadSignal:
    """One tick's view of the pipeline's load.

    Attributes:
        transport_backlog: submitted-but-undrained requests on the
            partition transport — the real queue depth the fleet failed
            to keep up with (0 on synchronous transports).
        queued_events: events in flight in the upstream queue stages
            (published but not yet delivered to the consumer).
        pending_events: events buffered in the detection consumer awaiting
            a micro-batch flush.
        pending_candidates: raw candidates buffered in the delivery
            coalescer awaiting a funnel dispatch.
        recent_p99: p99 of end-to-end latencies observed since the last
            tick, or ``None`` when nothing was delivered in the window
            (``None`` never counts as an SLO breach — a silent pipeline
            is recovering, not failing).
    """

    transport_backlog: int = 0
    queued_events: int = 0
    pending_events: int = 0
    pending_candidates: int = 0
    recent_p99: float | None = None

    @property
    def pressure(self) -> int:
        """Upstream load the pipeline has not absorbed — the escalation
        signal.

        Deliberately excludes ``pending_events``/``pending_candidates``:
        those buffers are the controller's *own* batching at work, and
        counting them would hold measured pressure above the calm
        watermark exactly while a post-burst partial batch waits out its
        flush timer — deadlocking the de-escalation that would release
        it.  Self-inflicted buffering is observability, not pressure.

        Serving-tier read traffic is likewise invisible here *by
        construction*: point queries read the serving cache lock-free
        (no queue, no transport round-trip, no consumer buffering), so
        none of these inputs can move when query load is added — the
        write path's control loop must not react to the read path.
        ``tests/test_controller.py`` pins that equivalence end to end.
        """
        return self.transport_backlog + self.queued_events


@dataclass(frozen=True)
class ControllerConfig:
    """Watermarks, knob bounds, and damping for the control loop.

    The defaults are sized for the simulated production topology (hop
    medians of ~2.2 virtual seconds): at a background rate of a few
    events/second roughly ``rate x hop_median`` events sit in flight per
    queue stage, so ``backlog_low`` floats above the idle baseline and
    ``backlog_high`` marks a genuine burst.
    """

    #: Virtual seconds between controller ticks.
    interval: float = 0.5
    #: Pressure at/above which the controller escalates one level.
    backlog_high: int = 48
    #: Pressure at/below which calm ticks accumulate toward de-escalation.
    backlog_low: int = 12
    #: Rungs on the escalation ladder (level 0 = floor knobs).
    max_level: int = 4
    #: Detection micro-batch size at level 0 / at ``max_level``.
    batch_floor: int = 1
    batch_ceiling: int = 256
    #: Detection flush deadline (virtual seconds) at level 0 / max level.
    wait_floor: float = 0.02
    wait_ceiling: float = 2.0
    #: Delivery coalescing thresholds at level 0 / at ``max_level``.
    delivery_batch_floor: int = 1
    delivery_batch_ceiling: int = 512
    delivery_wait_floor: float = 0.02
    delivery_wait_ceiling: float = 2.0
    #: End-to-end p99 SLO (virtual seconds) past which a saturated ladder
    #: escalates to shedding; ``None`` disables the shed rung entirely.
    slo_p99: float | None = None
    #: Minimum ticks between consecutive escalations.
    cooldown_ticks: int = 2
    #: Consecutive calm ticks required per de-escalation step.
    recover_ticks: int = 4

    def __post_init__(self) -> None:
        require_positive(self.interval, "interval")
        require_positive(self.backlog_high, "backlog_high")
        require_non_negative(self.backlog_low, "backlog_low")
        require(
            self.backlog_low < self.backlog_high,
            "backlog_low must sit strictly below backlog_high "
            f"(hysteresis band), got {self.backlog_low} >= {self.backlog_high}",
        )
        require_positive(self.max_level, "max_level")
        require_positive(self.batch_floor, "batch_floor")
        require(
            self.batch_ceiling >= self.batch_floor,
            "batch_ceiling must be >= batch_floor",
        )
        require_positive(self.wait_floor, "wait_floor")
        require(
            self.wait_ceiling >= self.wait_floor,
            "wait_ceiling must be >= wait_floor",
        )
        require_positive(self.delivery_batch_floor, "delivery_batch_floor")
        require(
            self.delivery_batch_ceiling >= self.delivery_batch_floor,
            "delivery_batch_ceiling must be >= delivery_batch_floor",
        )
        require_positive(self.delivery_wait_floor, "delivery_wait_floor")
        require(
            self.delivery_wait_ceiling >= self.delivery_wait_floor,
            "delivery_wait_ceiling must be >= delivery_wait_floor",
        )
        if self.slo_p99 is not None:
            require_positive(self.slo_p99, "slo_p99")
        require_positive(self.cooldown_ticks, "cooldown_ticks")
        require_positive(self.recover_ticks, "recover_ticks")

    def knobs_at(self, level: int) -> tuple[int, float, int, float]:
        """The knob tuple for one ladder rung.

        Returns ``(batch_size, max_wait, delivery_batch_size,
        delivery_max_wait)`` interpolated *geometrically* between floor
        and ceiling — each escalation multiplies the windows by a
        constant factor, so the ladder covers orders of magnitude in
        ``max_level`` steps without tiny early rungs or giant late ones.
        """
        require(
            0 <= level <= self.max_level,
            f"level must be in [0, {self.max_level}], got {level}",
        )
        fraction = level / self.max_level

        def geometric(floor: float, ceiling: float) -> float:
            if floor == ceiling:
                return floor
            return floor * (ceiling / floor) ** fraction

        return (
            round(geometric(self.batch_floor, self.batch_ceiling)),
            geometric(self.wait_floor, self.wait_ceiling),
            round(
                geometric(self.delivery_batch_floor, self.delivery_batch_ceiling)
            ),
            geometric(self.delivery_wait_floor, self.delivery_wait_ceiling),
        )


class AdaptiveController:
    """Closes the loop from the backlog signal to the pipeline's knobs.

    ``knobs`` is any object exposing the three actuation methods (the
    topology provides the real adapter; tests pass a recorder)::

        knobs.set_detection_knobs(batch_size, max_wait)
        knobs.set_delivery_knobs(batch_size, max_wait)
        knobs.set_shedding(active)

    The controller applies its level-0 (latency-mode) knobs at
    construction so the pipeline always starts from a known posture.
    """

    def __init__(
        self,
        knobs,
        config: ControllerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ControllerConfig()
        self.knobs = knobs
        self.registry = registry or MetricsRegistry()
        self.level = 0
        self.shedding = False
        self.ticks = 0
        self._calm_ticks = 0
        self._cooldown = 0
        self._apply_level()
        self.knobs.set_shedding(False)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def mode(self) -> ControlMode:
        """Current posture (derived, never stored separately)."""
        if self.shedding:
            return ControlMode.SHED
        if self.level > 0:
            return ControlMode.THROUGHPUT
        return ControlMode.LATENCY

    @property
    def escalations(self) -> int:
        """Lifetime count of one-rung escalations."""
        return self.registry.counter("controller_escalations").value

    @property
    def deescalations(self) -> int:
        """Lifetime count of one-rung de-escalations."""
        return self.registry.counter("controller_deescalations").value

    @property
    def shed_engagements(self) -> int:
        """Times the shed rung engaged (SLO breach on a saturated ladder)."""
        return self.registry.counter("controller_shed_engaged").value

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def tick(self, now: float, signal: LoadSignal) -> ControlMode:
        """One control decision; returns the (possibly new) posture.

        ``now`` is informational (gauge timestamping); all damping is
        counted in ticks so the loop behaves identically at any interval.
        """
        config = self.config
        self.ticks += 1
        self.registry.counter("controller_ticks").increment()
        if self._cooldown > 0:
            self._cooldown -= 1

        pressure = signal.pressure
        breached = (
            config.slo_p99 is not None
            and signal.recent_p99 is not None
            and signal.recent_p99 > config.slo_p99
        )
        hot = pressure >= config.backlog_high
        calm = pressure <= config.backlog_low

        self.registry.gauge("controller_pressure").set(float(pressure))
        self.registry.gauge("controller_recent_p99").set(
            -1.0 if signal.recent_p99 is None else signal.recent_p99
        )

        if hot or breached:
            self._calm_ticks = 0
            if self._cooldown == 0:
                if self.level < config.max_level:
                    # Monotone escalation: grow the windows first; the
                    # shed rung is unreachable until the ladder saturates.
                    self.level += 1
                    self._apply_level()
                    self.registry.counter("controller_escalations").increment()
                    self._cooldown = config.cooldown_ticks
                elif breached and not self.shedding and config.slo_p99 is not None:
                    self.shedding = True
                    self.knobs.set_shedding(True)
                    self.registry.counter("controller_shed_engaged").increment()
                    self._cooldown = config.cooldown_ticks
        elif calm and not breached:
            self._calm_ticks += 1
            if self._calm_ticks >= config.recover_ticks:
                # One recovery step per calm window, releasing in the
                # reverse of the escalation order: shed first, then the
                # windows step back down toward the latency floor.
                self._calm_ticks = 0
                if self.shedding:
                    self.shedding = False
                    self.knobs.set_shedding(False)
                    self.registry.counter("controller_shed_released").increment()
                elif self.level > 0:
                    self.level -= 1
                    self._apply_level()
                    self.registry.counter("controller_deescalations").increment()
        else:
            # The hysteresis band (or a breach during calm pressure that
            # shedding is already handling): hold the posture.
            self._calm_ticks = 0

        self._publish_posture()
        return self.mode

    def _apply_level(self) -> None:
        """Push the current rung's knobs into the pipeline."""
        batch, wait, delivery_batch, delivery_wait = self.config.knobs_at(
            self.level
        )
        self.knobs.set_detection_knobs(batch, wait)
        self.knobs.set_delivery_knobs(delivery_batch, delivery_wait)
        self.registry.gauge("controller_batch_size").set(float(batch))
        self.registry.gauge("controller_max_wait").set(wait)
        self.registry.gauge("controller_delivery_batch_size").set(
            float(delivery_batch)
        )
        self.registry.gauge("controller_delivery_max_wait").set(delivery_wait)

    def _publish_posture(self) -> None:
        self.registry.gauge("controller_level").set(float(self.level))
        self.registry.gauge("controller_shedding").set(
            1.0 if self.shedding else 0.0
        )
        mode_code = {
            ControlMode.LATENCY: 0.0,
            ControlMode.THROUGHPUT: 1.0,
            ControlMode.SHED: 2.0,
        }
        self.registry.gauge("controller_mode").set(mode_code[self.mode])

    def describe(self) -> str:
        """One-line posture summary for CLI output and logs."""
        return (
            f"mode={self.mode.value} level={self.level}/{self.config.max_level} "
            f"escalations={self.escalations} deescalations={self.deescalations} "
            f"shed_engagements={self.shed_engagements}"
        )


# ----------------------------------------------------------------------
# Deployment-time derivation: the ring promotion threshold
# ----------------------------------------------------------------------

#: Keep derived thresholds inside a sane operating range regardless of how
#: noisy the recorded ablation was.
PROMOTE_THRESHOLD_BOUNDS = (32, 1024)


def derive_promote_threshold(
    results_dir: Path | str | None = None,
    default: int = 160,
) -> int:
    """Derive the D ring promotion threshold from the recorded ablation.

    The viral-scan ablation (``BENCH_ingest.json``, workload
    ``viral-scan``) measures the boxed list scan against the columnar
    ring scan at a fixed entry count.  The list scan is linear in the
    entry count while the ring scan is dominated by numpy's fixed
    dispatch cost, so to first order the costs cross where the list
    scan's total equals the ring's measured cost::

        crossover ~= entries_measured / ring_speedup

    Promoting there — instead of at the hard-coded laptop value — puts
    the representation switch at *this host's* measured break-even.  The
    result is clamped to :data:`PROMOTE_THRESHOLD_BOUNDS`; any missing,
    corrupt, or implausible recording (ring never faster) falls back to
    *default* so the derivation can never make the system worse than the
    static knob it replaces.
    """
    require_positive(default, "default")
    directory = Path(results_dir) if results_dir is not None else Path(
        "benchmarks/results"
    )
    path = directory / "BENCH_ingest.json"
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return default
    results = payload.get("results") if isinstance(payload, dict) else None
    if not isinstance(results, list):
        return default
    for entry in results:
        if not isinstance(entry, dict):
            continue
        params = entry.get("params")
        metrics = entry.get("metrics")
        if not isinstance(params, dict) or not isinstance(metrics, dict):
            continue
        if params.get("workload") != "viral-scan":
            continue
        entries = params.get("entries")
        speedup = metrics.get("ring_speedup")
        if not isinstance(entries, (int, float)) or not isinstance(
            speedup, (int, float)
        ):
            continue
        if entries <= 0 or speedup <= 1.0 or not math.isfinite(speedup):
            return default  # the ring never won at the measured size
        lo, hi = PROMOTE_THRESHOLD_BOUNDS
        return max(lo, min(hi, round(entries / speedup)))
    return default
