"""A minimal metrics registry: counters, gauges, latency histograms.

Deliberately tiny — named metrics with labels, a snapshot method, and
nothing else.  Components publish into a registry they are handed; tests
and monitors read snapshots.  No global state: registries are explicit,
so two clusters in one process never share metrics by accident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.stats import PercentileTracker
from repro.util.validation import require

#: A label set, e.g. ``(("partition", "3"), ("replica", "0"))``.
LabelSet = tuple[tuple[str, str], ...]


def _labels(labels: dict[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative — counters never go down)."""
        require(amount >= 0, f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that may go up or down."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Adjust the current value by *delta*."""
        self.value += delta


class LatencyHistogram:
    """Latency observations with percentile queries (bounded memory)."""

    def __init__(self) -> None:
        self._tracker = PercentileTracker(max_samples=10_000)

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self._tracker.add(seconds)

    def snapshot(self) -> dict[str, float]:
        """count / mean / p50 / p90 / p99 summary."""
        return self._tracker.snapshot()

    def __len__(self) -> int:
        return len(self._tracker)


class MetricsRegistry:
    """Named metrics with optional labels.

    ``counter("events", partition="3")`` returns the same object on every
    call with the same name + labels, so callers need not cache handles.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], LatencyHistogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create a counter."""
        key = (name, _labels(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create a gauge."""
        key = (name, _labels(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str, **labels: str) -> LatencyHistogram:
        """Get-or-create a latency histogram."""
        key = (name, _labels(labels))
        if key not in self._histograms:
            self._histograms[key] = LatencyHistogram()
        return self._histograms[key]

    def snapshot(self) -> dict[str, object]:
        """Flat dict of every metric, keyed ``name{label=value,...}``."""
        out: dict[str, object] = {}
        for (name, labels), counter in self._counters.items():
            out[_render_key(name, labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            out[_render_key(name, labels)] = gauge.value
        for (name, labels), histogram in self._histograms.items():
            out[_render_key(name, labels)] = histogram.snapshot()
        return out


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"
