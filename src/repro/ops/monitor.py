"""Fleet health monitoring over a running cluster.

A :class:`ClusterMonitor` polls every partition replica for the signals an
operator pages on: events processed (lag detection between replicas of
one partition), D size and memory (the paper's acknowledged memory
pressure), channel failure counts, and replica availability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.ops.metrics import MetricsRegistry


@dataclass(frozen=True)
class ReplicaHealth:
    """One replica's vital signs."""

    name: str
    available: bool
    events_processed: int
    missed_events: int
    dynamic_edges: int
    dynamic_memory_bytes: int
    channel_failures: int


@dataclass(frozen=True)
class PartitionHealth:
    """Aggregated health of one partition's replica set."""

    partition_id: int
    replicas: tuple[ReplicaHealth, ...]

    @property
    def healthy_replicas(self) -> int:
        """Replicas currently in service."""
        return sum(1 for replica in self.replicas if replica.available)

    @property
    def max_lag(self) -> int:
        """Largest unrepaired missed-event count across replicas.

        Based on the replica set's missed-event ledger (reset by resync),
        not on lifetime processed counters — a resynced replica is caught
        up even though it processed fewer events over its lifetime.
        """
        if not self.replicas:
            return 0
        return max(replica.missed_events for replica in self.replicas)

    @property
    def at_risk(self) -> bool:
        """True when one more failure would start losing events."""
        return self.healthy_replicas <= 1


class ClusterMonitor:
    """Polls a cluster and publishes per-replica metrics."""

    def __init__(self, cluster: Cluster, registry: MetricsRegistry | None = None) -> None:
        self.cluster = cluster
        self.registry = registry or MetricsRegistry()

    def poll(self) -> list[PartitionHealth]:
        """Take a health snapshot of every partition, updating metrics."""
        report: list[PartitionHealth] = []
        for replica_set in self.cluster.replica_sets:
            replicas: list[ReplicaHealth] = []
            for i, (replica, channel) in enumerate(
                zip(replica_set.replicas, replica_set.channels)
            ):
                dynamic = replica.engine.dynamic_index
                health = ReplicaHealth(
                    name=replica.name,
                    available=channel.available,
                    events_processed=replica.events_processed(),
                    missed_events=replica_set.missed_events[i],
                    dynamic_edges=dynamic.num_edges,
                    dynamic_memory_bytes=dynamic.memory_bytes(),
                    channel_failures=channel.stats.failures,
                )
                replicas.append(health)
                labels = {
                    "partition": str(replica_set.partition_id),
                    "replica": str(i),
                }
                self.registry.gauge("replica_available", **labels).set(
                    1.0 if health.available else 0.0
                )
                self.registry.gauge("d_edges", **labels).set(health.dynamic_edges)
                self.registry.gauge("d_memory_bytes", **labels).set(
                    health.dynamic_memory_bytes
                )
                self.registry.gauge("missed_events", **labels).set(
                    health.missed_events
                )
            report.append(
                PartitionHealth(
                    partition_id=replica_set.partition_id,
                    replicas=tuple(replicas),
                )
            )
        return report

    def alerts(self) -> list[str]:
        """Human-readable alerts an operator would page on."""
        out: list[str] = []
        for partition in self.poll():
            if partition.healthy_replicas == 0:
                out.append(
                    f"p{partition.partition_id}: ALL REPLICAS DOWN - "
                    "events are being lost"
                )
            elif partition.at_risk:
                out.append(
                    f"p{partition.partition_id}: single healthy replica "
                    "(no redundancy)"
                )
            if partition.max_lag > 0:
                out.append(
                    f"p{partition.partition_id}: replica divergence of "
                    f"{partition.max_lag} events - resync needed"
                )
        return out
