"""Fleet health monitoring over a running cluster.

A :class:`ClusterMonitor` polls every partition for the signals an
operator pages on: events processed (lag detection between replicas of
one partition), D size and memory (the paper's acknowledged memory
pressure), channel failure counts, and replica availability.

Polling goes through the cluster transport's ``health`` control message,
so the same monitor watches in-process partitions *and* worker-hosted
ones — for the latter it additionally surfaces worker liveness and the
per-partition request-queue backlog (the admission controller's overload
signal under real parallelism).  Transports that expose ``wire_stats()``
(the shared-memory transport) additionally feed slab-occupancy and
pickle-fallback-rate gauges: a rising fallback rate means ring slots are
undersized for the workload's bursts, and slab occupancy is the shm
flavor of the backlog signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.ops.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.durability.manager import DurabilityManager
    from repro.serving.cache import ServingCache


@dataclass(frozen=True)
class ReplicaHealth:
    """One replica's vital signs."""

    name: str
    available: bool
    events_processed: int
    missed_events: int
    dynamic_edges: int
    dynamic_memory_bytes: int
    channel_failures: int


@dataclass(frozen=True)
class PartitionHealth:
    """Aggregated health of one partition's replica set."""

    partition_id: int
    replicas: tuple[ReplicaHealth, ...]
    #: False when the partition's worker process has died (process
    #: transport); in-process partitions are always "alive".
    worker_alive: bool = True
    #: Pending submitted-but-unprocessed requests on the partition's
    #: queue (0 for synchronous transports).
    backlog: int = 0

    @property
    def healthy_replicas(self) -> int:
        """Replicas currently in service (0 when the worker is dead)."""
        if not self.worker_alive:
            return 0
        return sum(1 for replica in self.replicas if replica.available)

    @property
    def max_lag(self) -> int:
        """Largest unrepaired missed-event count across replicas.

        Based on the replica set's missed-event ledger (reset by resync),
        not on lifetime processed counters — a resynced replica is caught
        up even though it processed fewer events over its lifetime.
        """
        if not self.replicas:
            return 0
        return max(replica.missed_events for replica in self.replicas)

    @property
    def at_risk(self) -> bool:
        """True when one more failure would start losing events."""
        return self.healthy_replicas <= 1


class ClusterMonitor:
    """Polls a cluster and publishes per-replica metrics.

    An optional *serving* cache (the pull tier's
    :class:`~repro.serving.cache.ServingCache`, its sharded wrapper, or
    the worker-resident reader) adds the read side's gauges to every
    poll: ``serving_hit_rate``, ``serving_cache_users``, and
    ``serving_bytes_per_user`` — the three numbers that say whether the
    materialized top-k is keeping up with the query population and what
    each cached user costs in RAM.  Sharded surfaces add
    ``serving_shard_<i>_users``/``_evictions`` per shard, and the
    in-worker reader adds each shard's writer-published
    ``_writer_lag_updates``/``_generation``/``_attaches`` — lag between
    what the parent posted and what the shard's writer has merged, and
    how often table growth forced readers to re-attach.

    An optional *durability* manager adds the durable tier's gauges —
    most importantly ``durability_snapshot_lag_records`` (WAL records a
    crash right now would have to replay) and
    ``durability_wal_unsynced`` (records an abrupt power loss would
    lose) — the two numbers that bound recovery time and data loss.
    """

    def __init__(
        self,
        cluster: Cluster,
        registry: MetricsRegistry | None = None,
        serving: "ServingCache | None" = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        self.cluster = cluster
        self.registry = registry or MetricsRegistry()
        self.serving = serving
        self.durability = durability
        #: Replica count last seen per partition, so a dead worker's
        #: per-replica gauges can be zeroed instead of freezing at their
        #: last healthy values (a frozen replica_available=1 on a dead
        #: partition would silence the very page this monitor exists for).
        self._known_replicas: dict[int, int] = {}

    def poll(self) -> list[PartitionHealth]:
        """Take a health snapshot of every partition, updating metrics."""
        report: list[PartitionHealth] = []
        for snapshot in self.cluster.broker.transport.health():
            if not snapshot.worker_alive:
                for i in range(self._known_replicas.get(snapshot.partition_id, 0)):
                    labels = {
                        "partition": str(snapshot.partition_id),
                        "replica": str(i),
                    }
                    self.registry.gauge("replica_available", **labels).set(0.0)
            else:
                self._known_replicas[snapshot.partition_id] = len(
                    snapshot.replicas
                )
            replicas: list[ReplicaHealth] = []
            for i, replica in enumerate(snapshot.replicas):
                health = ReplicaHealth(
                    name=replica.name,
                    available=replica.available,
                    events_processed=replica.events_processed,
                    missed_events=replica.missed_events,
                    dynamic_edges=replica.dynamic_edges,
                    dynamic_memory_bytes=replica.dynamic_memory_bytes,
                    channel_failures=replica.channel_failures,
                )
                replicas.append(health)
                labels = {
                    "partition": str(snapshot.partition_id),
                    "replica": str(i),
                }
                self.registry.gauge("replica_available", **labels).set(
                    1.0 if health.available else 0.0
                )
                self.registry.gauge("d_edges", **labels).set(health.dynamic_edges)
                self.registry.gauge("d_memory_bytes", **labels).set(
                    health.dynamic_memory_bytes
                )
                self.registry.gauge("missed_events", **labels).set(
                    health.missed_events
                )
            partition_labels = {"partition": str(snapshot.partition_id)}
            self.registry.gauge("worker_alive", **partition_labels).set(
                1.0 if snapshot.worker_alive else 0.0
            )
            self.registry.gauge("worker_backlog", **partition_labels).set(
                snapshot.backlog
            )
            report.append(
                PartitionHealth(
                    partition_id=snapshot.partition_id,
                    replicas=tuple(replicas),
                    worker_alive=snapshot.worker_alive,
                    backlog=snapshot.backlog,
                )
            )
        # The aggregate backlog is published unconditionally — admission
        # or no admission — so the adaptive control plane and dashboards
        # see the same overload signal on every transport.
        self.registry.gauge("transport_backlog").set(
            float(self.cluster.broker.transport.backlog())
        )
        self._publish_wire_stats()
        self._publish_serving_stats()
        self._publish_durability_stats()
        return report

    def _publish_durability_stats(self) -> None:
        """Publish the durable tier's gauges when a manager is wired."""
        durability = self.durability
        if durability is None:
            return
        for key, value in durability.stats().items():
            self.registry.gauge(f"durability_{key}").set(value)

    def _publish_serving_stats(self) -> None:
        """Publish the pull tier's gauges when a serving cache is wired.

        The aggregates must hold up when shard caches grow at different
        rates: users and bytes are summed across shards and the ratio
        taken last (total bytes / total users), never averaged per shard
        — a hot shard three doublings ahead of a cold one would otherwise
        be washed out of ``serving_bytes_per_user``.  Sharded surfaces
        additionally publish per-shard gauges, and worker-resident caches
        (:class:`~repro.serving.cache.ShardedServingCacheReader`) surface
        each shard's writer-published lag/generation/attach counters —
        the control-lane visibility that replaces reply decoding.
        """
        serving = self.serving
        if serving is None:
            return
        self.registry.gauge("serving_hit_rate").set(serving.hit_rate)
        self.registry.gauge("serving_cache_users").set(
            float(serving.users_cached)
        )
        self.registry.gauge("serving_bytes_per_user").set(
            serving.bytes_per_user()
        )
        shard_stats = getattr(serving, "shard_stats", None)
        if not callable(shard_stats):
            return
        for shard, stats in enumerate(shard_stats()):
            for key in (
                "users",
                "evictions",
                "writer_lag_updates",
                "generation",
                "attaches",
            ):
                if key in stats:
                    self.registry.gauge(f"serving_shard_{shard}_{key}").set(
                        stats[key]
                    )

    def _publish_wire_stats(self) -> None:
        """Publish shm wire gauges when the transport exposes them."""
        wire_stats = getattr(self.cluster.broker.transport, "wire_stats", None)
        if not callable(wire_stats):
            return
        stats = wire_stats()
        self.registry.gauge("shm_frames_shm").set(stats["frames_shm"])
        self.registry.gauge("shm_frames_fallback").set(stats["frames_fallback"])
        self.registry.gauge("shm_control_pickle").set(stats["control_pickle"])
        self.registry.gauge("shm_fallback_rate").set(stats["fallback_rate"])
        self.registry.gauge("shm_slab_slots").set(stats["slab_slots"])
        self.registry.gauge("shm_slab_occupancy").set(stats["slab_occupancy"])

    def alerts(self) -> list[str]:
        """Human-readable alerts an operator would page on."""
        out: list[str] = []
        for partition in self.poll():
            if not partition.worker_alive:
                out.append(
                    f"p{partition.partition_id}: WORKER DEAD - "
                    "partition is losing every event"
                )
            elif partition.healthy_replicas == 0:
                out.append(
                    f"p{partition.partition_id}: ALL REPLICAS DOWN - "
                    "events are being lost"
                )
            elif partition.at_risk:
                out.append(
                    f"p{partition.partition_id}: single healthy replica "
                    "(no redundancy)"
                )
            if partition.max_lag > 0:
                out.append(
                    f"p{partition.partition_id}: replica divergence of "
                    f"{partition.max_lag} events - resync needed"
                )
        return out
