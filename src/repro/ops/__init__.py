"""Operational tooling: metrics, health monitoring, admission control.

A production recommendation service is mostly operations: knowing each
partition's lag and memory, shedding load when a burst outruns capacity,
and rolling new S snapshots without downtime.  The paper alludes to all
three ("network pressure and memory pressure", periodic offline loads);
this package provides the machinery:

* :mod:`~repro.ops.metrics` — a minimal metrics registry (counters,
  gauges, latency histograms) every component can publish into;
* :mod:`~repro.ops.monitor` — fleet health snapshots over a cluster
  (per-replica event counts, D sizes, channel failures, staleness);
* :mod:`~repro.ops.admission` — token-bucket admission control with
  shed-or-sample policies for ingest overload;
* :mod:`~repro.ops.controller` — the adaptive control plane closing the
  backlog loop over the micro-batching knobs and the shed posture.
"""

from repro.ops.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.ops.monitor import ClusterMonitor, PartitionHealth
from repro.ops.admission import AdmissionController, AdmissionPolicy, TokenBucket
from repro.ops.controller import (
    AdaptiveController,
    ControlMode,
    ControllerConfig,
    LoadSignal,
    derive_promote_threshold,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "ClusterMonitor",
    "PartitionHealth",
    "AdmissionController",
    "AdmissionPolicy",
    "TokenBucket",
    "AdaptiveController",
    "ControlMode",
    "ControllerConfig",
    "LoadSignal",
    "derive_promote_threshold",
]
