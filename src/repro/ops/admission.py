"""Admission control: what ingest does when a burst outruns capacity.

The paper sizes the system for O(10^4) insertions/second; real streams
spike past any fixed budget.  A :class:`TokenBucket` meters sustained rate
with bounded burst credit, and an :class:`AdmissionController` applies one
of two shedding policies to the overflow:

* ``DROP`` — refuse excess events outright (freshest data wins later);
* ``SAMPLE`` — admit a deterministic 1-in-N of the excess, preserving a
  statistical picture of the overload instead of a blackout.

Shedding trades recall for survival; the controller counts everything so
the recall loss is observable, never silent.
"""

from __future__ import annotations

import enum

from repro.ops.metrics import MetricsRegistry
from repro.util.validation import require_positive


class TokenBucket:
    """The classic rate limiter: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, start: float = 0.0) -> None:
        """Create a bucket full at time *start*.

        Args:
            rate: sustained tokens per second.
            burst: bucket capacity (max tokens that can accumulate).
            start: clock origin.
        """
        require_positive(rate, "rate")
        require_positive(burst, "burst")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated_at = start

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take *tokens* at time *now* if available; refill first.

        ``now`` may not go backwards (monotonic clocks only).
        """
        if now < self._updated_at:
            raise ValueError(
                f"clock went backwards: {now} < {self._updated_at}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated_at) * self.rate
        )
        self._updated_at = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (as of the last acquire)."""
        return self._tokens


class AdmissionPolicy(enum.Enum):
    """What happens to events the bucket refuses."""

    DROP = "drop"
    SAMPLE = "sample"


class AdmissionController:
    """Meters an event stream and sheds the overflow."""

    def __init__(
        self,
        rate: float,
        burst: float,
        policy: AdmissionPolicy = AdmissionPolicy.DROP,
        sample_one_in: int = 10,
        registry: MetricsRegistry | None = None,
        backlog_limit: int | None = None,
    ) -> None:
        """Create a controller.

        Args:
            rate: sustained admitted events per second.
            burst: extra credit for short spikes.
            policy: what to do with the excess.
            sample_one_in: under ``SAMPLE``, admit every N-th shed event.
            registry: metrics sink (private registry when omitted).
            backlog_limit: also shed while the *observed* downstream
                backlog (real queue depth reported by the caller, e.g.
                the worker transport's pending request count) exceeds
                this — the token bucket models a budget, the backlog
                gate reacts to what the fleet is actually failing to
                keep up with.  ``None`` disables the gate.
        """
        require_positive(sample_one_in, "sample_one_in")
        if backlog_limit is not None:
            require_positive(backlog_limit, "backlog_limit")
        self._bucket = TokenBucket(rate, burst)
        self.policy = policy
        self.sample_one_in = sample_one_in
        self.backlog_limit = backlog_limit
        self.registry = registry or MetricsRegistry()
        self._overflow_seen = 0
        self._pressure_shed = False

    def set_pressure_shed(self, active: bool) -> None:
        """Engage or release controller-driven shedding.

        The adaptive control plane flips this when its escalation ladder
        saturates and the latency SLO is breached; while active, every
        offered event takes the shedding path regardless of the token
        bucket (``SAMPLE`` still admits 1-in-N, keeping a statistical
        trace flowing so the latency signal that triggers *recovery*
        never goes dark).
        """
        self._pressure_shed = bool(active)
        self.registry.gauge("admission_pressure_shed").set(
            1.0 if self._pressure_shed else 0.0
        )

    @property
    def pressure_shed(self) -> bool:
        """Whether controller-driven shedding is currently engaged."""
        return self._pressure_shed

    def admit(self, now: float, backlog: int = 0) -> bool:
        """Decide one event's fate at time *now*.

        ``backlog`` is the caller-observed downstream queue depth;
        ignored unless the controller was built with ``backlog_limit``.
        """
        self.registry.counter("admission_offered").increment()
        over_backlog = (
            self.backlog_limit is not None and backlog > self.backlog_limit
        )
        if self._pressure_shed:
            self.registry.counter("admission_pressure_overflow").increment()
        elif over_backlog:
            # Overflow by observed backlog; the shedding policy below still
            # applies (SAMPLE keeps its statistical trace of the overload).
            self.registry.counter("admission_backlog_overflow").increment()
        elif self._bucket.try_acquire(now):
            self.registry.counter("admission_admitted").increment()
            return True
        self._overflow_seen += 1
        if (
            self.policy is AdmissionPolicy.SAMPLE
            and self._overflow_seen % self.sample_one_in == 0
        ):
            self.registry.counter("admission_sampled").increment()
            return True
        self.registry.counter("admission_shed").increment()
        return False

    def shed_fraction(self) -> float:
        """Fraction of offered events refused so far."""
        offered = self.registry.counter("admission_offered").value
        if offered == 0:
            return 0.0
        return self.registry.counter("admission_shed").value / offered
