"""Classical batch motif census — the approach the paper contrasts with.

"Nearly all approaches to motif detection are based on a static graph
snapshot and viewed as batch computations" (paper §1, citing Milo et al.).
This module is that classical approach for the motifs this library cares
about: count wedges, diamonds, and feed-forward triangles in a *static*
snapshot, and score their significance against degree-preserving
randomized graphs (the configuration-model null of Milo et al.).

It is deliberately offline-only — no timestamps, no incrementality — so
examples and docs can show exactly what the paper's "novel twist"
(detecting motifs *as they form*) adds over the state of the art.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CsrGraph
from repro.util.rng import make_rng
from repro.util.stats import OnlineStats
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class MotifCounts:
    """Static-census counts of the library's motif shapes.

    Attributes:
        wedges: directed two-paths ``a -> b -> c`` (the k=1 "motif").
        diamonds: pairs of wedges sharing endpoints — ``a -> {b1, b2} -> c``
            with distinct b's (the paper's k=2 diamond, untimed).
        feed_forward_triangles: ``a -> b -> c`` with ``a -> c`` also
            present (the classic network motif of Milo et al.).
    """

    wedges: int
    diamonds: int
    feed_forward_triangles: int


def count_motifs(graph: CsrGraph) -> MotifCounts:
    """Exact static census of wedges, diamonds, and FFL triangles.

    Wedges cost O(sum of in-degree x out-degree); diamonds are derived
    from co-follower counts (for each c, pairs of distinct in-neighbors'
    shared followers) via the identity
    ``diamonds = sum over (a, c) pairs of C(paths(a, c), 2)`` where
    ``paths(a, c)`` is the number of length-2 paths.
    """
    transposed = graph.transposed()
    out_degrees = graph.out_degrees()

    wedges = 0
    ffl = 0
    diamonds = 0
    for b in range(graph.num_nodes):
        followers = transposed.neighbors(b)   # a's with a -> b
        followees = graph.neighbors(b)        # c's with b -> c
        wedges += len(followers) * len(followees)
        for a in followers:
            if len(followees) == 0:
                continue
            # FFL: a -> b -> c and a -> c.
            a_out = graph.neighbors(int(a))
            ffl += int(np.intersect1d(a_out, followees, assume_unique=True).size)

    # Length-2 path multiplicities per (a, c): accumulate per c.
    for c in range(graph.num_nodes):
        middles = transposed.neighbors(c)     # b's with b -> c
        if len(middles) < 2:
            continue
        path_counts: dict[int, int] = {}
        for b in middles:
            for a in transposed.neighbors(int(b)):  # a's with a -> b
                a = int(a)
                path_counts[a] = path_counts.get(a, 0) + 1
        for a, count in path_counts.items():
            if count >= 2:
                diamonds += count * (count - 1) // 2
    return MotifCounts(
        wedges=wedges, diamonds=diamonds, feed_forward_triangles=ffl
    )


def rewire_preserving_degrees(
    graph: CsrGraph, seed: int, swaps_per_edge: float = 3.0
) -> CsrGraph:
    """Degree-preserving randomization by double-edge swaps.

    The configuration-model null of the motif literature: repeatedly pick
    two edges ``(a, b)`` and ``(c, d)`` and rewire to ``(a, d)``/``(c, b)``
    unless that creates a self-loop or duplicate.  In- and out-degrees are
    exactly preserved; structure (motif counts) is destroyed.
    """
    require_positive(swaps_per_edge, "swaps_per_edge")
    edges = list(graph.edges())
    if len(edges) < 2:
        return graph
    edge_set = set(edges)
    rng = make_rng(seed, "rewire")
    attempts = int(swaps_per_edge * len(edges))
    for _ in range(attempts):
        i, j = rng.randrange(len(edges)), rng.randrange(len(edges))
        if i == j:
            continue
        (a, b), (c, d) = edges[i], edges[j]
        if a == d or c == b:
            continue  # would create a self-loop
        if (a, d) in edge_set or (c, b) in edge_set:
            continue  # would create a duplicate edge
        edge_set.discard((a, b))
        edge_set.discard((c, d))
        edge_set.add((a, d))
        edge_set.add((c, b))
        edges[i], edges[j] = (a, d), (c, b)
    return CsrGraph.from_edges(edges, num_nodes=graph.num_nodes)


@dataclass(frozen=True)
class MotifSignificance:
    """Observed count vs the randomized-null distribution."""

    motif: str
    observed: int
    null_mean: float
    null_stddev: float

    @property
    def z_score(self) -> float:
        """Standard deviations above the null mean (inf when null is rigid)."""
        if self.null_stddev == 0.0:
            return float("inf") if self.observed != self.null_mean else 0.0
        return (self.observed - self.null_mean) / self.null_stddev


def motif_significance(
    graph: CsrGraph,
    num_null_samples: int = 10,
    seed: int = 0,
) -> list[MotifSignificance]:
    """Milo-style z-scores for each motif against degree-preserving nulls."""
    require(num_null_samples >= 2, "need at least 2 null samples for a stddev")
    observed = count_motifs(graph)
    null_stats = {
        "wedges": OnlineStats(),
        "diamonds": OnlineStats(),
        "feed_forward_triangles": OnlineStats(),
    }
    for sample in range(num_null_samples):
        random_graph = rewire_preserving_degrees(graph, seed=seed * 1_000 + sample)
        counts = count_motifs(random_graph)
        null_stats["wedges"].add(counts.wedges)
        null_stats["diamonds"].add(counts.diamonds)
        null_stats["feed_forward_triangles"].add(counts.feed_forward_triangles)
    return [
        MotifSignificance(
            motif=name,
            observed=getattr(observed, name),
            null_mean=stats.mean,
            null_stddev=stats.stddev,
        )
        for name, stats in null_stats.items()
    ]
