"""Structural measurements of follow graphs.

Implements the classic measurements from the paper's reference [7]
(Myers et al., WWW 2014) at library scale: in/out-degree distributions and
their power-law tail exponent (Hill estimator), reciprocity (the fraction
of follows that are mutual — the "social vs information network"
question), and two-hop neighborhood statistics (the quantity that sinks
the two-hop baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.snapshot import GraphSnapshot
from repro.util.stats import describe
from repro.util.validation import require, require_positive


def degree_histogram(degrees: np.ndarray) -> dict[int, int]:
    """Map ``degree -> vertex count`` (zero-degree vertices included)."""
    values, counts = np.unique(np.asarray(degrees, dtype=np.int64), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def estimate_power_law_exponent(degrees: np.ndarray, d_min: int = 5) -> float:
    """Hill (maximum-likelihood) estimate of the tail exponent alpha.

    Fits ``P(d) ~ d^-alpha`` over degrees >= *d_min* using the discrete
    MLE approximation alpha = 1 + n / sum(ln(d / (d_min - 0.5))).
    Returns ``nan`` when fewer than 10 tail observations exist.
    """
    require_positive(d_min, "d_min")
    tail = np.asarray(degrees, dtype=np.float64)
    tail = tail[tail >= d_min]
    if len(tail) < 10:
        return math.nan
    return 1.0 + len(tail) / float(np.sum(np.log(tail / (d_min - 0.5))))


def reciprocity(graph: CsrGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    Twitter's 2012 graph measured ~22% (ref [7]); pure information
    networks approach 0, pure social networks approach 1.
    """
    if graph.num_edges == 0:
        return 0.0
    mutual = 0
    for src in range(graph.num_nodes):
        for dst in graph.neighbors(src):
            if graph.has_edge(int(dst), src):
                mutual += 1
    return mutual / graph.num_edges


def two_hop_statistics(
    snapshot: GraphSnapshot, sample_every: int = 1
) -> dict[str, float]:
    """Distinct two-hop neighborhood sizes over a vertex sample.

    The mean of this distribution is the per-user state the ruled-out
    two-hop baseline must carry; the p99 is its hot-user worst case.
    """
    require(sample_every >= 1, "sample_every must be >= 1")
    graph = snapshot.graph
    sizes: list[float] = []
    for a in range(0, graph.num_nodes, sample_every):
        reachable: set[int] = set()
        for b in graph.neighbors(a):
            reachable.update(int(c) for c in graph.neighbors(int(b)))
        sizes.append(float(len(reachable)))
    if not sizes:
        return {"count": 0.0}
    summary = describe(sizes)
    return {
        "count": float(summary.count),
        "mean": summary.mean,
        "p50": summary.p50,
        "p99": summary.p99,
        "max": summary.maximum,
    }


@dataclass(frozen=True)
class GraphStructureReport:
    """The structural fingerprint of one follow graph."""

    num_users: int
    num_edges: int
    mean_out_degree: float
    max_out_degree: int
    max_in_degree: int
    in_degree_exponent: float
    out_degree_exponent: float
    reciprocity: float
    two_hop_mean: float
    two_hop_p99: float

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"users={self.num_users} edges={self.num_edges} "
                f"mean out-degree={self.mean_out_degree:.1f}",
                f"max out-degree={self.max_out_degree} "
                f"max in-degree={self.max_in_degree}",
                f"tail exponents: in={self.in_degree_exponent:.2f} "
                f"out={self.out_degree_exponent:.2f}",
                f"reciprocity={self.reciprocity:.1%}",
                f"two-hop size: mean={self.two_hop_mean:.0f} "
                f"p99={self.two_hop_p99:.0f}",
            ]
        )


def analyze_structure(
    snapshot: GraphSnapshot, two_hop_sample_every: int = 10
) -> GraphStructureReport:
    """Compute the full structural fingerprint of *snapshot*."""
    graph = snapshot.graph
    out_degrees = graph.out_degrees()
    in_degrees = graph.transposed().out_degrees()
    two_hop = two_hop_statistics(snapshot, sample_every=two_hop_sample_every)
    return GraphStructureReport(
        num_users=graph.num_nodes,
        num_edges=graph.num_edges,
        mean_out_degree=float(out_degrees.mean()) if graph.num_nodes else 0.0,
        max_out_degree=int(out_degrees.max()) if graph.num_nodes else 0,
        max_in_degree=int(in_degrees.max()) if graph.num_nodes else 0,
        in_degree_exponent=estimate_power_law_exponent(in_degrees),
        out_degree_exponent=estimate_power_law_exponent(out_degrees),
        reciprocity=reciprocity(graph),
        two_hop_mean=two_hop.get("mean", 0.0),
        two_hop_p99=two_hop.get("p99", 0.0),
    )
