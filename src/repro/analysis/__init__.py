"""Graph-structure analysis: validating the synthetic workloads.

The paper's scale claims rest on the structure of the Twitter follow graph
(reference [7]: Myers et al., "Information network or social network? The
structure of the Twitter follow graph", WWW 2014).  This package measures
the structural properties that drive detection cost — degree skew,
reciprocity, two-hop blow-up — so experiments can verify their synthetic
graphs actually have Twitter-like shape before trusting the results.
"""

from repro.analysis.structure import (
    GraphStructureReport,
    analyze_structure,
    degree_histogram,
    estimate_power_law_exponent,
    reciprocity,
    two_hop_statistics,
)
from repro.analysis.census import (
    MotifCounts,
    MotifSignificance,
    count_motifs,
    motif_significance,
    rewire_preserving_degrees,
)

__all__ = [
    "GraphStructureReport",
    "analyze_structure",
    "degree_histogram",
    "estimate_power_law_exponent",
    "reciprocity",
    "two_hop_statistics",
    "MotifCounts",
    "MotifSignificance",
    "count_motifs",
    "motif_significance",
    "rewire_preserving_degrees",
]
