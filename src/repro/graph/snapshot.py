"""Offline graph snapshots: the system's bulk-load input.

Production computes the ``A -> B`` edges offline ("this allows us to take
advantage of rich features to prune the graph") and loads them into the
serving system periodically.  A :class:`GraphSnapshot` models that artifact:
the forward follow adjacency plus optional per-edge weights (our stand-in
for the proprietary ranking features), with save/load so experiments can
reuse generated graphs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.ids import UserId
from repro.graph.static_index import (
    S_BACKENDS,
    CsrFollowerIndex,
    StaticFollowerIndex,
)
from repro.util.validation import require


class GraphSnapshot:
    """A frozen follow graph: CSR forward adjacency + optional edge weights."""

    def __init__(
        self,
        graph: CsrGraph,
        edge_weights: dict[tuple[UserId, UserId], float] | None = None,
    ) -> None:
        """Wrap a built CSR graph.

        Args:
            graph: forward adjacency — ``neighbors(a)`` are the accounts
                *a* follows.
            edge_weights: optional affinity scores used by the influencer
                cap; missing edges default to weight 0.
        """
        self.graph = graph
        self.edge_weights = edge_weights or {}

    # ------------------------------------------------------------------
    # Construction / IO
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[UserId, UserId]],
        num_nodes: int | None = None,
        edge_weights: dict[tuple[UserId, UserId], float] | None = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from ``(A, B)`` follow pairs."""
        return cls(CsrGraph.from_edges(edges, num_nodes), edge_weights)

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int | None = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from aligned edge columns (no boxed pairs).

        The chunked generator's entry point; weights are not supported on
        this path (the multi-million-user graphs it exists for never
        score edges).
        """
        return cls(CsrGraph.from_arrays(src, dst, num_nodes))

    def save(self, path: str | Path) -> None:
        """Persist to an ``.npz`` file (CSR arrays + packed weights)."""
        path = Path(path)
        weight_keys = np.array(
            [[a, b] for (a, b) in self.edge_weights], dtype=np.int64
        ).reshape(-1, 2)
        weight_values = np.array(list(self.edge_weights.values()), dtype=np.float64)
        np.savez_compressed(
            path,
            indptr=self.graph._indptr,
            indices=self.graph._indices,
            weight_keys=weight_keys,
            weight_values=weight_values,
        )

    @classmethod
    def load(cls, path: str | Path) -> "GraphSnapshot":
        """Load a snapshot previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            graph = CsrGraph(data["indptr"], data["indices"])
            keys = data["weight_keys"]
            values = data["weight_values"]
        weights = {
            (int(keys[i, 0]), int(keys[i, 1])): float(values[i])
            for i in range(len(values))
        }
        return cls(graph, weights)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        """Vertex count."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Follow-edge count."""
        return self.graph.num_edges

    def followings_of(self, a: UserId) -> np.ndarray:
        """Sorted accounts that *a* follows."""
        return self.graph.neighbors(a)

    def follow_edges(self) -> Iterator[tuple[UserId, UserId]]:
        """Iterate all ``(A, B)`` pairs."""
        return self.graph.edges()

    def weight_of(self, a: UserId, b: UserId) -> float:
        """Affinity weight of edge ``a -> b`` (0.0 when unscored)."""
        return self.edge_weights.get((a, b), 0.0)


def build_follower_snapshot(
    snapshot: GraphSnapshot,
    influencer_limit: int | None = None,
    include_source: Callable[[UserId], bool] | None = None,
    backend: str = "csr",
) -> StaticFollowerIndex | CsrFollowerIndex:
    """Invert a snapshot into the serving-side S structure.

    This is the "periodic offline load" step of the paper: take the forward
    ``A -> B`` snapshot, apply the per-user influencer cap using the
    snapshot's edge weights, restrict to a partition's A's, and emit the
    inverse sorted-follower index.

    Args:
        snapshot: the offline forward graph.
        influencer_limit: per-A cap on retained followings.
        include_source: partition membership predicate over A.
        backend: ``"csr"`` (default) builds the single-arena
            :class:`~repro.graph.static_index.CsrFollowerIndex`;
            ``"packed"`` builds the per-key
            :class:`~repro.graph.static_index.StaticFollowerIndex`.
            Query results are identical either way.
    """
    require(snapshot.num_users >= 0, "snapshot must be well-formed")
    require(
        backend in S_BACKENDS,
        f"unknown S backend {backend!r}; expected one of {S_BACKENDS}",
    )
    weight = None
    if snapshot.edge_weights:
        weight = snapshot.weight_of
    index_cls = CsrFollowerIndex if backend == "csr" else StaticFollowerIndex
    return index_cls.from_follow_edges(
        snapshot.follow_edges(),
        influencer_limit=influencer_limit,
        edge_weight=weight,
        include_source=include_source,
    )
