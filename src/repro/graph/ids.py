"""Identifier and edge types shared across the library.

Users are plain non-negative integers (``UserId``), matching how the
production system identifies accounts by numeric id.  Edges are lightweight
immutable records; the streaming layer moves millions of them, so they use
``__slots__`` via frozen dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

#: A Twitter account id.  Non-negative integer.
UserId = int


@dataclass(frozen=True, slots=True, order=True)
class Edge:
    """A directed follow edge ``src -> dst`` (src follows dst)."""

    src: UserId
    dst: UserId

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"user ids must be non-negative, got {self!r}")

    def reversed(self) -> "Edge":
        """Return the edge with endpoints swapped."""
        return Edge(self.dst, self.src)


@dataclass(frozen=True, slots=True, order=True)
class TimestampedEdge:
    """A directed edge plus the wall-clock second at which it was created.

    These are the events the dynamic side of the system consumes: in the
    paper's notation, the live ``B -> C`` follow (or retweet / favorite)
    events read off the message queue.
    """

    timestamp: float
    src: UserId
    dst: UserId

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"user ids must be non-negative, got {self!r}")

    @property
    def edge(self) -> Edge:
        """The underlying untimestamped edge."""
        return Edge(self.src, self.dst)
