"""The paper's **D** structure: recent dynamic edges keyed by target.

D answers: *given C, which B's created an edge to C recently, and when?*
It absorbs the full live edge stream (every partition keeps a complete copy)
and is pruned aggressively — the paper notes memory pressure "can be
alleviated by pruning the D data structure to only retain the most recent
edges (since we desire timely results)".

Two pruning policies compose:

* a **time window** (``retention`` seconds) — edges older than the window
  can never satisfy the freshness constraint ``tau <= retention``, so they
  are dropped lazily on access and eagerly by :meth:`prune_expired`;
* a **per-target cap** (``max_edges_per_target``) — a viral C attracting
  millions of followers in a burst would otherwise grow its entry without
  bound; only the newest edges are kept.

Timestamps may arrive slightly out of order (real message queues reorder);
entries are kept in arrival order and freshness is always evaluated against
the stored timestamps, so modest reordering only costs a little laziness in
pruning, never correctness.

Two storage backends share this contract:

* ``list`` — every target holds a deque of boxed ``(t, b, action)`` tuples;
* ``ring`` — cold targets stay deques, but targets promoted above
  ``promote_threshold`` stored edges switch to a :class:`_HotRing`: a
  circular **columnar** buffer (float64 timestamps, int64 sources, uint16
  interned action codes) so freshness scans, dedup, and window pruning
  vectorize for exactly the targets where the per-tuple Python scan hurts.
  Rings demote back to deques when pruning shrinks them below half the
  threshold.  Promotion and demotion are pure representation changes —
  queries, eviction order, and counters are bit-identical to ``list``
  (``tests/test_backend_equivalence.py`` enforces this on random streams).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.graph.ids import UserId
from repro.util.validation import require, require_positive

#: Selectable D storage backends (``DynamicEdgeIndex(backend=...)``).
D_BACKENDS = ("list", "ring")

#: Stored-entry count at which the ring backend promotes a target from the
#: deque representation to a columnar ring.  Below this, the plain Python
#: scan over a handful of tuples beats numpy's fixed dispatch cost; the
#: default sits at the measured query-cost crossover of the backend
#: ablation (``benchmarks/bench_ingest_throughput.py``) — promotion is
#: reserved for genuinely viral targets, where the vectorized scan wins.
DEFAULT_PROMOTE_THRESHOLD = 160


@dataclass(frozen=True, slots=True)
class FreshEdge:
    """One recent ``B -> C`` edge as returned by freshness queries.

    ``action`` is an opaque tag (the library passes
    :class:`~repro.core.events.ActionType` values) used by action-filtered
    motifs; ``None`` for untagged inserts.
    """

    source: UserId
    timestamp: float
    action: object | None = None


#: Shared empty result for :meth:`DynamicEdgeIndex.fresh_sources_multi`
#: queries with no fresh sources; never mutated.
_NO_FRESH_SOURCES: list = []


class FreshColumns:
    """A columnar raw freshness result (ring-backed hot targets only).

    ``fresh_sources_multi(raw=True)`` returns one of these instead of a
    list of ``(timestamp, source, action)`` tuples when the queried target
    lives in a ring: the deduped, time-ordered result stays as numpy
    columns so the batched detector can consume sources with one
    ``tolist`` instead of boxing a tuple per edge.  Iteration and equality
    decode to exactly the tuples the list representation would return, so
    the two raw shapes are interchangeable everywhere order matters.
    """

    __slots__ = ("timestamps", "sources", "action_codes", "_table", "_sources_list")

    def __init__(
        self,
        timestamps: np.ndarray,
        sources: np.ndarray,
        action_codes: np.ndarray,
        table: list,
    ) -> None:
        self.timestamps = timestamps
        self.sources = sources
        self.action_codes = action_codes
        self._table = table
        self._sources_list: list[int] | None = None

    def __len__(self) -> int:
        return len(self.timestamps)

    def sources_list(self) -> list[int]:
        """The source column as a plain list (cached one-shot ``tolist``)."""
        sources = self._sources_list
        if sources is None:
            sources = self._sources_list = self.sources.tolist()
        return sources

    def __iter__(self):
        table = self._table
        return iter(
            [
                (t, b, table[code])
                for t, b, code in zip(
                    self.timestamps.tolist(),
                    self.sources_list(),
                    self.action_codes.tolist(),
                )
            ]
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (FreshColumns, list)):
            return list(self) == list(other)
        return NotImplemented


class _HotRing:
    """Circular columnar buffer holding one hot target's recent edges.

    Entries live in three parallel numpy arrays (timestamps, sources,
    interned action codes) in **arrival order**, exactly mirroring a deque:
    appends go to the logical tail, both pruning mechanisms pop from the
    logical head.  ``_table`` is the owning index's shared code -> action
    object list, so iteration and equality decode to the same tuples the
    deque representation stores.

    The buffer grows (doubling) when full, so it can temporarily hold more
    than the per-target cap — cap eviction stays a policy of the owning
    index, keeping the two backends' eviction logic line-for-line parallel.
    """

    __slots__ = ("ts", "src", "act", "start", "count", "_table")

    def __init__(self, capacity: int, table: list) -> None:
        capacity = max(capacity, 8)
        self.ts = np.empty(capacity, dtype=np.float64)
        self.src = np.empty(capacity, dtype=np.int64)
        self.act = np.empty(capacity, dtype=np.uint16)
        self.start = 0
        self.count = 0
        self._table = table

    # -- mutation ------------------------------------------------------

    def append(self, timestamp: float, source: int, code: int) -> None:
        """Append one edge at the logical tail (grows when full)."""
        capacity = len(self.ts)
        if self.count == capacity:
            self._grow(capacity * 2)
            capacity = capacity * 2
        position = self.start + self.count
        if position >= capacity:
            position -= capacity
        self.ts[position] = timestamp
        self.src[position] = source
        self.act[position] = code
        self.count += 1

    def popleft(self) -> None:
        """Drop the oldest entry."""
        self.start += 1
        if self.start == len(self.ts):
            self.start = 0
        self.count -= 1

    def extend(self, ts: np.ndarray, src: np.ndarray, act: np.ndarray) -> None:
        """Bulk-append a column triple at the logical tail.

        Equivalent to ``append`` per element in order, but the whole group
        lands with at most two slice assignments (one when the write does
        not wrap), which is what makes adversarial floods on an
        already-hot target cheap (see ``DynamicEdgeIndex.insert_batch``).
        """
        m = len(ts)
        capacity = len(self.ts)
        needed = self.count + m
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            self._grow(capacity)
        start = self.start + self.count
        if start >= capacity:
            start -= capacity
        stop = start + m
        if stop <= capacity:
            self.ts[start:stop] = ts
            self.src[start:stop] = src
            self.act[start:stop] = act
        else:
            split = capacity - start
            self.ts[start:] = ts[:split]
            self.src[start:] = src[:split]
            self.act[start:] = act[:split]
            self.ts[: stop - capacity] = ts[split:]
            self.src[: stop - capacity] = src[split:]
            self.act[: stop - capacity] = act[split:]
        self.count += m

    def drop_stale(self, cutoff: float) -> int:
        """Pop from the head while it is older than *cutoff*; count popped.

        One scalar head check keeps the no-op case (the overwhelmingly
        common one on in-order streams) at a single comparison; only when
        something is actually stale does the vectorized leading-run count
        pay for itself.
        """
        if not self.count or self.ts[self.start] >= cutoff:
            return 0
        ts = self._ordered(self.ts)
        alive = ts >= cutoff
        first_alive = int(np.argmax(alive))
        removed = first_alive if alive[first_alive] else self.count
        self.start = (self.start + removed) % len(self.ts)
        self.count -= removed
        return removed

    def _grow(self, capacity: int) -> None:
        ts = np.empty(capacity, dtype=np.float64)
        src = np.empty(capacity, dtype=np.int64)
        act = np.empty(capacity, dtype=np.uint16)
        n = self.count
        ts[:n] = self._ordered(self.ts)
        src[:n] = self._ordered(self.src)
        act[:n] = self._ordered(self.act)
        self.ts, self.src, self.act = ts, src, act
        self.start = 0

    # -- views ---------------------------------------------------------

    def _ordered(self, column: np.ndarray) -> np.ndarray:
        """The live entries of *column* in arrival order (view when
        unwrapped, copy when the ring wraps around)."""
        stop = self.start + self.count
        capacity = len(column)
        if stop <= capacity:
            return column[self.start : stop]
        return np.concatenate((column[self.start :], column[: stop - capacity]))

    def fresh_arrays(
        self, now: float, cutoff: float, code: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised freshness query over the live window.

        Returns ``(timestamps, sources, codes)`` of the fresh edges after
        per-source dedup (latest timestamp wins; arrival order breaks
        ties toward the earliest, matching the deque scan's strict
        ``timestamp > previous`` replacement), ordered by ascending
        ``(timestamp, source)``.  The returned arrays are always *owned*
        (never live views of the ring), so callers may hold them across
        later inserts — the batched detector keeps the source column as a
        recommendation group's lazily-decoded witness list.
        """
        ts = self._ordered(self.ts)
        src = self._ordered(self.src)
        act = self._ordered(self.act)
        if code is None and len(ts) and ts.min() >= cutoff and ts.max() <= now:
            # Whole window fresh (the common case mid-burst: retention is
            # wider than tau only pathologically, and `now` trails the
            # newest edge) — skip the mask and its three fancy-index
            # copies; the dedup below works on the raw views.
            pass
        else:
            mask = (ts >= cutoff) & (ts <= now)
            if code is not None:
                mask &= act == code
            ts = ts[mask]
            src = src[mask]
            act = act[mask]
        n = len(ts)
        if n <= 1:
            # The dedup path below always produces fresh arrays via fancy
            # indexing; match that ownership here (the no-mask fast path
            # would otherwise leak a live ring view).
            return ts.copy(), src.copy(), act.copy()
        # Latest edge per distinct source.  Sort by (source, timestamp,
        # arrival-desc) and keep each source group's last element: the
        # max timestamp, and among equal timestamps the *earliest*
        # arrival (larger -arrival sorts later).
        arrival = np.arange(n)
        order = np.lexsort((-arrival, ts, src))
        src_sorted = src[order]
        last = np.empty(n, dtype=bool)
        last[-1] = True
        np.not_equal(src_sorted[1:], src_sorted[:-1], out=last[:-1])
        keep = order[last]
        ts, src, act = ts[keep], src[keep], act[keep]
        final = np.lexsort((src, ts))
        return ts[final], src[final], act[final]

    # -- deque-compatible protocol -------------------------------------

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        """Yield ``(timestamp, source, action)`` tuples in arrival order.

        This is the same tuple shape a deque entry stores, so checkpointing
        and resync code can iterate either representation blindly.
        """
        table = self._table
        ts = self._ordered(self.ts).tolist()
        src = self._ordered(self.src).tolist()
        act = self._ordered(self.act).tolist()
        return iter(
            [(t, b, table[code]) for t, b, code in zip(ts, src, act)]
        )

    def __eq__(self, other: object) -> bool:
        """Content equality against any entry sequence (ring or deque)."""
        if isinstance(other, (_HotRing, deque)):
            return list(self) == list(other)
        return NotImplemented

    def nbytes(self) -> int:
        """Backing-array footprint in bytes."""
        return int(self.ts.nbytes + self.src.nbytes + self.act.nbytes)


class DynamicEdgeIndex:
    """Map ``C -> recent (B, timestamp) entries``, pruned by window and cap."""

    def __init__(
        self,
        retention: float,
        max_edges_per_target: int | None = None,
        backend: str = "ring",
        promote_threshold: int = DEFAULT_PROMOTE_THRESHOLD,
    ) -> None:
        """Create an empty index.

        Args:
            retention: seconds an edge stays queryable.  Must cover the
                largest freshness window ``tau`` any detector will ask for.
            max_edges_per_target: optional hard cap per C; the oldest
                entries are evicted first.
            backend: ``"ring"`` (default) promotes hot targets to columnar
                ring buffers; ``"list"`` keeps every target as a deque of
                tuples.  Query results and eviction behavior are identical.
            promote_threshold: stored-edge count at which the ring backend
                promotes a target; rings demote back below half of it.
        """
        require_positive(retention, "retention")
        if max_edges_per_target is not None:
            require_positive(max_edges_per_target, "max_edges_per_target")
        require(
            backend in D_BACKENDS,
            f"unknown D backend {backend!r}; expected one of {D_BACKENDS}",
        )
        require_positive(promote_threshold, "promote_threshold")
        self.retention = retention
        self.max_edges_per_target = max_edges_per_target
        self.backend = backend
        self.promote_threshold = promote_threshold
        self._ring = backend == "ring"
        self._edges: dict[UserId, deque | _HotRing] = {}
        self._num_edges = 0
        self._inserted_total = 0
        self._evicted_total = 0
        #: Interned action tags for the columnar rings: code -> object, and
        #: the id()-keyed reverse map.  Identity interning matches the
        #: ``is``-based action filter exactly; interned objects are kept
        #: alive by the table, so ids cannot be recycled.
        self._action_table: list = [None]
        self._action_codes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Action interning (ring backend)
    # ------------------------------------------------------------------

    def _encode_action(self, action: object | None) -> int:
        if action is None:
            return 0
        code = self._action_codes.get(id(action))
        if code is None:
            self._action_table.append(action)
            code = len(self._action_table) - 1
            if code > np.iinfo(np.uint16).max:
                raise ValueError(
                    "too many distinct action tags for the ring backend "
                    "(max 65535); use backend='list'"
                )
            self._action_codes[id(action)] = code
        return code

    def _filter_code(self, action: object | None) -> int | None:
        """The interned code of *action* for filtering, or ``None`` for
        "accept all".  An action never interned cannot match any ring
        entry; the sentinel -1 makes the vectorized compare reject all."""
        if action is None:
            return None
        return self._action_codes.get(id(action), -1)

    # ------------------------------------------------------------------
    # Promotion / demotion (ring backend)
    # ------------------------------------------------------------------

    def _promote(self, c: UserId, entry: deque) -> _HotRing:
        """Switch a hot target's deque to the columnar ring representation."""
        cap = self.max_edges_per_target
        if cap is not None:
            # cap + 1 slots: an append at the cap fits without growing, and
            # the subsequent cap eviction restores the invariant.
            capacity = max(cap + 1, len(entry))
        else:
            capacity = max(2 * self.promote_threshold, len(entry))
        ring = _HotRing(capacity, self._action_table)
        encode = self._encode_action
        for timestamp, b, action in entry:
            ring.append(timestamp, b, encode(action))
        self._edges[c] = ring
        return ring

    def _demote(self, c: UserId, ring: _HotRing) -> deque:
        """Switch a cooled-off ring back to the deque representation."""
        entry = deque(ring)
        self._edges[c] = entry
        return entry

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*.

        ``action`` optionally tags the edge with what kind of user action
        created it, so action-filtered motifs (e.g. co-retweet) can query
        only their own edge type.
        """
        entry = self._edges.get(c)
        if entry is None:
            entry = deque()
            self._edges[c] = entry
        if type(entry) is deque:
            entry.append((timestamp, b, action))
            self._num_edges += 1
            self._inserted_total += 1
            # Lazy window pruning at the insertion point keeps hot targets
            # tidy without a global sweep.
            self._drop_stale(c, entry, timestamp - self.retention)
            if (
                self.max_edges_per_target is not None
                and len(entry) > self.max_edges_per_target
            ):
                overflow = len(entry) - self.max_edges_per_target
                for _ in range(overflow):
                    entry.popleft()
                self._num_edges -= overflow
                self._evicted_total += overflow
            if self._ring and len(entry) >= self.promote_threshold:
                self._promote(c, entry)
            return
        # Ring path: identical append / window-prune / cap-evict sequence
        # over the columnar representation.
        entry.append(timestamp, b, self._encode_action(action))
        self._inserted_total += 1
        evicted = entry.drop_stale(timestamp - self.retention)
        cap = self.max_edges_per_target
        if cap is not None:
            while entry.count > cap:
                entry.popleft()
                evicted += 1
        self._num_edges += 1 - evicted
        self._evicted_total += evicted

    def insert_batch(self, batch, distinct_targets: bool = False) -> None:
        """Insert every edge of an :class:`~repro.core.batch.EventBatch`.

        Equivalent to calling :meth:`insert` once per event in batch order,
        but with the per-target work amortized: one dict lookup, one window
        prune, and one cap application per *distinct target* in the batch
        instead of per event.

        ``distinct_targets=True`` asserts the caller already knows no
        target repeats in the batch (an engine run), skipping the grouping
        pass entirely.

        The bulk per-target path is taken only when it is provably identical
        to the interleaved loop: the group cannot overflow the per-target
        cap mid-batch, and the group's timestamp skew stays within the
        retention window (both pruning mechanisms pop only from the old end,
        so under these conditions the final entry is the same suffix either
        way).  Groups violating either condition — pathological reordering
        or cap-overflowing floods — fall back to the exact per-event loop,
        still amortizing the dict lookup.
        """
        timestamps, actors, _targets, actions = batch.columns()
        if not timestamps:
            return
        targets = _targets
        edges = self._edges
        retention = self.retention
        cap = self.max_edges_per_target
        has_cap = cap is not None
        ring_backend = self._ring
        promote_threshold = self.promote_threshold
        inserted = 0
        evicted = 0

        if distinct_targets:
            # Same append/prune/cap block as the fallback loop below; both
            # must stay in sync with insert().  Kept inline: a shared
            # helper would cost one function call per event on the hottest
            # loop in the repo.
            for i, c in enumerate(targets):
                entry = edges.get(c)
                if entry is None:
                    entry = deque()
                    edges[c] = entry
                timestamp = timestamps[i]
                if type(entry) is deque:
                    entry.append((timestamp, actors[i], actions[i]))
                    inserted += 1
                    cutoff = timestamp - retention
                    # The just-appended entry survives its own cutoff, so
                    # the deque can never empty here.
                    while entry[0][0] < cutoff:
                        entry.popleft()
                        evicted += 1
                    while has_cap and len(entry) > cap:
                        # Normally at most one pop per append; the loop also
                        # repairs over-cap state inherited via
                        # clone_state_from from a differently-capped sibling.
                        entry.popleft()
                        evicted += 1
                    if ring_backend and len(entry) >= promote_threshold:
                        self._promote(c, entry)
                else:
                    entry.append(timestamp, actors[i], self._encode_action(actions[i]))
                    inserted += 1
                    evicted += entry.drop_stale(timestamp - retention)
                    while has_cap and entry.count > cap:
                        entry.popleft()
                        evicted += 1
            self._num_edges += inserted - evicted
            self._inserted_total += inserted
            self._evicted_total += evicted
            return

        # Group event indexes by target.  The overwhelmingly common case is
        # one event per target, so singleton groups stay bare ints and a
        # list is only allocated on the first repeat.
        groups: dict[UserId, int | list[int]] = {}
        for i, c in enumerate(targets):
            group = groups.get(c)
            if group is None:
                groups[c] = i
            elif type(group) is int:
                groups[c] = [group, i]
            else:
                group.append(i)

        for c, idxs in groups.items():
            entry = edges.get(c)
            if entry is None:
                entry = deque()
                edges[c] = entry
            if type(idxs) is int:
                # A singleton group is just one per-event insert; the exact
                # loop below handles it without a dedicated copy.
                idxs = (idxs,)
                bulk_safe = False
            else:
                m = len(idxs)
                group_ts = [timestamps[i] for i in idxs]
                t_max = max(group_ts)
                bulk_safe = (t_max - min(group_ts)) <= retention and (
                    cap is None or len(entry) + m <= cap
                )
            if bulk_safe:
                if type(entry) is deque:
                    entry.extend(
                        (timestamps[i], actors[i], actions[i]) for i in idxs
                    )
                    inserted += m
                    cutoff = t_max - retention
                    # bulk_safe guarantees the cap cannot trigger (pruning
                    # only shrinks the entry), so only the window pass is
                    # needed.
                    while entry[0][0] < cutoff:
                        entry.popleft()
                        evicted += 1
                    if ring_backend and len(entry) >= promote_threshold:
                        self._promote(c, entry)
                else:
                    # Ring-aware bulk write: gather the group's columns from
                    # the batch with one fancy index per column and land
                    # them with slice assignments instead of m scalar
                    # appends — the hot-target flood case this grouping
                    # exists for.
                    encode = self._encode_action
                    codes = np.fromiter(
                        (encode(actions[i]) for i in idxs),
                        dtype=np.uint16,
                        count=m,
                    )
                    entry.extend(batch.timestamps[idxs], batch.actors[idxs], codes)
                    inserted += m
                    evicted += entry.drop_stale(t_max - retention)
            else:
                # Exact replica of the per-event insert loop for this
                # target (same block as the distinct_targets fast path
                # above — the two must stay in sync with insert()).
                for i in idxs:
                    timestamp = timestamps[i]
                    if type(entry) is deque:
                        entry.append((timestamp, actors[i], actions[i]))
                        inserted += 1
                        cutoff = timestamp - retention
                        while entry[0][0] < cutoff:
                            entry.popleft()
                            evicted += 1
                        if cap is not None and len(entry) > cap:
                            overflow = len(entry) - cap
                            for _ in range(overflow):
                                entry.popleft()
                            evicted += overflow
                        if ring_backend and len(entry) >= promote_threshold:
                            entry = self._promote(c, entry)
                    else:
                        entry.append(
                            timestamp, actors[i], self._encode_action(actions[i])
                        )
                        inserted += 1
                        evicted += entry.drop_stale(timestamp - retention)
                        while cap is not None and entry.count > cap:
                            entry.popleft()
                            evicted += 1

        self._num_edges += inserted - evicted
        self._inserted_total += inserted
        self._evicted_total += evicted

    def clone_state_from(self, other: "DynamicEdgeIndex") -> None:
        """Replace this index's contents with a deep copy of *other*'s.

        Used by replica resync: a recovering replica bootstraps its D from
        a healthy sibling before rejoining the stream.  Retention/cap
        configuration is not copied — only the stored edges, re-packed
        into *this* index's backend representation (a ring-backed clone of
        a list-backed sibling re-promotes hot targets, and vice versa).
        """
        self._edges = {}
        for c, entry in other._edges.items():
            copied = deque(entry)
            self._edges[c] = copied
            if self._ring and len(copied) >= self.promote_threshold:
                self._promote(c, copied)
        self._num_edges = other._num_edges
        self._inserted_total = other._inserted_total
        self._evicted_total = other._evicted_total

    def prune_expired(self, now: float) -> int:
        """Eagerly drop all entries older than ``now - retention``.

        Returns the number of edges removed.  The ingest pipeline calls this
        periodically to bound memory between bursts.  For the ring backend
        this sweep is also where cooled-off rings demote back to deques.
        """
        cutoff = now - self.retention
        removed = 0
        dead_targets: list[UserId] = []
        demote_below = self.promote_threshold // 2
        demotions: list[UserId] = []
        for c, entry in self._edges.items():
            if type(entry) is deque:
                removed += self._drop_stale(c, entry, cutoff, track_dead=False)
                if not entry:
                    dead_targets.append(c)
                continue
            dropped = entry.drop_stale(cutoff)
            removed += dropped
            self._num_edges -= dropped
            self._evicted_total += dropped
            if not entry.count:
                dead_targets.append(c)
            elif entry.count < demote_below:
                demotions.append(c)
        for c in dead_targets:
            del self._edges[c]
        for c in demotions:
            self._demote(c, self._edges[c])
        return removed

    def _drop_stale(
        self,
        c: UserId,
        entry: deque,
        cutoff: float,
        track_dead: bool = True,
    ) -> int:
        """Pop from the left while the head is older than *cutoff*."""
        removed = 0
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            removed += 1
        self._num_edges -= removed
        self._evicted_total += removed
        if track_dead and not entry:
            del self._edges[c]
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def fresh_sources(
        self,
        c: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """All B's with an edge to *c* within the last *tau* seconds.

        If the same B created several edges to *c* inside the window (an
        unfollow/refollow churn), only the most recent survives, so a single
        flapping account can never impersonate ``k`` distinct followers.
        Results are ordered by ascending timestamp.

        Args:
            c: the query target.
            now: the right edge of the freshness window.
            tau: window length; must not exceed the index's retention.
            action: when given, only edges inserted with this action tag
                count (action-filtered motifs); ``None`` accepts all.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(c)
        if not entry:
            return []
        cutoff = now - tau
        if type(entry) is not deque:
            ts, src, act = entry.fresh_arrays(now, cutoff, self._filter_code(action))
            table = self._action_table
            return [
                FreshEdge(source=b, timestamp=t, action=table[code])
                for t, b, code in zip(ts.tolist(), src.tolist(), act.tolist())
            ]
        if len(entry) == 1:
            # Fast path for the overwhelmingly common cold target.
            timestamp, b, edge_action = entry[0]
            if timestamp < cutoff or timestamp > now:
                return []
            if action is not None and edge_action is not action:
                return []
            return [FreshEdge(source=b, timestamp=timestamp, action=edge_action)]
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, b, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(b)
            if previous is None or timestamp > previous[0]:
                latest[b] = (timestamp, edge_action)
        return [
            FreshEdge(source=b, timestamp=t, action=edge_action)
            for b, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    def fresh_sources_multi(
        self,
        targets: Sequence[UserId],
        nows: Sequence[float],
        tau: float,
        action: object | None = None,
        min_count: int = 0,
        raw: bool = False,
    ) -> list[list[FreshEdge]] | list[list[tuple[float, UserId, object | None]]]:
        """Batched :meth:`fresh_sources`: one call for many ``(c, now)`` pairs.

        *targets* and *nows* are positionally-aligned parallel columns (one
        query per index).  Returns one fresh-source list per query, aligned
        the same way, with identical per-query semantics (latest edge per
        distinct B, ascending timestamp order, optional action filter).
        Validation and attribute lookups are paid once per batch instead of
        once per event, and queries with no fresh sources share one
        immutable empty result list (callers must not mutate results).

        ``min_count`` is a threshold hint: targets whose stored entry holds
        fewer than ``min_count`` edges are reported as having no fresh
        sources without scanning.  Since the fresh-source count can never
        exceed the stored-entry count, callers that discard results below
        ``min_count`` (the detector's ``k``) observe identical decisions —
        this is what lets the firehose's cold targets skip all per-event
        object construction.

        ``raw=True`` returns each fresh edge as its stored
        ``(timestamp, source, action)`` tuple instead of boxing a
        :class:`FreshEdge` — the allocation-free representation the batched
        detector consumes (same edges, same order).  Ring-backed hot
        targets go one step further and return a :class:`FreshColumns`
        (same edges as numpy columns; iterates/compares as the same
        tuples).
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        edges = self._edges
        empty = _NO_FRESH_SOURCES
        filter_code = self._filter_code(action)
        table = self._action_table
        results: list[list] = []
        append = results.append
        for c, now in zip(targets, nows):
            entry = edges.get(c)
            if entry is None or len(entry) < min_count or not entry:
                append(empty)
                continue
            cutoff = now - tau
            if type(entry) is not deque:
                # Columnar hot target: one vectorized select + dedup + sort.
                ts, src, act = entry.fresh_arrays(now, cutoff, filter_code)
                if not len(ts):
                    append(empty)
                elif raw:
                    # Stay columnar: boxing a tuple per edge here would eat
                    # the vectorized scan's entire win on viral targets.
                    append(FreshColumns(ts, src, act, table))
                else:
                    append(
                        [
                            FreshEdge(source=b, timestamp=t, action=table[code])
                            for t, b, code in zip(
                                ts.tolist(), src.tolist(), act.tolist()
                            )
                        ]
                    )
                continue
            if len(entry) == 1:
                head = entry[0]
                timestamp, b, edge_action = head
                if (
                    timestamp < cutoff
                    or timestamp > now
                    or (action is not None and edge_action is not action)
                ):
                    append(empty)
                elif raw:
                    append([head])
                else:
                    append(
                        [FreshEdge(source=b, timestamp=timestamp, action=edge_action)]
                    )
                continue
            latest: dict[UserId, tuple[float, object | None]] = {}
            for timestamp, b, edge_action in entry:
                if timestamp < cutoff or timestamp > now:
                    continue
                if action is not None and edge_action is not action:
                    continue
                previous = latest.get(b)
                if previous is None or timestamp > previous[0]:
                    latest[b] = (timestamp, edge_action)
            if raw:
                # Tuple order (t, b, action) sorts by (timestamp, source):
                # b is unique per entry, so the action field never compares.
                flat = [
                    (t, b, edge_action)
                    for b, (t, edge_action) in latest.items()
                ]
                flat.sort()
                append(flat)
            else:
                append(
                    [
                        FreshEdge(source=b, timestamp=t, action=edge_action)
                        for b, (t, edge_action) in sorted(
                            latest.items(), key=lambda item: (item[1][0], item[0])
                        )
                    ]
                )
        return results

    def targets(self) -> Iterable[UserId]:
        """All C's that currently have at least one stored edge."""
        return self._edges.keys()

    def entries(self, c: UserId) -> list[tuple[float, UserId, object | None]]:
        """The stored ``(timestamp, source, action)`` tuples of *c*, in
        arrival order — the backend-neutral view used by checkpointing."""
        entry = self._edges.get(c)
        if entry is None:
            return []
        return list(entry)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of C's with stored edges."""
        return len(self._edges)

    @property
    def num_edges(self) -> int:
        """Total stored edges across all targets."""
        return self._num_edges

    @property
    def num_hot_targets(self) -> int:
        """Number of targets currently in the columnar ring representation."""
        return sum(1 for entry in self._edges.values() if type(entry) is not deque)

    @property
    def inserted_total(self) -> int:
        """Lifetime count of inserted edges (survivors + evicted)."""
        return self._inserted_total

    @property
    def evicted_total(self) -> int:
        """Lifetime count of edges pruned by window or cap."""
        return self._evicted_total

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the stored entries.

        Each deque slot holds a ``(float, int)`` tuple: ~72 bytes of boxed
        payload plus a pointer — call it 88 bytes — and each target adds a
        dict slot plus container overhead (~180 bytes).  Ring-backed
        targets are charged their actual backing-array bytes instead.
        """
        total = len(self._edges) * 180
        for entry in self._edges.values():
            if type(entry) is deque:
                total += len(entry) * 88
            else:
                total += entry.nbytes() + 64
        return total


class DynamicSourceIndex:
    """The *augmented* dynamic structure: recent edges keyed by **source**.

    The paper's conclusion notes that additional motif programs "may need
    [the graph infrastructure] to be augmented to include other data
    structures".  D answers "who recently acted *on* C?"; this index
    answers the mirror question — "what did B recently act on?" — which
    source-counted motifs (e.g. follow-spree detection) require.

    Same pruning semantics as :class:`DynamicEdgeIndex`: a retention
    window enforced lazily plus an optional per-source cap.  (List-backed
    only — spree queries never scan entries hot enough to justify rings.)
    """

    def __init__(
        self,
        retention: float,
        max_edges_per_source: int | None = None,
    ) -> None:
        require_positive(retention, "retention")
        if max_edges_per_source is not None:
            require_positive(max_edges_per_source, "max_edges_per_source")
        self.retention = retention
        self.max_edges_per_source = max_edges_per_source
        self._edges: dict[UserId, deque[tuple[float, UserId, object | None]]] = {}
        self._num_edges = 0

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*."""
        entry = self._edges.get(b)
        if entry is None:
            entry = deque()
            self._edges[b] = entry
        entry.append((timestamp, c, action))
        self._num_edges += 1
        cutoff = timestamp - self.retention
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            self._num_edges -= 1
        if (
            self.max_edges_per_source is not None
            and len(entry) > self.max_edges_per_source
        ):
            overflow = len(entry) - self.max_edges_per_source
            for _ in range(overflow):
                entry.popleft()
            self._num_edges -= overflow

    def fresh_targets(
        self,
        b: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """Distinct targets *b* acted on within the last *tau* seconds.

        Mirrors :meth:`DynamicEdgeIndex.fresh_sources`: latest timestamp
        per distinct target, ascending-timestamp order, optional action
        filter.  ``FreshEdge.source`` carries the *target* id here.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(b)
        if not entry:
            return []
        cutoff = now - tau
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, c, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(c)
            if previous is None or timestamp > previous[0]:
                latest[c] = (timestamp, edge_action)
        return [
            FreshEdge(source=c, timestamp=t, action=edge_action)
            for c, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    @property
    def num_edges(self) -> int:
        """Total stored edges across all sources."""
        return self._num_edges

    @property
    def num_sources(self) -> int:
        """Number of B's with stored edges."""
        return len(self._edges)

    def memory_bytes(self) -> int:
        """Approximate heap footprint (same model as the target index)."""
        return self._num_edges * 88 + len(self._edges) * 180
