"""The paper's **D** structure: recent dynamic edges keyed by target.

D answers: *given C, which B's created an edge to C recently, and when?*
It absorbs the full live edge stream (every partition keeps a complete copy)
and is pruned aggressively — the paper notes memory pressure "can be
alleviated by pruning the D data structure to only retain the most recent
edges (since we desire timely results)".

Two pruning policies compose:

* a **time window** (``retention`` seconds) — edges older than the window
  can never satisfy the freshness constraint ``tau <= retention``, so they
  are dropped lazily on access and eagerly by :meth:`prune_expired`;
* a **per-target cap** (``max_edges_per_target``) — a viral C attracting
  millions of followers in a burst would otherwise grow its entry without
  bound; only the newest edges are kept.

Timestamps may arrive slightly out of order (real message queues reorder);
entries are kept in arrival order and freshness is always evaluated against
the stored timestamps, so modest reordering only costs a little laziness in
pruning, never correctness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graph.ids import UserId
from repro.util.validation import require_positive


@dataclass(frozen=True, slots=True)
class FreshEdge:
    """One recent ``B -> C`` edge as returned by freshness queries.

    ``action`` is an opaque tag (the library passes
    :class:`~repro.core.events.ActionType` values) used by action-filtered
    motifs; ``None`` for untagged inserts.
    """

    source: UserId
    timestamp: float
    action: object | None = None


#: Shared empty result for :meth:`DynamicEdgeIndex.fresh_sources_multi`
#: queries with no fresh sources; never mutated.
_NO_FRESH_SOURCES: list = []


class DynamicEdgeIndex:
    """Map ``C -> recent (B, timestamp) entries``, pruned by window and cap."""

    def __init__(
        self,
        retention: float,
        max_edges_per_target: int | None = None,
    ) -> None:
        """Create an empty index.

        Args:
            retention: seconds an edge stays queryable.  Must cover the
                largest freshness window ``tau`` any detector will ask for.
            max_edges_per_target: optional hard cap per C; the oldest
                entries are evicted first.
        """
        require_positive(retention, "retention")
        if max_edges_per_target is not None:
            require_positive(max_edges_per_target, "max_edges_per_target")
        self.retention = retention
        self.max_edges_per_target = max_edges_per_target
        self._edges: dict[UserId, deque[tuple[float, UserId, object | None]]] = {}
        self._num_edges = 0
        self._inserted_total = 0
        self._evicted_total = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*.

        ``action`` optionally tags the edge with what kind of user action
        created it, so action-filtered motifs (e.g. co-retweet) can query
        only their own edge type.
        """
        entry = self._edges.get(c)
        if entry is None:
            entry = deque()
            self._edges[c] = entry
        entry.append((timestamp, b, action))
        self._num_edges += 1
        self._inserted_total += 1
        # Lazy window pruning at the insertion point keeps hot targets tidy
        # without a global sweep.
        self._drop_stale(c, entry, timestamp - self.retention)
        if (
            self.max_edges_per_target is not None
            and len(entry) > self.max_edges_per_target
        ):
            overflow = len(entry) - self.max_edges_per_target
            for _ in range(overflow):
                entry.popleft()
            self._num_edges -= overflow
            self._evicted_total += overflow

    def insert_batch(self, batch, distinct_targets: bool = False) -> None:
        """Insert every edge of an :class:`~repro.core.batch.EventBatch`.

        Equivalent to calling :meth:`insert` once per event in batch order,
        but with the per-target work amortized: one dict lookup, one window
        prune, and one cap application per *distinct target* in the batch
        instead of per event.

        ``distinct_targets=True`` asserts the caller already knows no
        target repeats in the batch (an engine run), skipping the grouping
        pass entirely.

        The bulk per-target path is taken only when it is provably identical
        to the interleaved loop: the group cannot overflow the per-target
        cap mid-batch, and the group's timestamp skew stays within the
        retention window (both pruning mechanisms pop only from the old end,
        so under these conditions the final deque is the same suffix either
        way).  Groups violating either condition — pathological reordering
        or cap-overflowing floods — fall back to the exact per-event loop,
        still amortizing the dict lookup.
        """
        timestamps, actors, _targets, actions = batch.columns()
        if not timestamps:
            return
        targets = _targets
        edges = self._edges
        retention = self.retention
        cap = self.max_edges_per_target
        has_cap = cap is not None
        inserted = 0
        evicted = 0

        if distinct_targets:
            # Same append/prune/cap block as the fallback loop below; both
            # must stay in sync with insert().  Kept inline: a shared
            # helper would cost one function call per event on the hottest
            # loop in the repo.
            for i, c in enumerate(targets):
                entry = edges.get(c)
                if entry is None:
                    entry = deque()
                    edges[c] = entry
                timestamp = timestamps[i]
                entry.append((timestamp, actors[i], actions[i]))
                inserted += 1
                cutoff = timestamp - retention
                # The just-appended entry survives its own cutoff, so the
                # deque can never empty here.
                while entry[0][0] < cutoff:
                    entry.popleft()
                    evicted += 1
                while has_cap and len(entry) > cap:
                    # Normally at most one pop per append; the loop also
                    # repairs over-cap state inherited via clone_state_from
                    # from a differently-capped sibling.
                    entry.popleft()
                    evicted += 1
            self._num_edges += inserted - evicted
            self._inserted_total += inserted
            self._evicted_total += evicted
            return

        # Group event indexes by target.  The overwhelmingly common case is
        # one event per target, so singleton groups stay bare ints and a
        # list is only allocated on the first repeat.
        groups: dict[UserId, int | list[int]] = {}
        for i, c in enumerate(targets):
            group = groups.get(c)
            if group is None:
                groups[c] = i
            elif type(group) is int:
                groups[c] = [group, i]
            else:
                group.append(i)

        for c, idxs in groups.items():
            entry = edges.get(c)
            if entry is None:
                entry = deque()
                edges[c] = entry
            if type(idxs) is int:
                # A singleton group is just one per-event insert; the exact
                # loop below handles it without a dedicated copy.
                idxs = (idxs,)
                bulk_safe = False
            else:
                m = len(idxs)
                group_ts = [timestamps[i] for i in idxs]
                t_max = max(group_ts)
                bulk_safe = (t_max - min(group_ts)) <= retention and (
                    cap is None or len(entry) + m <= cap
                )
            if bulk_safe:
                entry.extend(
                    (timestamps[i], actors[i], actions[i]) for i in idxs
                )
                inserted += m
                cutoff = t_max - retention
                # bulk_safe guarantees the cap cannot trigger (pruning only
                # shrinks the entry), so only the window pass is needed.
                while entry[0][0] < cutoff:
                    entry.popleft()
                    evicted += 1
            else:
                # Exact replica of the per-event insert loop for this
                # target (same block as the distinct_targets fast path
                # above — the two must stay in sync with insert()).
                for i in idxs:
                    timestamp = timestamps[i]
                    entry.append((timestamp, actors[i], actions[i]))
                    inserted += 1
                    cutoff = timestamp - retention
                    while entry[0][0] < cutoff:
                        entry.popleft()
                        evicted += 1
                    if cap is not None and len(entry) > cap:
                        overflow = len(entry) - cap
                        for _ in range(overflow):
                            entry.popleft()
                        evicted += overflow

        self._num_edges += inserted - evicted
        self._inserted_total += inserted
        self._evicted_total += evicted

    def clone_state_from(self, other: "DynamicEdgeIndex") -> None:
        """Replace this index's contents with a deep copy of *other*'s.

        Used by replica resync: a recovering replica bootstraps its D from
        a healthy sibling before rejoining the stream.  Retention/cap
        configuration is not copied — only the stored edges.
        """
        self._edges = {c: deque(entry) for c, entry in other._edges.items()}
        self._num_edges = other._num_edges
        self._inserted_total = other._inserted_total
        self._evicted_total = other._evicted_total

    def prune_expired(self, now: float) -> int:
        """Eagerly drop all entries older than ``now - retention``.

        Returns the number of edges removed.  The ingest pipeline calls this
        periodically to bound memory between bursts.
        """
        cutoff = now - self.retention
        removed = 0
        dead_targets: list[UserId] = []
        for c, entry in self._edges.items():
            removed += self._drop_stale(c, entry, cutoff, track_dead=False)
            if not entry:
                dead_targets.append(c)
        for c in dead_targets:
            del self._edges[c]
        return removed

    def _drop_stale(
        self,
        c: UserId,
        entry: deque[tuple[float, UserId, object | None]],
        cutoff: float,
        track_dead: bool = True,
    ) -> int:
        """Pop from the left while the head is older than *cutoff*."""
        removed = 0
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            removed += 1
        self._num_edges -= removed
        self._evicted_total += removed
        if track_dead and not entry:
            del self._edges[c]
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def fresh_sources(
        self,
        c: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """All B's with an edge to *c* within the last *tau* seconds.

        If the same B created several edges to *c* inside the window (an
        unfollow/refollow churn), only the most recent survives, so a single
        flapping account can never impersonate ``k`` distinct followers.
        Results are ordered by ascending timestamp.

        Args:
            c: the query target.
            now: the right edge of the freshness window.
            tau: window length; must not exceed the index's retention.
            action: when given, only edges inserted with this action tag
                count (action-filtered motifs); ``None`` accepts all.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(c)
        if not entry:
            return []
        cutoff = now - tau
        if len(entry) == 1:
            # Fast path for the overwhelmingly common cold target.
            timestamp, b, edge_action = entry[0]
            if timestamp < cutoff or timestamp > now:
                return []
            if action is not None and edge_action is not action:
                return []
            return [FreshEdge(source=b, timestamp=timestamp, action=edge_action)]
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, b, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(b)
            if previous is None or timestamp > previous[0]:
                latest[b] = (timestamp, edge_action)
        return [
            FreshEdge(source=b, timestamp=t, action=edge_action)
            for b, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    def fresh_sources_multi(
        self,
        targets: Sequence[UserId],
        nows: Sequence[float],
        tau: float,
        action: object | None = None,
        min_count: int = 0,
        raw: bool = False,
    ) -> list[list[FreshEdge]] | list[list[tuple[float, UserId, object | None]]]:
        """Batched :meth:`fresh_sources`: one call for many ``(c, now)`` pairs.

        *targets* and *nows* are positionally-aligned parallel columns (one
        query per index).  Returns one fresh-source list per query, aligned
        the same way, with identical per-query semantics (latest edge per
        distinct B, ascending timestamp order, optional action filter).
        Validation and attribute lookups are paid once per batch instead of
        once per event, and queries with no fresh sources share one
        immutable empty result list (callers must not mutate results).

        ``min_count`` is a threshold hint: targets whose stored entry holds
        fewer than ``min_count`` edges are reported as having no fresh
        sources without scanning.  Since the fresh-source count can never
        exceed the stored-entry count, callers that discard results below
        ``min_count`` (the detector's ``k``) observe identical decisions —
        this is what lets the firehose's cold targets skip all per-event
        object construction.

        ``raw=True`` returns each fresh edge as its stored
        ``(timestamp, source, action)`` tuple instead of boxing a
        :class:`FreshEdge` — the allocation-free representation the batched
        detector consumes (same edges, same order).
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        edges = self._edges
        empty = _NO_FRESH_SOURCES
        results: list[list] = []
        append = results.append
        for c, now in zip(targets, nows):
            entry = edges.get(c)
            if entry is None or len(entry) < min_count or not entry:
                append(empty)
                continue
            cutoff = now - tau
            if len(entry) == 1:
                head = entry[0]
                timestamp, b, edge_action = head
                if (
                    timestamp < cutoff
                    or timestamp > now
                    or (action is not None and edge_action is not action)
                ):
                    append(empty)
                elif raw:
                    append([head])
                else:
                    append(
                        [FreshEdge(source=b, timestamp=timestamp, action=edge_action)]
                    )
                continue
            latest: dict[UserId, tuple[float, object | None]] = {}
            for timestamp, b, edge_action in entry:
                if timestamp < cutoff or timestamp > now:
                    continue
                if action is not None and edge_action is not action:
                    continue
                previous = latest.get(b)
                if previous is None or timestamp > previous[0]:
                    latest[b] = (timestamp, edge_action)
            if raw:
                # Tuple order (t, b, action) sorts by (timestamp, source):
                # b is unique per entry, so the action field never compares.
                flat = [
                    (t, b, edge_action)
                    for b, (t, edge_action) in latest.items()
                ]
                flat.sort()
                append(flat)
            else:
                append(
                    [
                        FreshEdge(source=b, timestamp=t, action=edge_action)
                        for b, (t, edge_action) in sorted(
                            latest.items(), key=lambda item: (item[1][0], item[0])
                        )
                    ]
                )
        return results

    def targets(self) -> Iterable[UserId]:
        """All C's that currently have at least one stored edge."""
        return self._edges.keys()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of C's with stored edges."""
        return len(self._edges)

    @property
    def num_edges(self) -> int:
        """Total stored edges across all targets."""
        return self._num_edges

    @property
    def inserted_total(self) -> int:
        """Lifetime count of inserted edges (survivors + evicted)."""
        return self._inserted_total

    @property
    def evicted_total(self) -> int:
        """Lifetime count of edges pruned by window or cap."""
        return self._evicted_total

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the stored entries.

        Each deque slot holds a ``(float, int)`` tuple: ~72 bytes of boxed
        payload plus a pointer — call it 88 bytes — and each target adds a
        dict slot plus deque overhead (~180 bytes).
        """
        return self._num_edges * 88 + len(self._edges) * 180


class DynamicSourceIndex:
    """The *augmented* dynamic structure: recent edges keyed by **source**.

    The paper's conclusion notes that additional motif programs "may need
    [the graph infrastructure] to be augmented to include other data
    structures".  D answers "who recently acted *on* C?"; this index
    answers the mirror question — "what did B recently act on?" — which
    source-counted motifs (e.g. follow-spree detection) require.

    Same pruning semantics as :class:`DynamicEdgeIndex`: a retention
    window enforced lazily plus an optional per-source cap.
    """

    def __init__(
        self,
        retention: float,
        max_edges_per_source: int | None = None,
    ) -> None:
        require_positive(retention, "retention")
        if max_edges_per_source is not None:
            require_positive(max_edges_per_source, "max_edges_per_source")
        self.retention = retention
        self.max_edges_per_source = max_edges_per_source
        self._edges: dict[UserId, deque[tuple[float, UserId, object | None]]] = {}
        self._num_edges = 0

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*."""
        entry = self._edges.get(b)
        if entry is None:
            entry = deque()
            self._edges[b] = entry
        entry.append((timestamp, c, action))
        self._num_edges += 1
        cutoff = timestamp - self.retention
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            self._num_edges -= 1
        if (
            self.max_edges_per_source is not None
            and len(entry) > self.max_edges_per_source
        ):
            overflow = len(entry) - self.max_edges_per_source
            for _ in range(overflow):
                entry.popleft()
            self._num_edges -= overflow

    def fresh_targets(
        self,
        b: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """Distinct targets *b* acted on within the last *tau* seconds.

        Mirrors :meth:`DynamicEdgeIndex.fresh_sources`: latest timestamp
        per distinct target, ascending-timestamp order, optional action
        filter.  ``FreshEdge.source`` carries the *target* id here.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(b)
        if not entry:
            return []
        cutoff = now - tau
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, c, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(c)
            if previous is None or timestamp > previous[0]:
                latest[c] = (timestamp, edge_action)
        return [
            FreshEdge(source=c, timestamp=t, action=edge_action)
            for c, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    @property
    def num_edges(self) -> int:
        """Total stored edges across all sources."""
        return self._num_edges

    @property
    def num_sources(self) -> int:
        """Number of B's with stored edges."""
        return len(self._edges)

    def memory_bytes(self) -> int:
        """Approximate heap footprint (same model as the target index)."""
        return self._num_edges * 88 + len(self._edges) * 180
