"""The paper's **D** structure: recent dynamic edges keyed by target.

D answers: *given C, which B's created an edge to C recently, and when?*
It absorbs the full live edge stream (every partition keeps a complete copy)
and is pruned aggressively — the paper notes memory pressure "can be
alleviated by pruning the D data structure to only retain the most recent
edges (since we desire timely results)".

Two pruning policies compose:

* a **time window** (``retention`` seconds) — edges older than the window
  can never satisfy the freshness constraint ``tau <= retention``, so they
  are dropped lazily on access and eagerly by :meth:`prune_expired`;
* a **per-target cap** (``max_edges_per_target``) — a viral C attracting
  millions of followers in a burst would otherwise grow its entry without
  bound; only the newest edges are kept.

Timestamps may arrive slightly out of order (real message queues reorder);
entries are kept in arrival order and freshness is always evaluated against
the stored timestamps, so modest reordering only costs a little laziness in
pruning, never correctness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.graph.ids import UserId
from repro.util.validation import require_positive


@dataclass(frozen=True, slots=True)
class FreshEdge:
    """One recent ``B -> C`` edge as returned by freshness queries.

    ``action`` is an opaque tag (the library passes
    :class:`~repro.core.events.ActionType` values) used by action-filtered
    motifs; ``None`` for untagged inserts.
    """

    source: UserId
    timestamp: float
    action: object | None = None


class DynamicEdgeIndex:
    """Map ``C -> recent (B, timestamp) entries``, pruned by window and cap."""

    def __init__(
        self,
        retention: float,
        max_edges_per_target: int | None = None,
    ) -> None:
        """Create an empty index.

        Args:
            retention: seconds an edge stays queryable.  Must cover the
                largest freshness window ``tau`` any detector will ask for.
            max_edges_per_target: optional hard cap per C; the oldest
                entries are evicted first.
        """
        require_positive(retention, "retention")
        if max_edges_per_target is not None:
            require_positive(max_edges_per_target, "max_edges_per_target")
        self.retention = retention
        self.max_edges_per_target = max_edges_per_target
        self._edges: dict[UserId, deque[tuple[float, UserId, object | None]]] = {}
        self._num_edges = 0
        self._inserted_total = 0
        self._evicted_total = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*.

        ``action`` optionally tags the edge with what kind of user action
        created it, so action-filtered motifs (e.g. co-retweet) can query
        only their own edge type.
        """
        entry = self._edges.get(c)
        if entry is None:
            entry = deque()
            self._edges[c] = entry
        entry.append((timestamp, b, action))
        self._num_edges += 1
        self._inserted_total += 1
        # Lazy window pruning at the insertion point keeps hot targets tidy
        # without a global sweep.
        self._drop_stale(c, entry, timestamp - self.retention)
        if (
            self.max_edges_per_target is not None
            and len(entry) > self.max_edges_per_target
        ):
            overflow = len(entry) - self.max_edges_per_target
            for _ in range(overflow):
                entry.popleft()
            self._num_edges -= overflow
            self._evicted_total += overflow

    def clone_state_from(self, other: "DynamicEdgeIndex") -> None:
        """Replace this index's contents with a deep copy of *other*'s.

        Used by replica resync: a recovering replica bootstraps its D from
        a healthy sibling before rejoining the stream.  Retention/cap
        configuration is not copied — only the stored edges.
        """
        self._edges = {c: deque(entry) for c, entry in other._edges.items()}
        self._num_edges = other._num_edges
        self._inserted_total = other._inserted_total
        self._evicted_total = other._evicted_total

    def prune_expired(self, now: float) -> int:
        """Eagerly drop all entries older than ``now - retention``.

        Returns the number of edges removed.  The ingest pipeline calls this
        periodically to bound memory between bursts.
        """
        cutoff = now - self.retention
        removed = 0
        dead_targets: list[UserId] = []
        for c, entry in self._edges.items():
            removed += self._drop_stale(c, entry, cutoff, track_dead=False)
            if not entry:
                dead_targets.append(c)
        for c in dead_targets:
            del self._edges[c]
        return removed

    def _drop_stale(
        self,
        c: UserId,
        entry: deque[tuple[float, UserId, object | None]],
        cutoff: float,
        track_dead: bool = True,
    ) -> int:
        """Pop from the left while the head is older than *cutoff*."""
        removed = 0
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            removed += 1
        self._num_edges -= removed
        self._evicted_total += removed
        if track_dead and not entry:
            del self._edges[c]
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def fresh_sources(
        self,
        c: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """All B's with an edge to *c* within the last *tau* seconds.

        If the same B created several edges to *c* inside the window (an
        unfollow/refollow churn), only the most recent survives, so a single
        flapping account can never impersonate ``k`` distinct followers.
        Results are ordered by ascending timestamp.

        Args:
            c: the query target.
            now: the right edge of the freshness window.
            tau: window length; must not exceed the index's retention.
            action: when given, only edges inserted with this action tag
                count (action-filtered motifs); ``None`` accepts all.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(c)
        if not entry:
            return []
        cutoff = now - tau
        if len(entry) == 1:
            # Fast path for the overwhelmingly common cold target.
            timestamp, b, edge_action = entry[0]
            if timestamp < cutoff or timestamp > now:
                return []
            if action is not None and edge_action is not action:
                return []
            return [FreshEdge(source=b, timestamp=timestamp, action=edge_action)]
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, b, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(b)
            if previous is None or timestamp > previous[0]:
                latest[b] = (timestamp, edge_action)
        return [
            FreshEdge(source=b, timestamp=t, action=edge_action)
            for b, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    def targets(self) -> Iterable[UserId]:
        """All C's that currently have at least one stored edge."""
        return self._edges.keys()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of C's with stored edges."""
        return len(self._edges)

    @property
    def num_edges(self) -> int:
        """Total stored edges across all targets."""
        return self._num_edges

    @property
    def inserted_total(self) -> int:
        """Lifetime count of inserted edges (survivors + evicted)."""
        return self._inserted_total

    @property
    def evicted_total(self) -> int:
        """Lifetime count of edges pruned by window or cap."""
        return self._evicted_total

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the stored entries.

        Each deque slot holds a ``(float, int)`` tuple: ~72 bytes of boxed
        payload plus a pointer — call it 88 bytes — and each target adds a
        dict slot plus deque overhead (~180 bytes).
        """
        return self._num_edges * 88 + len(self._edges) * 180


class DynamicSourceIndex:
    """The *augmented* dynamic structure: recent edges keyed by **source**.

    The paper's conclusion notes that additional motif programs "may need
    [the graph infrastructure] to be augmented to include other data
    structures".  D answers "who recently acted *on* C?"; this index
    answers the mirror question — "what did B recently act on?" — which
    source-counted motifs (e.g. follow-spree detection) require.

    Same pruning semantics as :class:`DynamicEdgeIndex`: a retention
    window enforced lazily plus an optional per-source cap.
    """

    def __init__(
        self,
        retention: float,
        max_edges_per_source: int | None = None,
    ) -> None:
        require_positive(retention, "retention")
        if max_edges_per_source is not None:
            require_positive(max_edges_per_source, "max_edges_per_source")
        self.retention = retention
        self.max_edges_per_source = max_edges_per_source
        self._edges: dict[UserId, deque[tuple[float, UserId, object | None]]] = {}
        self._num_edges = 0

    def insert(
        self,
        b: UserId,
        c: UserId,
        timestamp: float,
        action: object | None = None,
    ) -> None:
        """Record a live edge ``b -> c`` created at *timestamp*."""
        entry = self._edges.get(b)
        if entry is None:
            entry = deque()
            self._edges[b] = entry
        entry.append((timestamp, c, action))
        self._num_edges += 1
        cutoff = timestamp - self.retention
        while entry and entry[0][0] < cutoff:
            entry.popleft()
            self._num_edges -= 1
        if (
            self.max_edges_per_source is not None
            and len(entry) > self.max_edges_per_source
        ):
            overflow = len(entry) - self.max_edges_per_source
            for _ in range(overflow):
                entry.popleft()
            self._num_edges -= overflow

    def fresh_targets(
        self,
        b: UserId,
        now: float,
        tau: float,
        action: object | None = None,
    ) -> list[FreshEdge]:
        """Distinct targets *b* acted on within the last *tau* seconds.

        Mirrors :meth:`DynamicEdgeIndex.fresh_sources`: latest timestamp
        per distinct target, ascending-timestamp order, optional action
        filter.  ``FreshEdge.source`` carries the *target* id here.
        """
        require_positive(tau, "tau")
        if tau > self.retention:
            raise ValueError(
                f"tau={tau} exceeds retention={self.retention}; "
                "fresh edges may already have been pruned"
            )
        entry = self._edges.get(b)
        if not entry:
            return []
        cutoff = now - tau
        latest: dict[UserId, tuple[float, object | None]] = {}
        for timestamp, c, edge_action in entry:
            if timestamp < cutoff or timestamp > now:
                continue
            if action is not None and edge_action is not action:
                continue
            previous = latest.get(c)
            if previous is None or timestamp > previous[0]:
                latest[c] = (timestamp, edge_action)
        return [
            FreshEdge(source=c, timestamp=t, action=edge_action)
            for c, (t, edge_action) in sorted(
                latest.items(), key=lambda item: (item[1][0], item[0])
            )
        ]

    @property
    def num_edges(self) -> int:
        """Total stored edges across all sources."""
        return self._num_edges

    @property
    def num_sources(self) -> int:
        """Number of B's with stored edges."""
        return len(self._edges)

    def memory_bytes(self) -> int:
        """Approximate heap footprint (same model as the target index)."""
        return self._num_edges * 88 + len(self._edges) * 180
