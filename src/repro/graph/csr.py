"""Compressed sparse row (CSR) adjacency for bulk full-graph operations.

The online path uses :class:`~repro.graph.static_index.StaticFollowerIndex`
(hash-of-sorted-arrays, cheap point lookups).  Offline consumers — the batch
ground-truth detector, the two-hop baseline, and the graph generators — sweep
whole graphs, where a numpy CSR layout is both smaller and much faster to
traverse.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.graph.ids import UserId
from repro.util.validation import require


def pack_rows(
    rows: Mapping[int, Sequence[int]],
) -> tuple[list[int], np.ndarray, np.ndarray]:
    """Pack keyed adjacency rows into one contiguous int64 arena.

    The CSR-style building block shared by full-graph CSR construction and
    the columnar S backend: every row is laid out back-to-back in a single
    ``int64`` arena, with an offsets table such that row ``i`` occupies
    ``arena[offsets[i]:offsets[i + 1]]``.  Row *values* are stored exactly
    as given (callers own sorting/dedup); row *order* follows the mapping's
    iteration order.

    Returns ``(keys, offsets, arena)`` where ``keys[i]`` is the key whose
    row is the ``i``-th slice.
    """
    keys = list(rows)
    offsets = np.zeros(len(keys) + 1, dtype=np.int64)
    for i, key in enumerate(keys):
        offsets[i + 1] = offsets[i] + len(rows[key])
    total = int(offsets[-1])
    arena = np.empty(total, dtype=np.int64)
    for i, key in enumerate(keys):
        arena[int(offsets[i]) : int(offsets[i + 1])] = rows[key]
    return keys, offsets, arena


class CsrGraph:
    """Immutable directed graph in CSR form (out-adjacency, sorted)."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        """Wrap prebuilt CSR arrays; prefer :meth:`from_edges`.

        Args:
            indptr: int64 array of length ``num_nodes + 1``.
            indices: int64 array of destination ids; the slice
                ``indices[indptr[v]:indptr[v + 1]]`` must be sorted.
        """
        require(indptr.ndim == 1 and indices.ndim == 1, "CSR arrays must be 1-D")
        require(len(indptr) >= 1, "indptr must have at least one entry")
        require(
            int(indptr[-1]) == len(indices),
            "indptr[-1] must equal len(indices)",
        )
        self._indptr = indptr
        self._indices = indices

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[UserId, UserId]],
        num_nodes: int | None = None,
    ) -> "CsrGraph":
        """Build from ``(src, dst)`` pairs; duplicates collapsed.

        Args:
            edges: directed edge pairs.
            num_nodes: total vertex count; inferred from the max id if
                omitted (isolated tail vertices then need it explicitly).
        """
        edge_list = list(edges)
        if not edge_list:
            size = num_nodes if num_nodes is not None else 0
            return cls(np.zeros(size + 1, dtype=np.int64), np.empty(0, np.int64))
        src = np.fromiter((e[0] for e in edge_list), np.int64, len(edge_list))
        dst = np.fromiter((e[1] for e in edge_list), np.int64, len(edge_list))
        inferred = int(max(src.max(), dst.max())) + 1
        size = inferred if num_nodes is None else num_nodes
        require(size >= inferred, f"num_nodes={size} too small for ids up to {inferred - 1}")
        # Sort by (src, dst), then drop duplicate pairs.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        keep = np.ones(len(src), dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
        counts = np.bincount(src, minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    @classmethod
    def from_arrays(
        cls, src: np.ndarray, dst: np.ndarray, num_nodes: int | None = None
    ) -> "CsrGraph":
        """Build from aligned ``int64`` edge columns; duplicates collapsed.

        The columnar twin of :meth:`from_edges` — same lexsort + dedup +
        bincount construction on arrays the caller already holds, so the
        chunked graph generator never boxes an edge list.
        """
        require(len(src) == len(dst), "src and dst must be aligned")
        if len(src) == 0:
            size = num_nodes if num_nodes is not None else 0
            return cls(np.zeros(size + 1, dtype=np.int64), np.empty(0, np.int64))
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        inferred = int(max(src.max(), dst.max())) + 1
        size = inferred if num_nodes is None else num_nodes
        require(size >= inferred, f"num_nodes={size} too small for ids up to {inferred - 1}")
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        keep = np.ones(len(src), dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
        counts = np.bincount(src, minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Vertex count (including isolated vertices)."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Directed edge count after dedup."""
        return len(self._indices)

    def neighbors(self, v: UserId) -> np.ndarray:
        """Sorted out-neighbors of *v* as a read-only array view."""
        self._check_node(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def out_degree(self, v: UserId) -> int:
        """Number of out-edges of *v*."""
        self._check_node(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, as an int64 array."""
        return np.diff(self._indptr)

    def has_edge(self, src: UserId, dst: UserId) -> bool:
        """True iff the directed edge ``src -> dst`` exists."""
        row = self.neighbors(src)
        position = int(np.searchsorted(row, dst))
        return position < len(row) and int(row[position]) == dst

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all ``(src, dst)`` pairs in sorted order."""
        for v in range(self.num_nodes):
            for dst in self.neighbors(v):
                yield v, int(dst)

    def transposed(self) -> "CsrGraph":
        """Return the graph with every edge reversed (in-adjacency view)."""
        src_rep = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self.out_degrees()
        )
        order = np.lexsort((src_rep, self._indices))
        new_src = self._indices[order]
        new_dst = src_rep[order]
        counts = np.bincount(new_src, minlength=self.num_nodes)
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrGraph(indptr, new_dst)

    def _check_node(self, v: UserId) -> None:
        if not 0 <= v < self.num_nodes:
            raise IndexError(f"vertex {v} out of range [0, {self.num_nodes})")
