"""The paper's **S** structure: inverse follower adjacency, sorted & static.

S answers one query: *given B, which A's follow B?* — with the A lists kept
sorted so the detector can intersect them cheaply.  Mirroring production:

* S is **bulk loaded** from an offline snapshot of the ``A -> B`` follow
  edges (the paper computes these offline "to take advantage of rich
  features to prune the graph") and is immutable afterwards;
* each user's *influencer list* (the B's an A follows) may be truncated to
  the top-``influencer_limit`` entries by weight, which both improves
  candidate quality and bounds S's memory;
* a partition holds only the A's it owns, so construction accepts an
  ``include_source`` predicate.

Two interchangeable storage backends implement the same query API:

* :class:`StaticFollowerIndex` (``packed``) — one ``array('q')`` buffer per
  B, the closest pure-Python analogue to primitive arrays;
* :class:`CsrFollowerIndex` (``csr``) — a single ``int64`` numpy arena plus
  an offsets table (CSR-style, see :func:`repro.graph.csr.pack_rows`), so
  ``followers_of`` is a true zero-copy arena slice with no per-key buffer
  object.  An append-and-compact overlay keeps incremental graph updates
  possible without giving up the contiguous layout.

Both expose ``follower_array(b)`` — a zero-copy ``int64`` numpy view of B's
follower list (``None`` when empty) — which is what the batched detector
consumes.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.graph.csr import pack_rows
from repro.graph.ids import UserId
from repro.util.memory import approx_bytes_of_int_list
from repro.util.validation import require_positive

#: Selectable S storage backends (``build_follower_snapshot(backend=...)``).
S_BACKENDS = ("packed", "csr")


def _with_npz_suffix(path: Path) -> Path:
    """*path* with the ``.npz`` suffix ``np.savez`` would write to."""
    if path.name.endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def invert_follow_edges(
    edges: Iterable[tuple[UserId, UserId]],
    influencer_limit: int | None = None,
    edge_weight: Callable[[UserId, UserId], float] | None = None,
    include_source: Callable[[UserId], bool] | None = None,
) -> dict[UserId, list[UserId]]:
    """Invert ``(A, B)`` follow edges into ``B -> sorted distinct A's``.

    The shared bulk-load front half of both S backends: group by A, apply
    the paper's per-user influencer cap, restrict to a partition's A's,
    then invert to the B-keyed layout with each follower list sorted.

    Args:
        edges: iterable of ``(A, B)`` pairs; duplicates are collapsed.
        influencer_limit: if given, each A keeps only its
            ``influencer_limit`` highest-weight B's before inversion.
        edge_weight: scoring function for the influencer cap; defaults to
            uniform weights, which makes truncation arbitrary-but-
            deterministic (lowest B ids win ties).
        include_source: partition predicate — only A's for which it
            returns True are loaded (``None`` keeps everyone).
    """
    if influencer_limit is not None:
        require_positive(influencer_limit, "influencer_limit")

    followings: dict[UserId, set[UserId]] = {}
    for a, b in edges:
        if include_source is not None and not include_source(a):
            continue
        followings.setdefault(a, set()).add(b)

    inverse: dict[UserId, list[UserId]] = {}
    for a, b_set in followings.items():
        kept: Iterable[UserId] = b_set
        if influencer_limit is not None and len(b_set) > influencer_limit:
            if edge_weight is None:
                kept = sorted(b_set)[:influencer_limit]
            else:
                kept = sorted(
                    b_set, key=lambda b: (-edge_weight(a, b), b)
                )[:influencer_limit]
        for b in kept:
            inverse.setdefault(b, []).append(a)
    for a_list in inverse.values():
        a_list.sort()
    return inverse


class StaticFollowerIndex:
    """Immutable map ``B -> sorted packed array of A's that follow B``."""

    backend = "packed"

    def __init__(self, followers: Mapping[UserId, array]) -> None:
        """Wrap an already-built mapping; prefer :meth:`from_follow_edges`.

        Args:
            followers: mapping from followed account ``B`` to a sorted
                ``array('q')`` of follower ids.  The mapping is used as-is
                (not copied); callers hand over ownership.
        """
        self._followers = dict(followers)
        self._num_edges = sum(len(a_list) for a_list in self._followers.values())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_follow_edges(
        cls,
        edges: Iterable[tuple[UserId, UserId]],
        influencer_limit: int | None = None,
        edge_weight: Callable[[UserId, UserId], float] | None = None,
        include_source: Callable[[UserId], bool] | None = None,
    ) -> "StaticFollowerIndex":
        """Bulk-load S from ``(A, B)`` follow edges (*A follows B*).

        See :func:`invert_follow_edges` for the argument semantics.
        """
        inverse = invert_follow_edges(
            edges, influencer_limit, edge_weight, include_source
        )
        packed = {b: array("q", a_list) for b, a_list in inverse.items()}
        return cls(packed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def followers_of(self, b: UserId) -> array:
        """Sorted follower ids of *b* (empty array if unknown)."""
        result = self._followers.get(b)
        if result is None:
            return _EMPTY
        return result

    def follower_array(self, b: UserId) -> np.ndarray | None:
        """Sorted follower ids of *b* as a zero-copy int64 numpy view.

        Returns ``None`` when *b* has no loaded followers — the batched
        detector's memo-friendly contract (see
        :meth:`~repro.core.diamond.DiamondDetector.process_batch`).
        """
        a_list = self._followers.get(b)
        if not a_list:
            return None
        return np.frombuffer(a_list, dtype=np.int64)

    def has_edge(self, a: UserId, b: UserId) -> bool:
        """True iff *a* follows *b* in the loaded snapshot (binary search)."""
        a_list = self._followers.get(b)
        if not a_list:
            return False
        position = bisect_left(a_list, a)
        return position < len(a_list) and a_list[position] == a

    def __contains__(self, b: UserId) -> bool:
        return b in self._followers

    def sources(self) -> Iterable[UserId]:
        """All B's with at least one loaded follower."""
        return self._followers.keys()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of distinct B's in the index."""
        return len(self._followers)

    @property
    def num_edges(self) -> int:
        """Total loaded ``A -> B`` edges."""
        return self._num_edges

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the packed adjacency lists."""
        total = 0
        for a_list in self._followers.values():
            total += approx_bytes_of_int_list(a_list)
        # Dict slots: key pointer + value pointer + hash, ~100B/entry is a
        # fair CPython estimate including the boxed key.
        total += len(self._followers) * 100
        return total

    def degree_histogram(self) -> dict[int, int]:
        """Map ``follower-count -> number of B's with that count``."""
        histogram: dict[int, int] = {}
        for a_list in self._followers.values():
            degree = len(a_list)
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram


class CsrFollowerIndex:
    """CSR-arena S backend: all follower lists in one contiguous int64 array.

    Per-B state shrinks to one dict slot holding a row number; the follower
    ids themselves live back-to-back in a single numpy arena, so

    * ``followers_of`` / ``follower_array`` return zero-copy arena slices
      (no per-key buffer object, no conversion on the batched hot path);
    * memory per edge is exactly 8 bytes plus one offsets slot per B.

    The arena is immutable, matching the paper's periodically-bulk-loaded
    S — but incremental updates stay possible through an **append-and-
    compact** overlay: :meth:`append_follow_edges` buffers new edges per B,
    queries merge the overlay on demand (cached), and :meth:`compact`
    folds the overlay back into a fresh contiguous arena.  Appends auto-
    compact once the overlay reaches :attr:`compact_threshold` edges, so
    sustained update streams converge back to pure-arena layout.
    """

    backend = "csr"

    #: Default overlay size (edges) that triggers an automatic compact.
    DEFAULT_COMPACT_THRESHOLD = 4096

    def __init__(self, followers: Mapping[UserId, Sequence[UserId]]) -> None:
        """Pack an already-inverted ``B -> sorted distinct A's`` mapping.

        Prefer :meth:`from_follow_edges`, which also applies the influencer
        cap and partition predicate.
        """
        keys, offsets, arena = pack_rows(followers)
        self._arena = arena
        self._offsets = offsets
        #: Python-int row bounds for scalar lookups (a ``tolist`` upfront is
        #: far cheaper than boxing two numpy scalars per followers_of call).
        self._bounds: list[int] = offsets.tolist()
        self._rows: dict[UserId, int] = {b: i for i, b in enumerate(keys)}
        # Overlay state for the append-and-compact update path.
        self._pending: dict[UserId, set[UserId]] = {}
        self._pending_edges = 0
        self._merged_cache: dict[UserId, np.ndarray] = {}
        #: Overlay size (edges) that triggers an automatic :meth:`compact`.
        self.compact_threshold = self.DEFAULT_COMPACT_THRESHOLD

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_follow_edges(
        cls,
        edges: Iterable[tuple[UserId, UserId]],
        influencer_limit: int | None = None,
        edge_weight: Callable[[UserId, UserId], float] | None = None,
        include_source: Callable[[UserId], bool] | None = None,
    ) -> "CsrFollowerIndex":
        """Bulk-load S from ``(A, B)`` follow edges (*A follows B*).

        See :func:`invert_follow_edges` for the argument semantics.
        """
        return cls(
            invert_follow_edges(edges, influencer_limit, edge_weight, include_source)
        )

    # ------------------------------------------------------------------
    # Arena snapshots (near-instant periodic reloads)
    # ------------------------------------------------------------------

    def save_npz(self, path: str | Path) -> None:
        """Serialize ``(keys, offsets, arena)`` to an ``.npz`` snapshot.

        The production S is "loaded into the system periodically"; dumping
        the packed arena directly means the next load is three array reads
        instead of re-inverting (and re-sorting) every follow edge.  Any
        pending appended edges are compacted in first, so the snapshot is
        always pure-arena.  Uncompressed on purpose — load speed is the
        whole point, and int64 id columns barely compress anyway.
        """
        self.compact()
        keys = np.fromiter(self._rows, dtype=np.int64, count=len(self._rows))
        # np.savez appends ".npz" to suffixless paths on write; normalize
        # here so save_npz(p) / from_snapshot(p) round-trip on the same p.
        np.savez(
            _with_npz_suffix(Path(path)),
            keys=keys,
            offsets=self._offsets,
            arena=self._arena,
        )

    @classmethod
    def from_snapshot(cls, path: str | Path) -> "CsrFollowerIndex":
        """Load an index directly from a :meth:`save_npz` arena snapshot.

        The arrays are adopted as-is (no inversion, no sorting, no
        per-row packing), so reload cost is dominated by the ``.npz`` read
        itself.  Round-trips are exact: the loaded index serves identical
        queries to the one that was saved.
        """
        path = Path(path)
        if not path.exists():
            path = _with_npz_suffix(path)
        with np.load(path) as data:
            keys = data["keys"]
            offsets = data["offsets"].astype(np.int64, copy=False)
            arena = data["arena"].astype(np.int64, copy=False)
        index = cls.__new__(cls)
        index._arena = arena
        index._offsets = offsets
        index._bounds = offsets.tolist()
        index._rows = {b: i for i, b in enumerate(keys.tolist())}
        index._pending = {}
        index._pending_edges = 0
        index._merged_cache = {}
        index.compact_threshold = cls.DEFAULT_COMPACT_THRESHOLD
        return index

    # ------------------------------------------------------------------
    # Incremental updates (append-and-compact)
    # ------------------------------------------------------------------

    def append_follow_edges(self, edges: Iterable[tuple[UserId, UserId]]) -> int:
        """Add ``(A, B)`` follow edges on top of the loaded arena.

        Duplicates of already-loaded or already-appended edges are ignored.
        Queries observe appended edges immediately (merged on demand); the
        arena itself is only rewritten by :meth:`compact`, which runs
        automatically once the overlay holds :attr:`compact_threshold`
        edges.  Note the influencer cap is applied at bulk-load time only —
        callers streaming updates are expected to cap upstream, as the
        production offline pipeline does.

        **Not for indexes bound to live detectors**: the serving stack
        treats a bound S as immutable (detectors memoize follower arrays
        until ``rebind_static``), so appending to a bound index would let
        the batched and per-event paths observe different graphs.  Append
        on the loading side, then swap the index in via the engine's
        ``reload_static_index`` — the same discipline as any offline
        reload.

        Returns the number of genuinely new edges added.
        """
        added = 0
        for a, b in edges:
            if self._base_has_edge(a, b):
                continue
            pending = self._pending.get(b)
            if pending is None:
                pending = self._pending[b] = set()
            if a in pending:
                continue
            pending.add(a)
            self._pending_edges += 1
            self._merged_cache.pop(b, None)
            added += 1
        if self._pending_edges >= self.compact_threshold:
            self.compact()
        return added

    def compact(self) -> None:
        """Fold the append overlay back into one contiguous arena."""
        if not self._pending_edges:
            return
        rows: dict[UserId, Sequence[UserId]] = {}
        for b, row in self._rows.items():
            rows[b] = self._merged(b, row)
        for b in self._pending:
            if b not in rows:
                rows[b] = sorted(self._pending[b])
        keys, offsets, arena = pack_rows(rows)
        self._arena = arena
        self._offsets = offsets
        self._bounds = offsets.tolist()
        self._rows = {b: i for i, b in enumerate(keys)}
        self._pending = {}
        self._pending_edges = 0
        self._merged_cache = {}

    @property
    def pending_edges(self) -> int:
        """Appended edges not yet folded into the arena."""
        return self._pending_edges

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def followers_of(self, b: UserId) -> np.ndarray:
        """Sorted follower ids of *b* (empty array if unknown).

        A zero-copy arena slice unless *b* has pending appended edges, in
        which case a merged (and cached) array is returned.
        """
        row = self._rows.get(b)
        if self._pending:
            merged = self._lookup_merged(b, row)
            if merged is not None:
                return merged
        if row is None:
            return _EMPTY_NDARRAY
        bounds = self._bounds
        return self._arena[bounds[row] : bounds[row + 1]]

    def follower_array(self, b: UserId) -> np.ndarray | None:
        """Like :meth:`followers_of` but ``None`` when *b* is empty."""
        result = self.followers_of(b)
        if len(result):
            return result
        return None

    def has_edge(self, a: UserId, b: UserId) -> bool:
        """True iff *a* follows *b* (binary search in the arena slice)."""
        if self._base_has_edge(a, b):
            return True
        pending = self._pending.get(b)
        return pending is not None and a in pending

    def _base_has_edge(self, a: UserId, b: UserId) -> bool:
        row = self._rows.get(b)
        if row is None:
            return False
        bounds = self._bounds
        lo, hi = bounds[row], bounds[row + 1]
        position = bisect_left(self._arena, a, lo, hi)
        return position < hi and self._arena[position] == a

    def _lookup_merged(self, b: UserId, row: int | None) -> np.ndarray | None:
        """The merged base+overlay list for *b*, or None if no overlay."""
        merged = self._merged_cache.get(b)
        if merged is not None:
            return merged
        pending = self._pending.get(b)
        if pending is None:
            return None
        merged = self._merged(b, row)
        self._merged_cache[b] = merged
        return merged

    def _merged(self, b: UserId, row: int | None) -> np.ndarray:
        """Base slice of *b* merged with its pending appends, sorted."""
        pending = self._pending.get(b)
        if row is None:
            base = _EMPTY_NDARRAY
        else:
            bounds = self._bounds
            base = self._arena[bounds[row] : bounds[row + 1]]
        if not pending:
            return base
        extra = np.fromiter(pending, dtype=np.int64, count=len(pending))
        merged = np.concatenate((base, extra))
        merged.sort()
        return merged

    def __contains__(self, b: UserId) -> bool:
        return b in self._rows or b in self._pending

    def sources(self) -> Iterator[UserId]:
        """All B's with at least one loaded follower."""
        yield from self._rows
        for b in self._pending:
            if b not in self._rows:
                yield b

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of distinct B's in the index."""
        extra = sum(1 for b in self._pending if b not in self._rows)
        return len(self._rows) + extra

    @property
    def num_edges(self) -> int:
        """Total loaded ``A -> B`` edges (arena + overlay)."""
        return len(self._arena) + self._pending_edges

    def memory_bytes(self) -> int:
        """Approximate heap footprint of arena, offsets, and row dict."""
        total = int(self._arena.nbytes) + int(self._offsets.nbytes)
        # One boxed bound per offsets slot plus ~60B per row-dict entry
        # (key + small-int row value); far below packed's ~100B + buffer
        # object per B.
        total += len(self._bounds) * 32 + len(self._rows) * 60
        total += self._pending_edges * 80  # boxed overlay sets
        return total

    def degree_histogram(self) -> dict[int, int]:
        """Map ``follower-count -> number of B's with that count``."""
        histogram: dict[int, int] = {}
        if self._pending:
            for b in self.sources():
                degree = len(self.followers_of(b))
                histogram[degree] = histogram.get(degree, 0) + 1
            return histogram
        degrees = np.diff(self._offsets)
        for degree, count in zip(*np.unique(degrees, return_counts=True)):
            histogram[int(degree)] = int(count)
        return histogram


_EMPTY = array("q")
_EMPTY_NDARRAY = np.empty(0, dtype=np.int64)
_EMPTY_NDARRAY.setflags(write=False)
