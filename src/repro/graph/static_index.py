"""The paper's **S** structure: inverse follower adjacency, sorted & static.

S answers one query: *given B, which A's follow B?* — with the A lists kept
sorted so the detector can intersect them cheaply.  Mirroring production:

* S is **bulk loaded** from an offline snapshot of the ``A -> B`` follow
  edges (the paper computes these offline "to take advantage of rich
  features to prune the graph") and is immutable afterwards;
* each user's *influencer list* (the B's an A follows) may be truncated to
  the top-``influencer_limit`` entries by weight, which both improves
  candidate quality and bounds S's memory;
* a partition holds only the A's it owns, so construction accepts an
  ``include_source`` predicate.

Adjacency lists are packed into ``array('q')`` buffers (8 bytes per id), the
closest pure-Python analogue to the production system's primitive arrays.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

from repro.graph.ids import UserId
from repro.util.memory import approx_bytes_of_int_list
from repro.util.validation import require_positive


class StaticFollowerIndex:
    """Immutable map ``B -> sorted packed array of A's that follow B``."""

    def __init__(self, followers: Mapping[UserId, array]) -> None:
        """Wrap an already-built mapping; prefer :meth:`from_follow_edges`.

        Args:
            followers: mapping from followed account ``B`` to a sorted
                ``array('q')`` of follower ids.  The mapping is used as-is
                (not copied); callers hand over ownership.
        """
        self._followers = dict(followers)
        self._num_edges = sum(len(a_list) for a_list in self._followers.values())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_follow_edges(
        cls,
        edges: Iterable[tuple[UserId, UserId]],
        influencer_limit: int | None = None,
        edge_weight: Callable[[UserId, UserId], float] | None = None,
        include_source: Callable[[UserId], bool] | None = None,
    ) -> "StaticFollowerIndex":
        """Bulk-load S from ``(A, B)`` follow edges (*A follows B*).

        Args:
            edges: iterable of ``(A, B)`` pairs; duplicates are collapsed.
            influencer_limit: if given, each A keeps only its
                ``influencer_limit`` highest-weight B's before inversion
                (the paper's per-user influencer cap).
            edge_weight: scoring function for the influencer cap; defaults
                to uniform weights, which makes truncation arbitrary-but-
                deterministic (lowest B ids win ties).
            include_source: partition predicate — only A's for which it
                returns True are loaded (``None`` keeps everyone).
        """
        if influencer_limit is not None:
            require_positive(influencer_limit, "influencer_limit")

        # Group edges by A first so the influencer cap can be applied
        # per-user before inverting to the B-keyed layout.
        followings: dict[UserId, set[UserId]] = {}
        for a, b in edges:
            if include_source is not None and not include_source(a):
                continue
            followings.setdefault(a, set()).add(b)

        inverse: dict[UserId, list[UserId]] = {}
        for a, b_set in followings.items():
            kept: Iterable[UserId] = b_set
            if influencer_limit is not None and len(b_set) > influencer_limit:
                if edge_weight is None:
                    kept = sorted(b_set)[:influencer_limit]
                else:
                    kept = sorted(
                        b_set, key=lambda b: (-edge_weight(a, b), b)
                    )[:influencer_limit]
            for b in kept:
                inverse.setdefault(b, []).append(a)

        packed = {
            b: array("q", sorted(a_list)) for b, a_list in inverse.items()
        }
        return cls(packed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def followers_of(self, b: UserId) -> array:
        """Sorted follower ids of *b* (empty array if unknown)."""
        result = self._followers.get(b)
        if result is None:
            return _EMPTY
        return result

    def has_edge(self, a: UserId, b: UserId) -> bool:
        """True iff *a* follows *b* in the loaded snapshot (binary search)."""
        a_list = self._followers.get(b)
        if not a_list:
            return False
        position = bisect_left(a_list, a)
        return position < len(a_list) and a_list[position] == a

    def __contains__(self, b: UserId) -> bool:
        return b in self._followers

    def sources(self) -> Iterable[UserId]:
        """All B's with at least one loaded follower."""
        return self._followers.keys()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def num_targets(self) -> int:
        """Number of distinct B's in the index."""
        return len(self._followers)

    @property
    def num_edges(self) -> int:
        """Total loaded ``A -> B`` edges."""
        return self._num_edges

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the packed adjacency lists."""
        total = 0
        for a_list in self._followers.values():
            total += approx_bytes_of_int_list(a_list)
        # Dict slots: key pointer + value pointer + hash, ~100B/entry is a
        # fair CPython estimate including the boxed key.
        total += len(self._followers) * 100
        return total

    def degree_histogram(self) -> dict[int, int]:
        """Map ``follower-count -> number of B's with that count``."""
        histogram: dict[int, int] = {}
        for a_list in self._followers.values():
            degree = len(a_list)
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram


_EMPTY = array("q")
