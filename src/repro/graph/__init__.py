"""Graph substrates: the S and D structures from the paper plus kernels.

The production system keeps two in-memory structures per partition:

* :class:`~repro.graph.static_index.StaticFollowerIndex` — the paper's **S**:
  for each followed account ``B``, the sorted list of accounts ``A`` that
  follow it.  Static, bulk loaded from an offline snapshot, pruned by
  per-user influencer limits.
* :class:`~repro.graph.dynamic_index.DynamicEdgeIndex` — the paper's **D**:
  for each target account ``C``, the recent ``B -> C`` edges with creation
  timestamps, pruned by time window and size cap.

The sorted-list intersection kernels in :mod:`repro.graph.intersect` are the
inner loop of motif detection: the paper notes that keeping S's adjacency
lists sorted lets intersections "be implemented efficiently using well-known
algorithms".
"""

from repro.graph.ids import Edge, TimestampedEdge, UserId
from repro.graph.intersect import (
    intersect_galloping,
    intersect_hash,
    intersect_merge,
    intersect_many,
    intersect_sorted,
    k_overlap_arrays,
    k_overlap_heap,
    k_overlap_scancount,
    k_overlap,
)
from repro.graph.static_index import (
    S_BACKENDS,
    CsrFollowerIndex,
    StaticFollowerIndex,
)
from repro.graph.dynamic_index import (
    D_BACKENDS,
    DynamicEdgeIndex,
    DynamicSourceIndex,
    FreshEdge,
)
from repro.graph.csr import CsrGraph
from repro.graph.snapshot import GraphSnapshot, build_follower_snapshot

__all__ = [
    "Edge",
    "TimestampedEdge",
    "UserId",
    "intersect_galloping",
    "intersect_hash",
    "intersect_merge",
    "intersect_many",
    "intersect_sorted",
    "k_overlap_arrays",
    "k_overlap_heap",
    "k_overlap_scancount",
    "k_overlap",
    "S_BACKENDS",
    "D_BACKENDS",
    "StaticFollowerIndex",
    "CsrFollowerIndex",
    "DynamicEdgeIndex",
    "DynamicSourceIndex",
    "FreshEdge",
    "CsrGraph",
    "GraphSnapshot",
    "build_follower_snapshot",
]
