"""Sorted-list intersection and k-overlap kernels.

This is the inner loop of motif detection.  The paper keeps S's adjacency
lists sorted precisely so that "intersections can be implemented efficiently
using well-known algorithms"; this module provides those algorithms plus the
generalisation the production semantics needs.

Two problem shapes appear:

* **Intersection** of ``n`` sorted lists — the paper's worked example, where
  exactly ``k`` lists participate (every fresh ``B`` must contribute).
* **k-overlap**: given ``n >= k`` sorted lists, find the values present in at
  least ``k`` of them.  This is the production semantics ("if more than k of
  them follow an account C"): an ``A`` should be notified when *at least* k of
  its followings are among the fresh ``B``s, even if some fresh ``B``s are
  accounts ``A`` does not follow.

All functions take sorted sequences of distinct non-negative ints and return
sorted lists.  Benchmark E11 ablates the algorithm choices.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Sequence

import numpy as np

IdList = Sequence[int]


def intersect_merge(a: IdList, b: IdList) -> list[int]:
    """Linear two-pointer merge intersection: O(|a| + |b|).

    The algorithm of choice when the lists are of comparable length.
    """
    result: list[int] = []
    i, j = 0, 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        value_a, value_b = a[i], b[j]
        if value_a == value_b:
            result.append(value_a)
            i += 1
            j += 1
        elif value_a < value_b:
            i += 1
        else:
            j += 1
    return result


def intersect_galloping(a: IdList, b: IdList) -> list[int]:
    """Galloping (exponential-search) intersection: O(|a| log(|b| / |a|)).

    Wins when one list is much shorter than the other — e.g. intersecting a
    normal user's followers with a celebrity hub's millions of followers.
    The shorter list drives; for each of its values we gallop forward in the
    longer list.
    """
    if len(a) > len(b):
        a, b = b, a
    result: list[int] = []
    low = 0
    len_b = len(b)
    for value in a:
        # Exponential probe from the current frontier.
        step = 1
        high = low
        while high < len_b and b[high] < value:
            low = high
            high += step
            step <<= 1
        position = bisect_left(b, value, low, min(high + 1, len_b))
        if position < len_b and b[position] == value:
            result.append(value)
            low = position + 1
        else:
            low = position
        if low >= len_b:
            break
    return result


def intersect_hash(a: IdList, b: IdList) -> list[int]:
    """Hash-set intersection; ignores sortedness, output re-sorted.

    Included as the ablation's unsorted strawman: competitive for tiny
    inputs, but pays hashing and re-sorting costs at scale.
    """
    if len(a) > len(b):
        a, b = b, a
    lookup = set(b)
    return sorted(value for value in a if value in lookup)


#: Length-ratio beyond which :func:`intersect_sorted` switches from the
#: linear merge to galloping search.  Chosen by the E11 ablation: merge is
#: cheaper until the longer list is roughly an order of magnitude larger.
GALLOP_RATIO = 8.0


def intersect_sorted(a: IdList, b: IdList) -> list[int]:
    """Adaptive intersection: merge for balanced lists, galloping for skewed.

    This is the dispatch the engine uses in production paths.
    """
    if not len(a) or not len(b):
        # len() rather than truthiness: inputs may be numpy arrays (the
        # csr S backend serves arena slices), whose bool() is ambiguous.
        return []
    short, long_ = (a, b) if len(a) <= len(b) else (b, a)
    if len(long_) >= GALLOP_RATIO * len(short):
        return intersect_galloping(short, long_)
    return intersect_merge(a, b)


def intersect_many(lists: Sequence[IdList]) -> list[int]:
    """Intersect ``n`` sorted lists, smallest-first for early termination.

    Ordering by ascending length keeps the running intersection as small as
    possible; the loop exits the moment it empties.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, other)
    return result


def k_overlap_scancount(lists: Sequence[IdList], k: int) -> list[int]:
    """Values present in >= *k* of the lists, by counting occurrences.

    ScanCount: a single dictionary of value -> multiplicity.  O(total input)
    time regardless of how the matches are distributed, at the cost of a hash
    entry per distinct value seen.
    """
    _check_k(lists, k)
    counts: dict[int, int] = {}
    for values in lists:
        for value in values:
            counts[value] = counts.get(value, 0) + 1
    return sorted(value for value, count in counts.items() if count >= k)


def k_overlap_heap(lists: Sequence[IdList], k: int) -> list[int]:
    """Values present in >= *k* of the lists, by sorted multiway merge.

    Classic heap merge over the sorted inputs; equal values arrive
    consecutively, so a run-length count suffices.  O(total * log n) time
    but no per-distinct-value hash table, and the output needs no final
    sort — preferable when inputs are long and matches are rare.
    """
    _check_k(lists, k)
    merged = heapq.merge(*lists)
    result: list[int] = []
    current: int | None = None
    run = 0
    for value in merged:
        if value == current:
            run += 1
        else:
            if current is not None and run >= k:
                result.append(current)
            current = value
            run = 1
    if current is not None and run >= k:
        result.append(current)
    return result


def k_overlap_arrays(arrays: Sequence[np.ndarray], k: int) -> np.ndarray:
    """Vectorised k-overlap over ready-made int64 arrays, as an array.

    The batched detector's inner kernel: one concatenate + in-place sort,
    then a run-length threshold — a value occurs >= *k* times in the sorted
    multiset iff its first occurrence still matches ``k - 1`` slots later.
    Skips :func:`k_overlap_numpy`'s per-call list->array conversions and
    ``np.unique`` wrapper overhead, which dominate at hot-path call rates.
    Returns the qualifying values ascending; inputs must be non-empty
    int64 arrays of sorted distinct ids (``len(arrays) >= k >= 1``).
    """
    stacked = np.concatenate(arrays)
    stacked.sort()
    total = len(stacked)
    firsts = np.empty(total, dtype=bool)
    firsts[0] = True
    np.not_equal(stacked[1:], stacked[:-1], out=firsts[1:])
    if k == 1:
        return stacked[firsts]
    first_idx = np.flatnonzero(firsts)
    candidates = first_idx[first_idx <= total - k]
    return stacked[candidates[stacked[candidates + k - 1] == stacked[candidates]]]


def k_overlap_numpy(lists: Sequence[IdList], k: int) -> list[int]:
    """Vectorised k-overlap via concatenate + unique counts.

    Fastest for large inputs when the lists are already numpy arrays;
    included for the E11 ablation and for bulk offline (batch) detection.
    """
    _check_k(lists, k)
    arrays = [np.asarray(values, dtype=np.int64) for values in lists if len(values)]
    if not arrays:
        return []
    stacked = np.concatenate(arrays)
    values, counts = np.unique(stacked, return_counts=True)
    return values[counts >= k].tolist()


#: Total-input-size crossover at which :func:`k_overlap` switches from
#: ScanCount to the vectorised numpy path.  Below this, the per-call numpy
#: overhead (array conversion, ufunc dispatch) outweighs the C-speed
#: counting; above it, ScanCount's per-element dict operations lose.  The
#: value comes from the E11 ablation (``benchmarks/bench_intersection.py``),
#: which sweeps the kernels across input sizes; re-run it when changing
#: this.
KOVERLAP_NUMPY_CROSSOVER = 4096


def k_overlap(lists: Sequence[IdList], k: int) -> list[int]:
    """Values present in at least *k* of the sorted *lists* (adaptive).

    Fast paths:

    * ``k == len(lists)`` — plain intersection via :func:`intersect_many`,
      which is what the paper's worked example computes;
    * otherwise ScanCount for small inputs and the vectorised numpy path
      for large ones, per the :data:`KOVERLAP_NUMPY_CROSSOVER` ablation
      crossover (the pure-Python heap merge exists for the ablation but
      loses to numpy well before the crossover).
    """
    _check_k(lists, k)
    if k == len(lists):
        return intersect_many(lists)
    total = sum(len(values) for values in lists)
    if total <= KOVERLAP_NUMPY_CROSSOVER:
        return k_overlap_scancount(lists, k)
    return k_overlap_numpy(lists, k)


def _check_k(lists: Sequence[IdList], k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(lists):
        raise ValueError(
            f"k={k} exceeds the number of lists ({len(lists)}): "
            "no value can appear in more lists than exist"
        )
