"""The pull-side serving tier: point queries over materialized top-k state.

:mod:`repro.serving.cache` holds the columnar per-user store (seqlock
reads against a single writer per shard); :mod:`repro.serving.frontend`
puts a query surface on top (an asyncio TCP front-end plus the simulated
query-load generator the mixed-workload runs use).
"""

from repro.serving.cache import (
    ServedRecommendation,
    ServingArenaSpec,
    ServingCache,
    ServingCacheConfig,
    ServingCacheReader,
    ShardedServingCache,
    ShardedServingCacheReader,
    create_serving_arena,
)
from repro.serving.frontend import QueryLoadGenerator, ServingFrontend

__all__ = [
    "QueryLoadGenerator",
    "ServedRecommendation",
    "ServingArenaSpec",
    "ServingCache",
    "ServingCacheConfig",
    "ServingCacheReader",
    "ServingFrontend",
    "ShardedServingCache",
    "ShardedServingCacheReader",
    "create_serving_arena",
]
