"""The pull-side read cache: per-user materialized top-k recommendations.

The push tier ends in notifications; the paper's product also answers
"show me my recommendations now" for any of millions of users.  This
module materializes exactly the state that query needs — each user's
current top-k recommendations by corroboration x freshness — as flat
numpy columns fed incrementally by the ranked delivery flush, so a point
lookup never touches the detection cluster.

Layout: an open-addressing user table (:class:`~repro.delivery.pairtable
.Int64KeyTable`, keyed by the bare user id through the same splitmix64
probe the funnel's pair tables use) whose value columns are fixed-``k``
slot matrices::

    keys       uint64[capacity]          user id
    candidate  int64 [capacity, k]       recommended account ids
    score      float64[capacity, k]      corroboration x freshness at
                                         the entry's last refresh
    created_at float64[capacity, k]      triggering-edge times
    count      int64 [capacity]          live entries in this user's row
    stamp      uint64[capacity]          per-slot seqlock stamp

No per-user Python objects exist anywhere: a flush window's winners merge
in as one vectorized pass (gather existing rows, dedup (user, candidate)
with latest-offer-wins, re-rank per user, scatter the top-k back), and a
read copies at most ``k`` scalars out of the matrices.

**Concurrency contract** — single writer, lock-free readers, mirroring
the seqlock discipline of :mod:`repro.cluster.shm`:

* the writer brackets every *value* publish with a per-slot ``stamp``
  increment pair (odd while the row is mid-write, even once published);
* *structural* changes — inserting new users, growing/rebuilding the
  table — are bracketed by the table-wide :attr:`ServingCache.version`
  counter instead (odd while slots may move);
* a reader samples ``version``, probes, samples the slot ``stamp``,
  copies the row, then re-checks both stamps — any mismatch or odd value
  means a concurrent write and the read retries.  Steady-state updates
  to *other* users never perturb a reader (their slot stamps are
  untouched and ``version`` only moves on structural changes).

``tests/test_serving_cache.py`` enforces both the merge semantics
(Hypothesis equivalence against a dict-of-dicts fold of the same flush
batches) and the torn-read contract (a writer thread hammering updates
while readers assert every observed row is internally consistent).
"""

from __future__ import annotations

import time
from typing import Iterable, NamedTuple

import numpy as np

from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.delivery.notifier import PushNotification
from repro.delivery.pairtable import Int64KeyTable
from repro.delivery.scoring import decayed_scores
from repro.util.hashing import splitmix64, splitmix64_array
from repro.util.validation import require_positive

__all__ = ["ServedRecommendation", "ServingCache", "ShardedServingCache"]

#: Consistent-read attempts before declaring the writer wedged.  Each
#: retry yields the GIL, so even a pathological writer storm resolves in
#: a handful of laps; hitting the cap means the writer died mid-write.
_READ_RETRIES = 1_000


class ServedRecommendation(NamedTuple):
    """One entry of a user's materialized top-k row."""

    candidate: int
    #: Corroboration x freshness score as of the entry's last refresh
    #: (scores are *not* re-decayed at read time; the write path refreshes
    #: them every flush window, which bounds staleness by the window).
    score: float
    created_at: float


class ServingCache:
    """Columnar per-user top-k store: one writer, lock-free point reads.

    Args:
        k: materialized entries per user (the largest ``k`` a point query
            can ask for).
        half_life: freshness half-life used when scoring boxed offers.
        capacity: initial user-table slot count (power of two; grows).

    Merge semantics (what :meth:`update_columns` folds in, and what the
    dict-of-dicts reference in the tests replays): within one update,
    later rows replace earlier rows of the same (user, candidate); the
    update's rows then merge with the user's existing entries — same
    candidate replaces in place, new candidates compete — and the user
    keeps the top ``k`` by (score desc, candidate asc).  Entries pushed
    below the cut are forgotten (no resurrection on later decay).
    """

    def __init__(
        self, k: int = 2, half_life: float = 1_800.0, capacity: int = 1024
    ) -> None:
        require_positive(k, "k")
        require_positive(half_life, "half_life")
        self.k = k
        self.half_life = half_life
        self._table = Int64KeyTable(
            {
                "candidate": (np.int64, k),
                "score": (np.float64, k),
                "created_at": (np.float64, k),
                "count": (np.int64, 0),
                "stamp": (np.uint64, 0),
            },
            capacity=capacity,
        )
        #: Table-wide structural seqlock (odd while slots may move).  A
        #: one-element array, not a plain int, so readers and the writer
        #: share one memory location under the threading model.
        self._version = np.zeros(1, dtype=np.uint64)
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.rows_ingested = 0

    # ------------------------------------------------------------------
    # Write path (single writer)
    # ------------------------------------------------------------------

    def update_columns(
        self,
        recipients: np.ndarray,
        candidates: np.ndarray,
        scores: np.ndarray,
        created_at: np.ndarray,
    ) -> None:
        """Merge one flush window's winners into the materialized rows.

        All four columns are positionally aligned.  One vectorized pass:
        existing entries for the touched users are gathered, deduped
        against the new rows ((user, candidate) latest-wins), re-ranked,
        and the top-k scattered back under the seqlock stamps.
        """
        n = len(recipients)
        if n == 0:
            return
        self.updates += 1
        self.rows_ingested += n
        users = np.unique(recipients)
        slots = self._upsert_users(users)
        table = self._table
        counts = table.columns["count"][slots]

        # Gather the touched users' existing entries as flat rows.
        total = int(counts.sum())
        row_of = np.repeat(slots, counts)
        seg_starts = np.cumsum(counts) - counts
        col_of = np.arange(total) - np.repeat(seg_starts, counts)
        all_users = np.concatenate([np.repeat(users, counts), recipients])
        all_cand = np.concatenate(
            [table.columns["candidate"][row_of, col_of], candidates]
        )
        all_score = np.concatenate(
            [table.columns["score"][row_of, col_of], scores]
        )
        all_created = np.concatenate(
            [table.columns["created_at"][row_of, col_of], created_at]
        )

        # Dedup (user, candidate), keeping the latest occurrence — new
        # rows sit after existing rows, so a re-offered candidate's fresh
        # score replaces the stale entry.
        position = np.arange(len(all_users))
        order = np.lexsort((-position, all_cand, all_users))
        sorted_users = all_users[order]
        sorted_cand = all_cand[order]
        first = np.r_[
            True,
            (sorted_users[1:] != sorted_users[:-1])
            | (sorted_cand[1:] != sorted_cand[:-1]),
        ]
        kept = order[first]
        kept_users = sorted_users[first]
        kept_cand = sorted_cand[first]
        kept_score = all_score[kept]
        kept_created = all_created[kept]

        # Per-user top-k by (score desc, candidate asc) — the exact
        # ranking TopKPerUserBuffer.flush releases winners in.
        ranking = np.lexsort((kept_cand, -kept_score, kept_users))
        ranked_users = kept_users[ranking]
        run_first = np.r_[True, ranked_users[1:] != ranked_users[:-1]]
        run_starts = np.flatnonzero(run_first)
        run_ids = np.cumsum(run_first) - 1
        rank_in_run = np.arange(len(ranking)) - run_starts[run_ids]
        win = rank_in_run < self.k
        win_users = ranked_users[win]
        win_cand = kept_cand[ranking[win]]
        win_score = kept_score[ranking[win]]
        win_created = kept_created[ranking[win]]
        win_rank = rank_in_run[win]
        user_index = np.searchsorted(users, win_users)
        win_slots = slots[user_index]
        new_counts = np.bincount(user_index, minlength=len(users))

        # Publish under the per-slot seqlock: stamps go odd, every value
        # lands, stamps go even.  A reader of any touched user retries
        # across this window; untouched users never notice.
        stamp = table.columns["stamp"]
        stamp[slots] += 1
        table.columns["count"][slots] = new_counts
        table.columns["candidate"][win_slots, win_rank] = win_cand
        table.columns["score"][win_slots, win_rank] = win_score
        table.columns["created_at"][win_slots, win_rank] = win_created
        stamp[slots] += 1

    def _upsert_users(self, users: np.ndarray) -> np.ndarray:
        """Slots for sorted distinct *users*, inserting the missing ones.

        Structural work (growing the table, inserting keys) runs inside
        the table-wide version seqlock — slots may move, so readers must
        not trust a probe that straddles it.
        """
        table = self._table
        keys = users.astype(np.uint64)
        slots = table.lookup(keys)
        missing = slots < 0
        need = int(missing.sum())
        if need:
            version = self._version
            version[0] += 1  # odd: slots may move / appear
            if table.reserve(need):
                slots = table.lookup(keys)
                missing = slots < 0
            slots[missing] = table.insert(keys[missing])
            version[0] += 1  # even: structure stable again
        return slots

    # ------------------------------------------------------------------
    # Ingest adapters (what the delivery-side taps call)
    # ------------------------------------------------------------------

    def ingest_released(
        self, released: Iterable[Recommendation], now: float
    ) -> None:
        """Merge a ranked flush's released winners, scored as of *now*."""
        recs = released if isinstance(released, list) else list(released)
        n = len(recs)
        if n == 0:
            return
        recipients = np.fromiter((r.recipient for r in recs), np.int64, n)
        candidates = np.fromiter((r.candidate for r in recs), np.int64, n)
        witnesses = np.fromiter((len(r.via) for r in recs), np.int64, n)
        created = np.fromiter((r.created_at for r in recs), np.float64, n)
        self.update_columns(
            recipients,
            candidates,
            decayed_scores(witnesses, created, now, self.half_life),
            created,
        )

    def ingest_batch(self, batch: RecommendationBatch, now: float) -> None:
        """Merge a columnar candidate batch (the unranked tap), unboxed.

        Each group's recipient column is consumed by reference; scores
        are computed from the group's shared witness count and creation
        time, so nothing is ever boxed on the way in.
        """
        if len(batch) == 0:
            return
        recipient_parts: list[np.ndarray] = []
        candidate_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        created_parts: list[np.ndarray] = []
        for group in batch.groups:
            size = len(group)
            if not size:
                continue
            recipient_parts.append(group.recipients)
            candidate_parts.append(np.full(size, group.candidate, np.int64))
            score = decayed_scores(
                np.array([group.num_witnesses], dtype=np.int64),
                np.array([group.created_at], dtype=np.float64),
                now,
                self.half_life,
            )[0]
            score_parts.append(np.full(size, score, np.float64))
            created_parts.append(np.full(size, group.created_at, np.float64))
        if not recipient_parts:
            return
        self.update_columns(
            np.concatenate(recipient_parts),
            np.concatenate(candidate_parts),
            np.concatenate(score_parts),
            np.concatenate(created_parts),
        )

    def ingest_notifications(
        self, notifications: Iterable[PushNotification], now: float
    ) -> None:
        """Merge delivered notifications (the sharded-delivery tap)."""
        self.ingest_released(
            [n.recommendation for n in notifications], now
        )

    # ------------------------------------------------------------------
    # Read path (lock-free against the writer)
    # ------------------------------------------------------------------

    def get_recommendations(
        self, user: int, k: int | None = None
    ) -> list[ServedRecommendation]:
        """The user's current top-(at most *k*) recommendations.

        Lock-free seqlock read: never blocks the writer, never returns a
        torn row.  An empty list is a miss (user not materialized) —
        misses and hits feed :attr:`hit_rate`.
        """
        limit = self.k if k is None else min(k, self.k)
        table = self._table
        version = self._version
        for attempt in range(_READ_RETRIES):
            if attempt:
                time.sleep(0)  # yield so the in-flight writer can finish
            v1 = int(version[0])
            if v1 & 1:
                continue
            slot = table.find(int(user))
            if slot < 0:
                if int(version[0]) != v1:
                    continue  # probe raced a rebuild/insert: retry
                self.misses += 1
                return []
            stamp = table.columns["stamp"]
            s1 = int(stamp[slot])
            if s1 & 1:
                continue
            count = min(int(table.columns["count"][slot]), limit)
            candidates = table.columns["candidate"][slot, :count].tolist()
            scores = table.columns["score"][slot, :count].tolist()
            created = table.columns["created_at"][slot, :count].tolist()
            if int(stamp[slot]) != s1 or int(version[0]) != v1:
                continue
            if count == 0:
                self.misses += 1
                return []
            self.hits += 1
            return [
                ServedRecommendation(c, s, t)
                for c, s, t in zip(candidates, scores, created)
            ]
        raise RuntimeError(
            f"serving read for user {user} did not stabilize after "
            f"{_READ_RETRIES} attempts (writer died mid-write?)"
        )

    # ------------------------------------------------------------------
    # Introspection (monitor gauges, benches, equality checks)
    # ------------------------------------------------------------------

    @property
    def users_cached(self) -> int:
        """Users with a materialized row."""
        return len(self._table)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads that found a materialized row."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        """Resident bytes across the user table and all slot matrices."""
        return self._table.nbytes() + self._version.nbytes

    def bytes_per_user(self) -> float:
        """Resident bytes per materialized user (capacity amortized in)."""
        return self.nbytes() / max(self.users_cached, 1)

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        """Full cache contents (tests and multiset-equality checks only)."""
        table = self._table
        out: dict[int, list[ServedRecommendation]] = {}
        for slot in table.filled_slots().tolist():
            user = int(table.keys_at(np.array([slot]))[0])
            count = int(table.columns["count"][slot])
            out[user] = [
                ServedRecommendation(
                    int(table.columns["candidate"][slot, i]),
                    float(table.columns["score"][slot, i]),
                    float(table.columns["created_at"][slot, i]),
                )
                for i in range(count)
            ]
        return out

    # ------------------------------------------------------------------
    # Durable-state hooks (snapshot capture + recovery rebuild)
    # ------------------------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Materialized rows as owned arrays (for incremental snapshots).

        Row order follows slot order, which is a capacity artifact —
        consumers must treat the payload as an unordered keyed set.
        """
        table = self._table
        slots = table.filled_slots()
        return {
            "users": table.keys_at(slots).copy(),
            "count": table.columns["count"][slots].copy(),
            "candidate": table.columns["candidate"][slots].copy(),
            "score": table.columns["score"][slots].copy(),
            "created_at": table.columns["created_at"][slots].copy(),
        }

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Merge a :meth:`state_arrays` payload into this cache.

        Rows land whole (count + full slot matrices) under the same
        seqlock discipline as a live update, so readers may run
        concurrently.  The payload's ``k`` width must match this cache's.
        """
        users = arrays["users"]
        if len(users) == 0:
            return
        if arrays["candidate"].shape[1] != self.k:
            raise ValueError(
                f"state payload has k={arrays['candidate'].shape[1]}, "
                f"cache expects k={self.k}"
            )
        order = np.argsort(users.astype(np.int64))
        slots = self._upsert_users(users.astype(np.int64)[order])
        table = self._table
        stamp = table.columns["stamp"]
        stamp[slots] += 1
        table.columns["count"][slots] = arrays["count"][order]
        table.columns["candidate"][slots] = arrays["candidate"][order]
        table.columns["score"][slots] = arrays["score"][order]
        table.columns["created_at"][slots] = arrays["created_at"][order]
        stamp[slots] += 1


class ShardedServingCache:
    """Recipient-hash-sharded serving caches, one writer per shard.

    Sharding uses ``splitmix64(user) % num_shards`` — the *same* keying
    as :class:`~repro.delivery.sharded.ShardedDeliveryPipeline` — so when
    serving shards mirror delivery shards, every user's cache updates
    originate from exactly one delivery shard's flushes: each shard's
    cache is single-writer by construction, which is what the per-shard
    seqlock discipline requires.

    The query surface routes point reads to the owning shard; the ingest
    surface splits incoming rows by the same hash, so callers can feed it
    from an unsharded path too (one logical writer is still one writer
    per shard).
    """

    def __init__(
        self,
        num_shards: int = 1,
        k: int = 2,
        half_life: float = 1_800.0,
        capacity: int = 1024,
    ) -> None:
        require_positive(num_shards, "num_shards")
        self.num_shards = num_shards
        self.k = k
        self.shards = [
            ServingCache(k=k, half_life=half_life, capacity=capacity)
            for _ in range(num_shards)
        ]

    def shard_of(self, user: int) -> int:
        """The shard owning *user* (stable splitmix64 hash)."""
        return splitmix64(user) % self.num_shards

    # -- query surface --------------------------------------------------

    def get_recommendations(
        self, user: int, k: int | None = None
    ) -> list[ServedRecommendation]:
        """Point lookup, routed to the owning shard."""
        return self.shards[self.shard_of(user)].get_recommendations(user, k)

    # -- ingest surface -------------------------------------------------

    def update_columns(
        self,
        recipients: np.ndarray,
        candidates: np.ndarray,
        scores: np.ndarray,
        created_at: np.ndarray,
    ) -> None:
        """Split aligned winner columns by recipient hash and merge."""
        if self.num_shards == 1:
            self.shards[0].update_columns(
                recipients, candidates, scores, created_at
            )
            return
        shard_ids = (
            splitmix64_array(recipients.astype(np.uint64))
            % np.uint64(self.num_shards)
        ).astype(np.int64)
        for shard in np.unique(shard_ids).tolist():
            mask = shard_ids == shard
            self.shards[shard].update_columns(
                recipients[mask],
                candidates[mask],
                scores[mask],
                created_at[mask],
            )

    def ingest_released(
        self, released: Iterable[Recommendation], now: float
    ) -> None:
        """Split a ranked flush's winners by shard and merge each."""
        recs = released if isinstance(released, list) else list(released)
        if not recs:
            return
        if self.num_shards == 1:
            self.shards[0].ingest_released(recs, now)
            return
        per_shard: list[list[Recommendation]] = [
            [] for _ in range(self.num_shards)
        ]
        for rec in recs:
            per_shard[self.shard_of(rec.recipient)].append(rec)
        for shard, shard_recs in enumerate(per_shard):
            if shard_recs:
                self.shards[shard].ingest_released(shard_recs, now)

    def ingest_batch(self, batch: RecommendationBatch, now: float) -> None:
        """Split a columnar batch by shard and merge each, unboxed."""
        if self.num_shards == 1:
            self.shards[0].ingest_batch(batch, now)
            return
        from repro.delivery.sharded import split_batch_by_shard

        for shard, shard_batch in enumerate(
            split_batch_by_shard(batch, self.num_shards)
        ):
            if len(shard_batch):
                self.shards[shard].ingest_batch(shard_batch, now)

    def ingest_notifications(
        self, notifications: Iterable[PushNotification], now: float
    ) -> None:
        """Merge delivered notifications (the sharded-delivery tap)."""
        self.ingest_released(
            [n.recommendation for n in notifications], now
        )

    # -- aggregated stats -----------------------------------------------

    @property
    def users_cached(self) -> int:
        """Users materialized across all shards."""
        return sum(shard.users_cached for shard in self.shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    @property
    def hit_rate(self) -> float:
        """Hit fraction aggregated over shards."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        """Resident bytes summed over shards."""
        return sum(shard.nbytes() for shard in self.shards)

    def bytes_per_user(self) -> float:
        """Resident bytes per materialized user, across shards."""
        return self.nbytes() / max(self.users_cached, 1)

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        """Merged contents of every shard (tests only)."""
        out: dict[int, list[ServedRecommendation]] = {}
        for shard in self.shards:
            out.update(shard.dump())
        return out

    # -- durable-state hooks --------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every shard's rows concatenated (shard split is re-derived
        from the user hash on load, so it is not persisted)."""
        parts = [shard.state_arrays() for shard in self.shards]
        return {
            name: np.concatenate([part[name] for part in parts])
            for name in parts[0]
        }

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Split a :meth:`state_arrays` payload by user hash and merge."""
        users = arrays["users"]
        if len(users) == 0:
            return
        if self.num_shards == 1:
            self.shards[0].load_state(arrays)
            return
        shard_ids = (
            splitmix64_array(users.astype(np.uint64))
            % np.uint64(self.num_shards)
        ).astype(np.int64)
        for shard in np.unique(shard_ids).tolist():
            mask = shard_ids == shard
            self.shards[shard].load_state(
                {name: values[mask] for name, values in arrays.items()}
            )
