"""The pull-side read cache: per-user materialized top-k recommendations.

The push tier ends in notifications; the paper's product also answers
"show me my recommendations now" for any of millions of users.  This
module materializes exactly the state that query needs — each user's
current top-k recommendations by corroboration x freshness — as flat
numpy columns fed incrementally by the ranked delivery flush, so a point
lookup never touches the detection cluster.

Layout: an open-addressing user table (:class:`~repro.delivery.pairtable
.Int64KeyTable`, keyed by the bare user id through the same splitmix64
probe the funnel's pair tables use) whose value columns are fixed-``k``
slot matrices::

    keys       uint64[capacity]          user id
    candidate  int64 [capacity, k]       recommended account ids
    score      float64[capacity, k]      corroboration x freshness at
                                         the entry's last refresh
    created_at float64[capacity, k]      triggering-edge times
    witnesses  int64 [capacity, k]       corroboration count behind the
                                         score (read-time re-decay input)
    count      int64 [capacity]          live entries in this user's row
    stamp      uint64[capacity]          per-slot seqlock stamp

No per-user Python objects exist anywhere: a flush window's winners merge
in as one vectorized pass (gather existing rows, dedup (user, candidate)
with latest-offer-wins, re-rank per user, scatter the top-k back), and a
read copies at most ``k`` scalars out of the matrices.

**Concurrency contract** — single writer, lock-free readers, mirroring
the seqlock discipline of :mod:`repro.cluster.shm`:

* the writer brackets every *value* publish with a per-slot ``stamp``
  increment pair (odd while the row is mid-write, even once published);
* *structural* changes — inserting new users, growing/rebuilding the
  table, TTL compaction — are bracketed by the table-wide
  :attr:`ServingCache.version` counter instead (odd while slots may
  move);
* a reader samples ``version``, probes, samples the slot ``stamp``,
  copies the row, then re-checks both stamps — any mismatch or odd value
  means a concurrent write and the read retries.  Steady-state updates
  to *other* users never perturb a reader (their slot stamps are
  untouched and ``version`` only moves on structural changes).

**Backing** is pluggable.  The default is heap numpy (writer and readers
share one address space: threads).  With a shared-memory arena
(:func:`create_serving_arena` + :meth:`ServingCache.attach_writer`) the
*same* table lives in ``multiprocessing.shared_memory`` segments: the
delivery-shard worker process is the single writer, merging flush output
right where the funnel runs, and the parent (or any process holding the
picklable :class:`ServingArenaSpec`) reads the very same bytes through
:class:`ServingCacheReader` — no reply decoding, no parent-side merge,
no copies on the read path.  Structural rebuilds publish a *new* data
segment (deterministic name ``<control>_g<generation>``) and bump the
generation word in the parent-owned control segment; readers re-attach
by name when the generation moves, and the version seqlock rejects any
read that straddled the handoff.

``tests/test_serving_cache.py`` enforces the merge semantics (Hypothesis
equivalence against a dict-of-dicts fold of the same flush batches) and
the in-process torn-read contract; ``tests/test_serving_shm.py`` runs
the same torn-read discipline across a real process boundary while the
writer grows through generations.
"""

from __future__ import annotations

import time
from typing import Iterable, NamedTuple

import numpy as np

from repro.cluster.shm import ShmArena, unlink_segment
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.delivery.notifier import PushNotification
from repro.delivery.pairtable import Int64KeyTable
from repro.delivery.scoring import decayed_scores
from repro.util.hashing import splitmix64, splitmix64_array
from repro.util.validation import require_positive

__all__ = [
    "ServedRecommendation",
    "ServingArenaSpec",
    "ServingCache",
    "ServingCacheConfig",
    "ServingCacheReader",
    "ShardedServingCache",
    "ShardedServingCacheReader",
    "create_serving_arena",
]

#: Consistent-read attempts before declaring the writer wedged.  Each
#: retry yields the GIL, so even a pathological writer storm resolves in
#: a handful of laps; hitting the cap means the writer died mid-write.
_READ_RETRIES = 1_000

# Control-segment word indices (the arena's eight u64 header words).
_CW_VERSION = 0  # table-wide structural seqlock (odd while slots move)
_CW_GENERATION = 1  # current data-segment generation (0 = none yet)
_CW_USERS = 2  # writer-published len(table)
_CW_UPDATES = 3  # writer-published update_columns count
_CW_ROWS = 4  # writer-published rows ingested
_CW_LAST_NOW = 5  # float64 bits: virtual time of the last merge
_CW_EVICTIONS = 6  # writer-published TTL evictions


class ServedRecommendation(NamedTuple):
    """One entry of a user's materialized top-k row."""

    candidate: int
    #: Corroboration x freshness score as of the entry's last refresh.
    #: Pass ``now=`` to ``get_recommendations`` to re-decay through the
    #: shared kernel at read time instead.
    score: float
    created_at: float


class ServingArenaSpec(NamedTuple):
    """Picklable handle for one serving shard's shared-memory arena.

    Carries the control-segment name plus the cache shape; data segments
    derive their names as ``<control_name>_g<generation>``, so the spec
    alone is enough to attach any future generation.
    """

    control_name: str
    k: int
    half_life: float = 1_800.0
    capacity: int = 1024
    ttl: float | None = None


class ServingCacheConfig(NamedTuple):
    """Shape of a serving cache a delivery pipeline builds per shard."""

    k: int = 2
    half_life: float = 1_800.0
    capacity: int = 1024
    ttl: float | None = None


def _column_specs(k: int) -> dict[str, tuple[np.dtype, int]]:
    """The user table's value-column schema (one source of truth: the
    writer's table and the reader's carve must agree byte for byte)."""
    return {
        "candidate": (np.int64, k),
        "score": (np.float64, k),
        "created_at": (np.float64, k),
        "witnesses": (np.int64, k),
        "count": (np.int64, 0),
        "stamp": (np.uint64, 0),
    }


def _data_fields(capacity: int, k: int) -> list:
    """Arena field list for one data generation of the given shape."""
    fields = [
        ("keys", np.uint64, (capacity,)),
        ("filled", np.bool_, (capacity,)),
    ]
    for name, (dtype, width) in _column_specs(k).items():
        shape = (capacity,) if width == 0 else (capacity, width)
        fields.append((name, dtype, shape))
    return fields


def _data_segment_name(control_name: str, generation: int) -> str:
    return f"{control_name}_g{generation}"


def create_serving_arena(
    k: int = 2,
    half_life: float = 1_800.0,
    capacity: int = 1024,
    ttl: float | None = None,
) -> ServingArenaSpec:
    """Create one serving shard's *control* segment (parent side).

    The control segment holds only the eight header words (version,
    generation, writer gauges); the data segments are created by the
    writer process itself, one per table generation, under names derived
    from the control name.  The creator owns the control segment — it is
    reclaimed by ``sweep_segments`` with the rest of the transport's
    slabs — while data segments are reclaimed through
    :meth:`ServingCacheReader.reclaim_segments` (deterministic names, so
    even a ``kill -9``'d writer leaks nothing).
    """
    require_positive(k, "k")
    require_positive(half_life, "half_life")
    control = ShmArena.create([])
    control.release()  # ownership stays in the sweep list; attach by name
    return ServingArenaSpec(control.name, k, half_life, capacity, ttl)


class _ServingArenaWriter:
    """Writer-side arena backing: one data segment per table generation.

    Plugs into :class:`Int64KeyTable`'s ``allocator`` hook: every
    (re)build carves keys/filled/columns out of a fresh data segment,
    stamps (capacity, k) into its header, publishes the new generation
    number in the control segment, and unlinks the previous generation.
    Unlinking is safe mid-rebuild: POSIX removes only the name, so the
    writer's in-flight scatter (and any attached reader) keeps a valid
    mapping, and the table-wide version seqlock already forces readers to
    retry across the whole handoff.
    """

    __slots__ = ("spec", "control", "generation", "_data", "_retired")

    def __init__(self, spec: ServingArenaSpec) -> None:
        self.spec = spec
        self.control = ShmArena.attach(spec.control_name, [])
        self.generation = int(self.control.header[_CW_GENERATION])
        self._data: ShmArena | None = None
        #: Unlinked old generations whose mappings can't unmap yet — the
        #: mid-rebuild table still views them.  Reaped on later allocates
        #: (by then the table's views moved on) and at :meth:`close`.
        self._retired: list[ShmArena] = []

    @property
    def version(self) -> np.ndarray:
        """The control segment's version word as a one-element view."""
        return self.control.header[_CW_VERSION : _CW_VERSION + 1]

    def allocate(self, capacity: int, specs: dict) -> tuple:
        """Int64KeyTable allocator: carve the next generation's arrays."""
        generation = self.generation + 1
        data = ShmArena.create(
            _data_fields(capacity, self.spec.k),
            name=_data_segment_name(self.spec.control_name, generation),
        )
        data.header[0] = capacity
        data.header[1] = self.spec.k
        previous = self._data
        self._data = data
        self.generation = generation
        self.control.header[_CW_GENERATION] = generation
        if previous is not None:
            unlink_segment(previous.name)  # name gone; mappings persist
            self._retired.append(previous)
        self._retired = [
            arena for arena in self._retired if not arena.try_close_mapping()
        ]
        arrays = dict(data.arrays)
        return arrays.pop("keys"), arrays.pop("filled"), arrays

    def publish_stats(
        self,
        users: int,
        updates: int,
        rows: int,
        evictions: int,
        last_now: float,
    ) -> None:
        header = self.control.header
        header[_CW_USERS] = users
        header[_CW_UPDATES] = updates
        header[_CW_ROWS] = rows
        header[_CW_EVICTIONS] = evictions
        header[_CW_LAST_NOW : _CW_LAST_NOW + 1].view(np.float64)[0] = last_now

    def close(self) -> None:
        """Graceful writer shutdown: reclaim the live data segment.

        Readers that attached before this keep their mappings (that is
        what :meth:`ServingCacheReader.pin` is for); the parent's
        close-path sweep re-reclaims by name as the kill -9 backstop.
        """
        for arena in self._retired:
            arena.try_close_mapping()
        self._retired = []
        if self._data is not None:
            self._data.close()  # owner: unlinks
            self._data = None
        self.control.close()


def _assemble_row(
    candidates: list,
    scores: list,
    created: list,
    witnesses: list,
    now: float | None,
    limit: int,
    half_life: float,
) -> list[ServedRecommendation]:
    """Materialize a consistent row copy into served entries.

    With *now*, scores are recomputed through the shared
    :func:`~repro.delivery.scoring.decayed_scores` kernel and the row
    re-ranked by (score desc, candidate asc) — bitwise the ordering
    delivery would produce for the same (witnesses, created_at) at *now*
    — before the limit cut.  Without *now*, the stored ranking (already
    (score desc, candidate asc) as of the last refresh) is returned.
    """
    if now is not None and candidates:
        refreshed = decayed_scores(
            np.array(witnesses, dtype=np.int64),
            np.array(created, dtype=np.float64),
            now,
            half_life,
        )
        order = np.lexsort((np.array(candidates, dtype=np.int64), -refreshed))
        return [
            ServedRecommendation(candidates[i], float(refreshed[i]), created[i])
            for i in order[:limit].tolist()
        ]
    return [
        ServedRecommendation(c, s, t)
        for c, s, t in zip(candidates[:limit], scores[:limit], created[:limit])
    ]


class ServingCache:
    """Columnar per-user top-k store: one writer, lock-free point reads.

    Args:
        k: materialized entries per user (the largest ``k`` a point query
            can ask for).
        half_life: freshness half-life used when scoring boxed offers and
            re-decaying at read time.
        capacity: initial user-table slot count (power of two; grows).
        ttl: when set, users whose *newest* entry is older than ``now -
            ttl`` are dormant: their slots are vacated before any table
            growth (reclaiming capacity first) and by explicit
            :meth:`evict_dormant` sweeps.  Needs ``now`` on the ingest
            path — the adapters pass it through.
        arena: internal — a :class:`_ServingArenaWriter` backing the
            table with shared memory (use :meth:`attach_writer`).

    Merge semantics (what :meth:`update_columns` folds in, and what the
    dict-of-dicts reference in the tests replays): within one update,
    later rows replace earlier rows of the same (user, candidate); the
    update's rows then merge with the user's existing entries — same
    candidate replaces in place, new candidates compete — and the user
    keeps the top ``k`` by (score desc, candidate asc).  Entries pushed
    below the cut are forgotten (no resurrection on later decay).
    """

    def __init__(
        self,
        k: int = 2,
        half_life: float = 1_800.0,
        capacity: int = 1024,
        ttl: float | None = None,
        arena: _ServingArenaWriter | None = None,
    ) -> None:
        require_positive(k, "k")
        require_positive(half_life, "half_life")
        if ttl is not None:
            require_positive(ttl, "ttl")
        self.k = k
        self.half_life = half_life
        self.ttl = ttl
        self._arena = arena
        self._table = Int64KeyTable(
            _column_specs(k),
            capacity=capacity,
            allocator=None if arena is None else arena.allocate,
        )
        #: Table-wide structural seqlock (odd while slots may move).  A
        #: one-element array, not a plain int, so readers and the writer
        #: share one memory location — the heap backing shares it across
        #: threads, the arena backing across processes (it *is* the
        #: control segment's version word there).
        self._version = (
            np.zeros(1, dtype=np.uint64) if arena is None else arena.version
        )
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.rows_ingested = 0
        self.evictions = 0
        self._last_now = 0.0
        self._publish()

    @classmethod
    def attach_writer(cls, spec: ServingArenaSpec) -> "ServingCache":
        """Build the shard-worker-resident writer over a shm arena."""
        return cls(
            k=spec.k,
            half_life=spec.half_life,
            capacity=spec.capacity,
            ttl=spec.ttl,
            arena=_ServingArenaWriter(spec),
        )

    def close(self) -> None:
        """Release arena segments (no-op for the heap backing).

        Drops the table first — its column views are what keep the data
        mapping exported — so the segments unmap cleanly.  The cache is
        unusable afterwards (it only ever runs at writer shutdown).
        """
        if self._arena is not None:
            self._table = None
            self._version = np.zeros(1, dtype=np.uint64)
            self._arena.close()
            self._arena = None

    def _publish(self, now: float | None = None) -> None:
        """Mirror the writer gauges into the control segment (arena only)."""
        if now is not None:
            self._last_now = now
        if self._arena is not None:
            self._arena.publish_stats(
                len(self._table),
                self.updates,
                self.rows_ingested,
                self.evictions,
                self._last_now,
            )

    # ------------------------------------------------------------------
    # Write path (single writer)
    # ------------------------------------------------------------------

    def update_columns(
        self,
        recipients: np.ndarray,
        candidates: np.ndarray,
        scores: np.ndarray,
        created_at: np.ndarray,
        witnesses: np.ndarray | None = None,
        now: float | None = None,
    ) -> None:
        """Merge one flush window's winners into the materialized rows.

        The first four columns are positionally aligned; *witnesses*
        (optional, defaults to 1 — the same "unwitnessed scores as a
        single witness" convention the scoring kernel clamps to) rides
        along so read-time re-decay can reproduce each entry's score at
        any later ``now``.  One vectorized pass: existing entries for the
        touched users are gathered, deduped against the new rows ((user,
        candidate) latest-wins), re-ranked, and the top-k scattered back
        under the seqlock stamps.  *now* feeds TTL compaction and the
        writer gauges.
        """
        n = len(recipients)
        if n == 0:
            return
        self.updates += 1
        self.rows_ingested += n
        if witnesses is None:
            witnesses = np.ones(n, dtype=np.int64)
        users = np.unique(recipients)
        slots = self._upsert_users(users, now)
        table = self._table
        counts = table.columns["count"][slots]

        # Gather the touched users' existing entries as flat rows.
        total = int(counts.sum())
        row_of = np.repeat(slots, counts)
        seg_starts = np.cumsum(counts) - counts
        col_of = np.arange(total) - np.repeat(seg_starts, counts)
        all_users = np.concatenate([np.repeat(users, counts), recipients])
        all_cand = np.concatenate(
            [table.columns["candidate"][row_of, col_of], candidates]
        )
        all_score = np.concatenate(
            [table.columns["score"][row_of, col_of], scores]
        )
        all_created = np.concatenate(
            [table.columns["created_at"][row_of, col_of], created_at]
        )
        all_wit = np.concatenate(
            [table.columns["witnesses"][row_of, col_of], witnesses]
        )

        # Dedup (user, candidate), keeping the latest occurrence — new
        # rows sit after existing rows, so a re-offered candidate's fresh
        # score replaces the stale entry.
        position = np.arange(len(all_users))
        order = np.lexsort((-position, all_cand, all_users))
        sorted_users = all_users[order]
        sorted_cand = all_cand[order]
        first = np.r_[
            True,
            (sorted_users[1:] != sorted_users[:-1])
            | (sorted_cand[1:] != sorted_cand[:-1]),
        ]
        kept = order[first]
        kept_users = sorted_users[first]
        kept_cand = sorted_cand[first]
        kept_score = all_score[kept]
        kept_created = all_created[kept]
        kept_wit = all_wit[kept]

        # Per-user top-k by (score desc, candidate asc) — the exact
        # ranking TopKPerUserBuffer.flush releases winners in.
        ranking = np.lexsort((kept_cand, -kept_score, kept_users))
        ranked_users = kept_users[ranking]
        run_first = np.r_[True, ranked_users[1:] != ranked_users[:-1]]
        run_starts = np.flatnonzero(run_first)
        run_ids = np.cumsum(run_first) - 1
        rank_in_run = np.arange(len(ranking)) - run_starts[run_ids]
        win = rank_in_run < self.k
        win_users = ranked_users[win]
        win_cand = kept_cand[ranking[win]]
        win_score = kept_score[ranking[win]]
        win_created = kept_created[ranking[win]]
        win_wit = kept_wit[ranking[win]]
        win_rank = rank_in_run[win]
        user_index = np.searchsorted(users, win_users)
        win_slots = slots[user_index]
        new_counts = np.bincount(user_index, minlength=len(users))

        # Publish under the per-slot seqlock: stamps go odd, every value
        # lands, stamps go even.  A reader of any touched user retries
        # across this window; untouched users never notice.
        stamp = table.columns["stamp"]
        stamp[slots] += 1
        table.columns["count"][slots] = new_counts
        table.columns["candidate"][win_slots, win_rank] = win_cand
        table.columns["score"][win_slots, win_rank] = win_score
        table.columns["created_at"][win_slots, win_rank] = win_created
        table.columns["witnesses"][win_slots, win_rank] = win_wit
        stamp[slots] += 1
        self._publish(now)

    def _upsert_users(
        self, users: np.ndarray, now: float | None = None
    ) -> np.ndarray:
        """Slots for sorted distinct *users*, inserting the missing ones.

        Structural work (growing the table, inserting keys) runs inside
        the table-wide version seqlock — slots may move, so readers must
        not trust a probe that straddles it.  When a growth rebuild runs
        and a TTL is configured, dormant users are compacted away first
        (the lazy ``keep`` hook), reclaiming capacity before it doubles.
        """
        table = self._table
        keys = users.astype(np.uint64)
        slots = table.lookup(keys)
        missing = slots < 0
        need = int(missing.sum())
        if need:
            version = self._version
            version[0] += 1  # odd: slots may move / appear
            if table.reserve(need, keep=self._dormancy_keep(now)):
                slots = table.lookup(keys)
                missing = slots < 0
            slots[missing] = table.insert(keys[missing])
            version[0] += 1  # even: structure stable again
        return slots

    def _dormancy_mask(self, now: float) -> np.ndarray:
        """Per-slot keep mask: True where the newest entry beats the TTL.

        A user is dormant when *every* entry (and therefore the newest)
        is older than ``now - ttl``; empty rows are dormant by definition.
        """
        table = self._table
        counts = table.columns["count"]
        created = table.columns["created_at"]
        live = np.arange(self.k, dtype=np.int64)[None, :] < counts[:, None]
        newest = np.where(live, created, -np.inf).max(axis=1)
        return newest >= now - self.ttl

    def _dormancy_keep(self, now: float | None):
        """The lazy ``keep`` callback for ``reserve`` (None when unarmed)."""
        if self.ttl is None or now is None:
            return None

        def keep() -> np.ndarray:
            mask = self._dormancy_mask(now)
            live = self._table.filled_slots()
            self.evictions += int(len(live) - mask[live].sum())
            return mask

        return keep

    def evict_dormant(self, now: float) -> int:
        """Vacate every user whose newest entry is older than the TTL.

        The eager sweep (the grow path evicts lazily): a non-growing
        compaction inside the table-wide version seqlock, so concurrent
        readers follow the normal structural-retry contract.  Returns the
        number of users evicted; a no-op without a configured ``ttl``.
        """
        if self.ttl is None:
            return 0
        keep = self._dormancy_mask(now)
        version = self._version
        version[0] += 1
        dropped = self._table.compact(keep)
        version[0] += 1
        self.evictions += dropped
        self._publish(now)
        return dropped

    # ------------------------------------------------------------------
    # Ingest adapters (what the delivery-side taps call)
    # ------------------------------------------------------------------

    def ingest_released(
        self, released: Iterable[Recommendation], now: float
    ) -> None:
        """Merge a ranked flush's released winners, scored as of *now*."""
        recs = released if isinstance(released, list) else list(released)
        n = len(recs)
        if n == 0:
            return
        recipients = np.fromiter((r.recipient for r in recs), np.int64, n)
        candidates = np.fromiter((r.candidate for r in recs), np.int64, n)
        witnesses = np.fromiter((len(r.via) for r in recs), np.int64, n)
        created = np.fromiter((r.created_at for r in recs), np.float64, n)
        self.update_columns(
            recipients,
            candidates,
            decayed_scores(witnesses, created, now, self.half_life),
            created,
            witnesses=witnesses,
            now=now,
        )

    def ingest_batch(self, batch: RecommendationBatch, now: float) -> None:
        """Merge a columnar candidate batch (the unranked tap), unboxed.

        Each group's recipient column is consumed by reference; scores
        are computed from the group's shared witness count and creation
        time, so nothing is ever boxed on the way in.
        """
        if len(batch) == 0:
            return
        recipient_parts: list[np.ndarray] = []
        candidate_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        created_parts: list[np.ndarray] = []
        witness_parts: list[np.ndarray] = []
        for group in batch.groups:
            size = len(group)
            if not size:
                continue
            recipient_parts.append(group.recipients)
            candidate_parts.append(np.full(size, group.candidate, np.int64))
            score = decayed_scores(
                np.array([group.num_witnesses], dtype=np.int64),
                np.array([group.created_at], dtype=np.float64),
                now,
                self.half_life,
            )[0]
            score_parts.append(np.full(size, score, np.float64))
            created_parts.append(np.full(size, group.created_at, np.float64))
            witness_parts.append(np.full(size, group.num_witnesses, np.int64))
        if not recipient_parts:
            return
        self.update_columns(
            np.concatenate(recipient_parts),
            np.concatenate(candidate_parts),
            np.concatenate(score_parts),
            np.concatenate(created_parts),
            witnesses=np.concatenate(witness_parts),
            now=now,
        )

    def ingest_notifications(
        self, notifications: Iterable[PushNotification], now: float
    ) -> None:
        """Merge delivered notifications (the sharded-delivery tap)."""
        self.ingest_released(
            [n.recommendation for n in notifications], now
        )

    # ------------------------------------------------------------------
    # Read path (lock-free against the writer)
    # ------------------------------------------------------------------

    def get_recommendations(
        self, user: int, k: int | None = None, now: float | None = None
    ) -> list[ServedRecommendation]:
        """The user's current top-(at most *k*) recommendations.

        Lock-free seqlock read: never blocks the writer, never returns a
        torn row.  An empty list is a miss (user not materialized) —
        misses and hits feed :attr:`hit_rate`.  With *now*, the row's
        scores are re-decayed through the shared kernel and re-ranked as
        delivery would rank them at *now* (entries are otherwise frozen
        at their last-refresh scores).
        """
        limit = self.k if k is None else min(k, self.k)
        table = self._table
        version = self._version
        for attempt in range(_READ_RETRIES):
            if attempt:
                time.sleep(0)  # yield so the in-flight writer can finish
            v1 = int(version[0])
            if v1 & 1:
                continue
            slot = table.find(int(user))
            if slot < 0:
                if int(version[0]) != v1:
                    continue  # probe raced a rebuild/insert: retry
                self.misses += 1
                return []
            stamp = table.columns["stamp"]
            s1 = int(stamp[slot])
            if s1 & 1:
                continue
            count = int(table.columns["count"][slot])
            candidates = table.columns["candidate"][slot, :count].tolist()
            scores = table.columns["score"][slot, :count].tolist()
            created = table.columns["created_at"][slot, :count].tolist()
            witnesses = table.columns["witnesses"][slot, :count].tolist()
            if int(stamp[slot]) != s1 or int(version[0]) != v1:
                continue
            if count == 0:
                self.misses += 1
                return []
            self.hits += 1
            return _assemble_row(
                candidates, scores, created, witnesses, now, limit,
                self.half_life,
            )
        raise RuntimeError(
            f"serving read for user {user} did not stabilize after "
            f"{_READ_RETRIES} attempts (writer died mid-write?)"
        )

    # ------------------------------------------------------------------
    # Introspection (monitor gauges, benches, equality checks)
    # ------------------------------------------------------------------

    @property
    def users_cached(self) -> int:
        """Users with a materialized row."""
        return len(self._table)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads that found a materialized row."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        """Resident bytes across the user table and all slot matrices."""
        return self._table.nbytes() + self._version.nbytes

    def bytes_per_user(self) -> float:
        """Resident bytes per materialized user (capacity amortized in)."""
        return self.nbytes() / max(self.users_cached, 1)

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        """Full cache contents (tests and multiset-equality checks only)."""
        table = self._table
        out: dict[int, list[ServedRecommendation]] = {}
        for slot in table.filled_slots().tolist():
            user = int(table.keys_at(np.array([slot]))[0])
            count = int(table.columns["count"][slot])
            out[user] = [
                ServedRecommendation(
                    int(table.columns["candidate"][slot, i]),
                    float(table.columns["score"][slot, i]),
                    float(table.columns["created_at"][slot, i]),
                )
                for i in range(count)
            ]
        return out

    # ------------------------------------------------------------------
    # Durable-state hooks (snapshot capture + recovery rebuild)
    # ------------------------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Materialized rows as owned arrays (for incremental snapshots).

        Row order follows slot order, which is a capacity artifact —
        consumers must treat the payload as an unordered keyed set.  The
        payload schema is identical for heap- and arena-backed caches
        (and for :class:`ServingCacheReader`), so snapshots taken in any
        serving mode restore into any other.
        """
        table = self._table
        slots = table.filled_slots()
        return {
            "users": table.keys_at(slots).copy(),
            "count": table.columns["count"][slots].copy(),
            "candidate": table.columns["candidate"][slots].copy(),
            "score": table.columns["score"][slots].copy(),
            "created_at": table.columns["created_at"][slots].copy(),
            "witnesses": table.columns["witnesses"][slots].copy(),
        }

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Merge a :meth:`state_arrays` payload into this cache.

        Rows land whole (count + full slot matrices) under the same
        seqlock discipline as a live update, so readers may run
        concurrently.  The payload's ``k`` width must match this cache's.
        Payloads from before the witnesses column default to one witness
        per entry (the scoring kernel's clamp floor).
        """
        users = arrays["users"]
        if len(users) == 0:
            return
        if arrays["candidate"].shape[1] != self.k:
            raise ValueError(
                f"state payload has k={arrays['candidate'].shape[1]}, "
                f"cache expects k={self.k}"
            )
        witnesses = arrays.get("witnesses")
        if witnesses is None:
            witnesses = np.ones_like(arrays["candidate"])
        order = np.argsort(users.astype(np.int64))
        slots = self._upsert_users(users.astype(np.int64)[order])
        table = self._table
        stamp = table.columns["stamp"]
        stamp[slots] += 1
        table.columns["count"][slots] = arrays["count"][order]
        table.columns["candidate"][slots] = arrays["candidate"][order]
        table.columns["score"][slots] = arrays["score"][order]
        table.columns["created_at"][slots] = arrays["created_at"][order]
        table.columns["witnesses"][slots] = witnesses[order]
        stamp[slots] += 1
        self._publish()


def _probe_slot(keys: np.ndarray, filled: np.ndarray, user: int) -> int:
    """Reader-side linear probe over raw arena arrays.

    Bit-identical to ``Int64KeyTable.find`` (same splitmix64 home slot,
    same wraparound) but over attached views instead of a table object.
    Returns -1 for a definitive miss and -2 for a view so torn the probe
    chain never terminated (only possible mid-rebuild; the caller's
    version recheck would reject the attempt anyway — this just bounds
    the loop).
    """
    mask = len(keys) - 1
    slot = splitmix64(user) & mask
    for _ in range(len(keys)):
        if not filled[slot]:
            return -1
        if keys[slot] == user:
            return slot
        slot = (slot + 1) & mask
    return -2


class ServingCacheReader:
    """Read-only attach-by-spec view of a worker-resident serving cache.

    Implements the query / stats / dump / snapshot surface of
    :class:`ServingCache` over the shm arena another process writes.
    Reads follow the same two-level seqlock contract plus one extra hop:
    when the control segment's generation word moves (the writer
    rebuilt), the reader re-attaches the new data segment by its
    deterministic name (counted in :attr:`attaches`) and retries.  Not
    thread-safe — one reader instance per reading thread/loop, exactly
    like the writer is one per shard.
    """

    def __init__(self, spec: ServingArenaSpec) -> None:
        self.spec = spec
        self.k = spec.k
        self.half_life = spec.half_life
        self._control = ShmArena.attach(spec.control_name, [])
        self._data: ShmArena | None = None
        self._generation = 0
        self.hits = 0
        self.misses = 0
        #: Data-segment (re)attaches — 1 + one per observed generation hop.
        self.attaches = 0
        #: Serving-bearing messages the parent posted to this shard's
        #: worker; the monitor's writer-lag gauge compares it against the
        #: worker's published update counter.
        self.posted_updates = 0

    @classmethod
    def attach(cls, spec: ServingArenaSpec) -> "ServingCacheReader":
        return cls(spec)

    # -- generation tracking --------------------------------------------

    def _ensure_data(self) -> "ShmArena | None":
        """The data arena for the currently published generation.

        None while the writer has not materialized a table yet (fresh
        control, generation 0).  Raises FileNotFoundError when the
        published generation's segment vanished under us (writer grew
        again, or exited) — callers treat it as a retry.
        """
        generation = int(self._control.header[_CW_GENERATION])
        if generation == self._generation:
            return self._data
        if generation == 0:
            return None
        data = ShmArena.attach_dynamic(
            _data_segment_name(self.spec.control_name, generation),
            lambda header: _data_fields(int(header[0]), int(header[1])),
        )
        if self._data is not None:
            self._data.close()
        self._data = data
        self._generation = generation
        self.attaches += 1
        return data

    def pin(self) -> None:
        """Attach the current generation now (pre-shutdown refresh).

        Called before the writer exits: POSIX keeps unlinked segments
        alive for processes that mapped them, so pinning the final
        generation keeps post-run reads (summaries, snapshots) working
        after the writer's segments are reclaimed.
        """
        try:
            self._ensure_data()
        except FileNotFoundError:
            pass

    @property
    def generation(self) -> int:
        """The writer's currently published data generation."""
        return int(self._control.header[_CW_GENERATION])

    def reclaim_segments(self) -> None:
        """Unlink every data generation this shard's writer may have left.

        The parent's half of the reclamation sweep: generation names are
        deterministic, so even a ``kill -9``'d writer's segments are
        reclaimable without ever having owned a handle.  Generations the
        writer already unlinked (growth, graceful close) skip silently;
        ``generation + 1`` covers a writer killed between creating a new
        segment and publishing its number.
        """
        for g in range(1, self.generation + 2):
            unlink_segment(_data_segment_name(self.spec.control_name, g))

    def close(self) -> None:
        """Drop the reader's mappings (never unlinks)."""
        if self._data is not None:
            self._data.close()
            self._data = None
        self._control.close()

    # -- query surface ---------------------------------------------------

    def get_recommendations(
        self, user: int, k: int | None = None, now: float | None = None
    ) -> list[ServedRecommendation]:
        """Cross-process seqlock point read; same contract as the cache."""
        limit = self.k if k is None else min(k, self.k)
        control = self._control.header
        for attempt in range(_READ_RETRIES):
            if attempt:
                time.sleep(0)  # let the writer (another process) finish
            v1 = int(control[_CW_VERSION])
            if v1 & 1:
                continue
            try:
                data = self._ensure_data()
            except FileNotFoundError:
                continue  # generation republished under our probe
            if data is None:
                if int(control[_CW_VERSION]) != v1:
                    continue
                self.misses += 1
                return []
            arrays = data.arrays
            slot = _probe_slot(arrays["keys"], arrays["filled"], int(user))
            if slot == -2:
                continue
            if slot < 0:
                if int(control[_CW_VERSION]) != v1:
                    continue
                self.misses += 1
                return []
            stamp = arrays["stamp"]
            s1 = int(stamp[slot])
            if s1 & 1:
                continue
            count = int(arrays["count"][slot])
            candidates = arrays["candidate"][slot, :count].tolist()
            scores = arrays["score"][slot, :count].tolist()
            created = arrays["created_at"][slot, :count].tolist()
            witnesses = arrays["witnesses"][slot, :count].tolist()
            if int(stamp[slot]) != s1 or int(control[_CW_VERSION]) != v1:
                continue
            if count == 0:
                self.misses += 1
                return []
            self.hits += 1
            return _assemble_row(
                candidates, scores, created, witnesses, now, limit,
                self.half_life,
            )
        raise RuntimeError(
            f"cross-process serving read for user {user} did not stabilize "
            f"after {_READ_RETRIES} attempts (shard writer died mid-write?)"
        )

    # -- consistent whole-table reads (dump / snapshots) -----------------

    def _snapshot_rows(self) -> dict[str, np.ndarray]:
        """A consistent copy of every materialized row.

        Version-stable + per-slot-stamp-stable retry loop: steady-state
        value updates do not move the version, so the stamps are what
        reject a row torn mid-copy.  Intended for quiescent moments
        (snapshots, post-run summaries); under a continuous writer it
        retries like any other read.
        """
        empty = {
            "users": np.zeros(0, dtype=np.uint64),
            "count": np.zeros(0, dtype=np.int64),
            "candidate": np.zeros((0, self.k), dtype=np.int64),
            "score": np.zeros((0, self.k), dtype=np.float64),
            "created_at": np.zeros((0, self.k), dtype=np.float64),
            "witnesses": np.zeros((0, self.k), dtype=np.int64),
        }
        control = self._control.header
        for attempt in range(_READ_RETRIES):
            if attempt:
                time.sleep(0)
            v1 = int(control[_CW_VERSION])
            if v1 & 1:
                continue
            try:
                data = self._ensure_data()
            except FileNotFoundError:
                continue
            if data is None:
                if int(control[_CW_VERSION]) != v1:
                    continue
                return empty
            arrays = data.arrays
            slots = np.flatnonzero(arrays["filled"])
            stamps_before = arrays["stamp"][slots].copy()
            if (stamps_before & 1).any():
                continue
            payload = {
                "users": arrays["keys"][slots].copy(),
                "count": arrays["count"][slots].copy(),
                "candidate": arrays["candidate"][slots].copy(),
                "score": arrays["score"][slots].copy(),
                "created_at": arrays["created_at"][slots].copy(),
                "witnesses": arrays["witnesses"][slots].copy(),
            }
            if (arrays["stamp"][slots] != stamps_before).any():
                continue
            if int(control[_CW_VERSION]) != v1:
                continue
            return payload
        raise RuntimeError(
            "cross-process serving snapshot did not stabilize after "
            f"{_READ_RETRIES} attempts (shard writer died mid-write?)"
        )

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        """Full shard contents (tests and multiset-equality checks)."""
        rows = self._snapshot_rows()
        out: dict[int, list[ServedRecommendation]] = {}
        for i in range(len(rows["users"])):
            count = int(rows["count"][i])
            out[int(rows["users"][i])] = [
                ServedRecommendation(
                    int(rows["candidate"][i, j]),
                    float(rows["score"][i, j]),
                    float(rows["created_at"][i, j]),
                )
                for j in range(count)
            ]
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Snapshot payload, schema-identical to the writer cache's."""
        return self._snapshot_rows()

    # -- stats surface (monitor / frontend parity with ServingCache) ----

    @property
    def users_cached(self) -> int:
        return int(self._control.header[_CW_USERS])

    @property
    def updates(self) -> int:
        return int(self._control.header[_CW_UPDATES])

    @property
    def rows_ingested(self) -> int:
        return int(self._control.header[_CW_ROWS])

    @property
    def evictions(self) -> int:
        return int(self._control.header[_CW_EVICTIONS])

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        """Mapped bytes: the control segment plus the attached generation."""
        data = self._data
        return self._control.nbytes() + (0 if data is None else data.nbytes())

    def bytes_per_user(self) -> float:
        return self.nbytes() / max(self.users_cached, 1)

    def writer_stats(self) -> dict[str, float]:
        """Per-shard gauges the writer publishes through the control lane."""
        header = self._control.header
        updates = int(header[_CW_UPDATES])
        return {
            "users": float(int(header[_CW_USERS])),
            "updates": float(updates),
            "rows_ingested": float(int(header[_CW_ROWS])),
            "evictions": float(int(header[_CW_EVICTIONS])),
            "last_now": float(
                header[_CW_LAST_NOW : _CW_LAST_NOW + 1].view(np.float64)[0]
            ),
            "generation": float(self.generation),
            "attaches": float(self.attaches),
            "writer_lag_updates": float(self.posted_updates - updates),
        }


class ShardedServingCache:
    """Recipient-hash-sharded serving caches, one writer per shard.

    Sharding uses ``splitmix64(user) % num_shards`` — the *same* keying
    as :class:`~repro.delivery.sharded.ShardedDeliveryPipeline` — so when
    serving shards mirror delivery shards, every user's cache updates
    originate from exactly one delivery shard's flushes: each shard's
    cache is single-writer by construction, which is what the per-shard
    seqlock discipline requires.

    The query surface routes point reads to the owning shard; the ingest
    surface splits incoming rows by the same hash, so callers can feed it
    from an unsharded path too (one logical writer is still one writer
    per shard).
    """

    def __init__(
        self,
        num_shards: int = 1,
        k: int = 2,
        half_life: float = 1_800.0,
        capacity: int = 1024,
        ttl: float | None = None,
    ) -> None:
        require_positive(num_shards, "num_shards")
        self.num_shards = num_shards
        self.k = k
        self.shards = [
            ServingCache(k=k, half_life=half_life, capacity=capacity, ttl=ttl)
            for _ in range(num_shards)
        ]

    def shard_of(self, user: int) -> int:
        """The shard owning *user* (stable splitmix64 hash)."""
        return splitmix64(user) % self.num_shards

    # -- query surface --------------------------------------------------

    def get_recommendations(
        self, user: int, k: int | None = None, now: float | None = None
    ) -> list[ServedRecommendation]:
        """Point lookup, routed to the owning shard."""
        return self.shards[self.shard_of(user)].get_recommendations(
            user, k, now=now
        )

    # -- ingest surface -------------------------------------------------

    def update_columns(
        self,
        recipients: np.ndarray,
        candidates: np.ndarray,
        scores: np.ndarray,
        created_at: np.ndarray,
        witnesses: np.ndarray | None = None,
        now: float | None = None,
    ) -> None:
        """Split aligned winner columns by recipient hash and merge."""
        if self.num_shards == 1:
            self.shards[0].update_columns(
                recipients, candidates, scores, created_at,
                witnesses=witnesses, now=now,
            )
            return
        shard_ids = (
            splitmix64_array(recipients.astype(np.uint64))
            % np.uint64(self.num_shards)
        ).astype(np.int64)
        for shard in np.unique(shard_ids).tolist():
            mask = shard_ids == shard
            self.shards[shard].update_columns(
                recipients[mask],
                candidates[mask],
                scores[mask],
                created_at[mask],
                witnesses=None if witnesses is None else witnesses[mask],
                now=now,
            )

    def ingest_released(
        self, released: Iterable[Recommendation], now: float
    ) -> None:
        """Split a ranked flush's winners by shard and merge each."""
        recs = released if isinstance(released, list) else list(released)
        if not recs:
            return
        if self.num_shards == 1:
            self.shards[0].ingest_released(recs, now)
            return
        per_shard: list[list[Recommendation]] = [
            [] for _ in range(self.num_shards)
        ]
        for rec in recs:
            per_shard[self.shard_of(rec.recipient)].append(rec)
        for shard, shard_recs in enumerate(per_shard):
            if shard_recs:
                self.shards[shard].ingest_released(shard_recs, now)

    def ingest_batch(self, batch: RecommendationBatch, now: float) -> None:
        """Split a columnar batch by shard and merge each, unboxed."""
        if self.num_shards == 1:
            self.shards[0].ingest_batch(batch, now)
            return
        from repro.delivery.sharded import split_batch_by_shard

        for shard, shard_batch in enumerate(
            split_batch_by_shard(batch, self.num_shards)
        ):
            if len(shard_batch):
                self.shards[shard].ingest_batch(shard_batch, now)

    def ingest_notifications(
        self, notifications: Iterable[PushNotification], now: float
    ) -> None:
        """Merge delivered notifications (the sharded-delivery tap)."""
        self.ingest_released(
            [n.recommendation for n in notifications], now
        )

    def evict_dormant(self, now: float) -> int:
        """TTL sweep across every shard; returns users evicted."""
        return sum(shard.evict_dormant(now) for shard in self.shards)

    # -- aggregated stats -----------------------------------------------

    @property
    def users_cached(self) -> int:
        """Users materialized across all shards."""
        return sum(shard.users_cached for shard in self.shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    @property
    def updates(self) -> int:
        return sum(shard.updates for shard in self.shards)

    @property
    def rows_ingested(self) -> int:
        return sum(shard.rows_ingested for shard in self.shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self.shards)

    @property
    def hit_rate(self) -> float:
        """Hit fraction aggregated over shards."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        """Resident bytes summed over shards."""
        return sum(shard.nbytes() for shard in self.shards)

    def bytes_per_user(self) -> float:
        """Resident bytes per materialized user, across shards.

        Weighted correctly when shards grow at different rates: total
        bytes over total users, *not* a mean of per-shard ratios (a
        hot shard's growth would otherwise be averaged away by cold
        shards sitting at their initial capacity).
        """
        return self.nbytes() / max(self.users_cached, 1)

    def shard_stats(self) -> list[dict[str, float]]:
        """Per-shard gauge rows (the monitor's per-shard visibility)."""
        return [
            {
                "users": float(shard.users_cached),
                "updates": float(shard.updates),
                "rows_ingested": float(shard.rows_ingested),
                "evictions": float(shard.evictions),
                "nbytes": float(shard.nbytes()),
            }
            for shard in self.shards
        ]

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        """Merged contents of every shard (tests only)."""
        out: dict[int, list[ServedRecommendation]] = {}
        for shard in self.shards:
            out.update(shard.dump())
        return out

    # -- durable-state hooks --------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every shard's rows concatenated (shard split is re-derived
        from the user hash on load, so it is not persisted)."""
        parts = [shard.state_arrays() for shard in self.shards]
        return {
            name: np.concatenate([part[name] for part in parts])
            for name in parts[0]
        }

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Split a :meth:`state_arrays` payload by user hash and merge."""
        users = arrays["users"]
        if len(users) == 0:
            return
        if self.num_shards == 1:
            self.shards[0].load_state(arrays)
            return
        shard_ids = (
            splitmix64_array(users.astype(np.uint64))
            % np.uint64(self.num_shards)
        ).astype(np.int64)
        for shard in np.unique(shard_ids).tolist():
            mask = shard_ids == shard
            self.shards[shard].load_state(
                {name: values[mask] for name, values in arrays.items()}
            )


class ShardedServingCacheReader:
    """Routed read-only view over every shard's worker-resident cache.

    The parent-side counterpart of in-worker serving: one
    :class:`ServingCacheReader` per delivery shard, routed by the same
    splitmix64 hash the delivery split uses, presenting the aggregated
    query/stats/snapshot surface of :class:`ShardedServingCache` so the
    frontend, query load generator, monitor, and durability manager all
    consume it unchanged.
    """

    def __init__(self, readers: list[ServingCacheReader]) -> None:
        require_positive(len(readers), "readers")
        self.shards = readers
        self.num_shards = len(readers)
        self.k = readers[0].k

    @classmethod
    def attach(cls, specs: Iterable[ServingArenaSpec]) -> "ShardedServingCacheReader":
        return cls([ServingCacheReader(spec) for spec in specs])

    @property
    def specs(self) -> list[ServingArenaSpec]:
        return [reader.spec for reader in self.shards]

    def shard_of(self, user: int) -> int:
        return splitmix64(user) % self.num_shards

    def get_recommendations(
        self, user: int, k: int | None = None, now: float | None = None
    ) -> list[ServedRecommendation]:
        return self.shards[self.shard_of(user)].get_recommendations(
            user, k, now=now
        )

    def pin(self) -> None:
        """Attach every shard's current generation (pre-shutdown)."""
        for reader in self.shards:
            reader.pin()

    def reclaim_segments(self) -> None:
        """Unlink every shard's possible data generations (close path)."""
        for reader in self.shards:
            reader.reclaim_segments()

    def close(self) -> None:
        for reader in self.shards:
            reader.close()

    # -- aggregated stats (ShardedServingCache parity) -------------------

    @property
    def users_cached(self) -> int:
        return sum(reader.users_cached for reader in self.shards)

    @property
    def hits(self) -> int:
        return sum(reader.hits for reader in self.shards)

    @property
    def misses(self) -> int:
        return sum(reader.misses for reader in self.shards)

    @property
    def updates(self) -> int:
        return sum(reader.updates for reader in self.shards)

    @property
    def rows_ingested(self) -> int:
        return sum(reader.rows_ingested for reader in self.shards)

    @property
    def evictions(self) -> int:
        return sum(reader.evictions for reader in self.shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def nbytes(self) -> int:
        return sum(reader.nbytes() for reader in self.shards)

    def bytes_per_user(self) -> float:
        return self.nbytes() / max(self.users_cached, 1)

    def shard_stats(self) -> list[dict[str, float]]:
        """Per-shard writer gauges (lag, generation, attaches, ...)."""
        return [reader.writer_stats() for reader in self.shards]

    def dump(self) -> dict[int, list[ServedRecommendation]]:
        out: dict[int, list[ServedRecommendation]] = {}
        for reader in self.shards:
            out.update(reader.dump())
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every shard's rows concatenated — snapshot-schema-identical to
        the writer caches', so worker-mode snapshots restore anywhere."""
        parts = [reader.state_arrays() for reader in self.shards]
        return {
            name: np.concatenate([part[name] for part in parts])
            for name in parts[0]
        }
